//! The full deployment pipeline (§V-B7): train both stages quickly, then
//! parse a held-out resume into a structured record with timings.
//!
//! ```bash
//! cargo run --release -p resuformer-bench --example parse_resume
//! ```

use resuformer::annotate::build_ner_dataset;
use resuformer::block_classifier::{BlockClassifier, FinetuneConfig};
use resuformer::config::ModelConfig;
use resuformer::data::{
    block_tag_scheme, build_tokenizer, entity_tag_scheme, prepare_document, sentence_iob_labels,
    DocumentInput,
};
use resuformer::encoder::HierarchicalEncoder;
use resuformer::ner::{NerConfig, NerModel};
use resuformer::pipeline::{EntityExtractor, ResumeParser};
use resuformer::self_training::{self_train, SelfTrainingConfig};
use resuformer_datagen::{Corpus, Dictionaries, DictionaryConfig, EntityType, Scale, Split};
use resuformer_tensor::init::seeded_rng;
use resuformer_text::Vocab;

fn main() {
    let seed = 17u64;
    let corpus = Corpus::generate(seed, Scale::Smoke);
    let wp = build_tokenizer(corpus.words(Split::Pretrain), 2);
    let word_vocab = Vocab::build(corpus.words(Split::Pretrain), 2);
    let config = ModelConfig::tiny(wp.vocab.len());
    let scheme = block_tag_scheme();
    let mut rng = seeded_rng(seed);

    // Stage 1: block classifier (skipping pre-training here for speed; see
    // examples/train_block_classifier.rs for the full recipe).
    println!("Training the block classifier...");
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let train: Vec<(DocumentInput, Vec<usize>)> = corpus
        .train
        .iter()
        .map(|r| {
            let (input, sentences) = prepare_document(&r.doc, &wp, &config);
            let labels = sentence_iob_labels(r, &sentences, &scheme);
            (input, labels)
        })
        .collect();
    let pairs: Vec<(&DocumentInput, &[usize])> =
        train.iter().map(|(d, l)| (d, l.as_slice())).collect();
    classifier.finetune(
        &pairs,
        &FinetuneConfig {
            epochs: 6,
            ..Default::default()
        },
        &mut rng,
    );

    // Stage 2: distantly-supervised NER via Algorithm 2.
    println!("Training the intra-block extractor (Algorithm 2)...");
    let dicts = Dictionaries::build(DictionaryConfig::default());
    let entity_scheme = entity_tag_scheme();
    let ner_train = build_ner_dataset(&corpus.pretrain, &dicts, &word_vocab, &entity_scheme, true);
    let ner_val = build_ner_dataset(
        &corpus.validation,
        &dicts,
        &word_vocab,
        &entity_scheme,
        false,
    );
    let proto = NerModel::new(&mut rng, NerConfig::tiny(word_vocab.len()));
    let out = self_train(
        &proto,
        &ner_train,
        &ner_val,
        &SelfTrainingConfig {
            teacher_epochs: 4,
            iterations: 3,
            batch: 16,
            ..Default::default()
        },
        &mut rng,
    );

    // Parse a held-out resume.
    let parser = ResumeParser {
        classifier,
        extractor: EntityExtractor::Ner {
            model: out.model,
            vocab: word_vocab,
        },
        wordpiece: wp,
        config,
    };
    let target = &corpus.test[0];
    println!(
        "\nParsing held-out resume ({} tokens, {} page(s))...",
        target.doc.num_tokens(),
        target.doc.num_pages()
    );
    let parsed = parser.parse(&target.doc, &mut rng);
    println!(
        "  block classification: {:.3}s | intra-block extraction: {:.3}s",
        parsed.classify_seconds, parsed.extract_seconds
    );
    for block in &parsed.blocks {
        println!(
            "  [{:8}] sentences {:?}: {} entit{}",
            block.block_type.name(),
            block.sentence_range,
            block.entities.len(),
            if block.entities.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
        for e in &block.entities {
            println!("              {:?}: {}", e.entity, e.text);
        }
    }
    println!(
        "\nGround truth: name={:?}, email={:?}",
        target.record.name, target.record.email
    );
    println!(
        "Extracted   : name={:?}, email={:?}",
        parsed.entities_of(EntityType::Name),
        parsed.entities_of(EntityType::Email)
    );
}
