//! Distantly-supervised intra-block extraction: build the entity
//! dictionaries, auto-annotate blocks (§IV-B2), run the self-distillation
//! self-training loop (Algorithm 2), and compare against the pure
//! dictionary matcher.
//!
//! ```bash
//! cargo run --release -p resuformer-bench --example distant_ner
//! ```

use resuformer::annotate::build_ner_dataset;
use resuformer::data::entity_tag_scheme;
use resuformer::ner::{NerConfig, NerModel};
use resuformer::self_training::{self_train, token_accuracy, SelfTrainingConfig};
use resuformer_datagen::{Corpus, Dictionaries, DictionaryConfig, Scale, Split};
use resuformer_tensor::init::seeded_rng;
use resuformer_text::{decode_spans, Vocab};

fn main() {
    let seed = 13u64;
    println!("Generating corpus and distant-supervision dictionaries...");
    let corpus = Corpus::generate(seed, Scale::Smoke);
    let dicts = Dictionaries::build(DictionaryConfig::default());
    let vocab = Vocab::build(corpus.words(Split::Pretrain), 2);
    let scheme = entity_tag_scheme();

    let train = build_ner_dataset(&corpus.pretrain, &dicts, &vocab, &scheme, true);
    let validation = build_ner_dataset(&corpus.validation, &dicts, &vocab, &scheme, false);
    let test = build_ner_dataset(&corpus.test, &dicts, &vocab, &scheme, false);
    println!(
        "  {} distant train blocks / {} gold validation / {} gold test",
        train.len(),
        validation.len(),
        test.len()
    );

    // Quantify the distant-label noise the self-training must survive.
    let gold_total: usize = train.iter().map(|b| b.num_gold_entities(&scheme)).sum();
    let distant_total: usize = train.iter().map(|b| b.num_distant_entities(&scheme)).sum();
    println!(
        "  distant labels cover {}/{} gold entities ({:.0}% — the designed noise)",
        distant_total,
        gold_total,
        100.0 * distant_total as f32 / gold_total.max(1) as f32
    );

    // Algorithm 2.
    println!("\nSelf-distillation self-training (Eq. 9 soft labels, γ=0.8 HCS)...");
    let mut rng = seeded_rng(seed);
    let proto = NerModel::new(&mut rng, NerConfig::tiny(vocab.len()));
    let cfg = SelfTrainingConfig {
        teacher_epochs: 4,
        iterations: 4,
        batch: 16,
        ..Default::default()
    };
    let out = self_train(&proto, &train, &validation, &cfg, &mut rng);
    println!("  teacher validation entity F1: {:.3}", out.teacher_val);
    println!(
        "  student validation F1 trace : {:?}",
        out.val_trace
            .iter()
            .map(|v| (v * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    let test_acc = token_accuracy(&out.model, &test, &mut rng);
    println!("  student TEST token accuracy: {:.3}", test_acc);

    // Extract entities from one test block.
    let block = test
        .iter()
        .max_by_key(|b| b.num_gold_entities(&scheme))
        .expect("non-empty");
    println!(
        "\nSample block ({:?}): {}",
        block.block_type,
        block.tokens.join(" ")
    );
    let pred = out.model.predict(&block.token_ids, &mut rng);
    for span in decode_spans(&scheme, &pred) {
        println!(
            "  -> {}: {}",
            scheme.class_name(span.class),
            block.tokens[span.start..span.end].join(" ")
        );
    }
}
