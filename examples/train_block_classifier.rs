//! Train the hierarchical multi-modal model end-to-end on a small corpus:
//! the three pre-training objectives, then BiLSTM+CRF fine-tuning, then
//! block segmentation of a held-out resume.
//!
//! ```bash
//! cargo run --release -p resuformer-bench --example train_block_classifier
//! ```

use resuformer::block_classifier::{BlockClassifier, FinetuneConfig};
use resuformer::config::{ModelConfig, PretrainConfig};
use resuformer::data::{
    block_tag_scheme, build_tokenizer, prepare_document, sentence_iob_labels, DocumentInput,
};
use resuformer::encoder::HierarchicalEncoder;
use resuformer::pipeline::segment_blocks;
use resuformer::pretrain::{pretrain, Pretrainer};
use resuformer_datagen::{BlockType, Corpus, Scale, Split};
use resuformer_tensor::init::seeded_rng;

fn main() {
    let seed = 11u64;
    println!("Generating corpus...");
    let corpus = Corpus::generate(seed, Scale::Smoke);
    let wp = build_tokenizer(corpus.words(Split::Pretrain), 2);
    let config = ModelConfig::tiny(wp.vocab.len());
    let scheme = block_tag_scheme();

    let prep = |docs: &[resuformer_datagen::LabeledResume]| -> Vec<(DocumentInput, Vec<usize>)> {
        docs.iter()
            .map(|r| {
                let (input, sentences) = prepare_document(&r.doc, &wp, &config);
                let labels = sentence_iob_labels(r, &sentences, &scheme);
                (input, labels)
            })
            .collect()
    };
    let pretrain_docs: Vec<DocumentInput> = corpus
        .pretrain
        .iter()
        .map(|r| prepare_document(&r.doc, &wp, &config).0)
        .collect();
    let train = prep(&corpus.train);
    let test = prep(&corpus.test);

    // Pre-train with the three self-supervised objectives (Eq. 7).
    println!("Pre-training (MLM + SCL + DNSP)...");
    let mut rng = seeded_rng(seed);
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let pt = Pretrainer::new(&mut rng, &config, PretrainConfig::default());
    let trace = pretrain(&encoder, &pt, &pretrain_docs, 2, &mut rng);
    for (i, m) in trace.iter().enumerate() {
        println!(
            "  epoch {}: total {:.3} (wp {:.3} / cl {:.3} / ns {:.3})",
            i, m.total, m.wp, m.cl, m.ns
        );
    }

    // Fine-tune the BiLSTM+CRF head on the labeled split.
    println!("Fine-tuning on {} labeled resumes...", train.len());
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let pairs: Vec<(&DocumentInput, &[usize])> =
        train.iter().map(|(d, l)| (d, l.as_slice())).collect();
    let ft = FinetuneConfig {
        epochs: 6,
        ..Default::default()
    };
    let loss_trace = classifier.finetune(&pairs, &ft, &mut rng);
    println!(
        "  loss: {:.2} -> {:.2}",
        loss_trace[0],
        loss_trace.last().unwrap()
    );

    // Segment a held-out resume.
    let (doc, gold) = &test[0];
    let pred = classifier.predict(doc, &mut rng);
    let acc = pred
        .iter()
        .zip(gold.iter())
        .filter(|(a, b)| scheme.class_of(**a) == scheme.class_of(**b))
        .count() as f32
        / gold.len() as f32;
    println!(
        "\nHeld-out resume ({} sentences): sentence-class accuracy {:.3}",
        gold.len(),
        acc
    );
    println!("Predicted segmentation:");
    for (start, end, class) in segment_blocks(&scheme, &pred) {
        println!(
            "  sentences {:3}..{:3} -> {}",
            start,
            end,
            BlockType::ALL[class].name()
        );
    }
}
