//! Quickstart: generate a synthetic resume, inspect its layout, and extract
//! entities with the rule-based (dictionary + matcher) annotator — no
//! training required.
//!
//! ```bash
//! cargo run -p resuformer-bench --example quickstart
//! ```

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::annotate::extract_blocks;
use resuformer::pipeline::rule_based_entities;
use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
use resuformer_datagen::{Dictionaries, DictionaryConfig};

fn main() {
    // 1. Generate a fictional resume with full ground truth.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let resume = generate_resume(&mut rng, &GeneratorConfig::smoke());
    println!(
        "Generated resume for {:?} — {} tokens on {} page(s), template {:?}\n",
        resume.record.name,
        resume.doc.num_tokens(),
        resume.doc.num_pages(),
        resume.template
    );

    // 2. Walk its semantic blocks.
    let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
    for (block_type, token_idx) in extract_blocks(&resume) {
        let words: Vec<String> = token_idx
            .iter()
            .map(|&i| resume.doc.tokens[i].text.clone())
            .collect();
        let preview: String = words.iter().take(10).cloned().collect::<Vec<_>>().join(" ");
        println!(
            "[{:8}] {}{}",
            block_type.name(),
            preview,
            if words.len() > 10 { " ..." } else { "" }
        );

        // 3. Rule-based entity extraction (the D&R Match path).
        for e in rule_based_entities(&words, block_type, &dicts) {
            println!("            -> {:?}: {}", e.entity, e.text);
        }
    }

    println!("\nGround truth record:");
    println!("  name : {}", resume.record.name);
    println!("  email: {}", resume.record.email);
    println!("  works: {}", resume.record.works.len());
    println!("\nNext: examples/train_block_classifier.rs trains the hierarchical");
    println!("multi-modal model; examples/distant_ner.rs runs Algorithm 2.");
}
