//! Shape tests: the qualitative findings of the paper's evaluation must
//! hold in the reproduction (DESIGN.md §4 "expected shapes"). These run at
//! smoke scale with loose margins — they are regression nets for the
//! *ordering* of methods, not their absolute numbers.

use resuformer::block_classifier::BlockClassifier;
use resuformer::data::prepare_document;
use resuformer::encoder::HierarchicalEncoder;
use resuformer_baselines::{prepare_token_doc, LayoutXlmSim};
use resuformer_bench::{BlockBench, NerBench};
use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
use resuformer_datagen::Scale;
use resuformer_eval::Prf;
use resuformer_tensor::init::seeded_rng;

fn micro(r: &resuformer_bench::MethodNerResult) -> Prf {
    r.per_row.iter().fold(Prf::default(), |mut a, m| {
        a.tp += m.tp;
        a.fp += m.fp;
        a.fn_ += m.fn_;
        a
    })
}

#[test]
fn dr_match_is_high_precision_low_recall() {
    // Table IV: "D&R Match achieves very high precision score but low
    // recall score".
    let bench = NerBench::new(Scale::Smoke, 21);
    let dr = micro(&bench.run_dr_match());
    assert!(dr.precision() > 0.8, "precision {}", dr.precision());
    assert!(
        dr.precision() > dr.recall(),
        "precision {} should exceed recall {}",
        dr.precision(),
        dr.recall()
    );
}

#[test]
fn fixed_format_tags_are_easiest() {
    // §V-B5: "the F1 scores for some tags, such as gender, email, date and
    // degree, are more than 90%" — they have fixed formats / finite values.
    let bench = NerBench::new(Scale::Smoke, 22);
    let dr = bench.run_dr_match();
    use resuformer_bench::TABLE4_ROWS;
    use resuformer_datagen::EntityType;
    for target in [EntityType::Gender, EntityType::Email, EntityType::PhoneNum] {
        let idx = TABLE4_ROWS.iter().position(|(_, e)| *e == target).unwrap();
        assert!(
            dr.per_row[idx].f1() > 0.85,
            "{:?} F1 {}",
            target,
            dr.per_row[idx].f1()
        );
    }
}

#[test]
fn self_training_beats_pure_matching_on_recall() {
    // The trained extractor generalises past dictionary coverage; the
    // matcher cannot (its recall is bounded by coverage).
    let bench = NerBench::new(Scale::Smoke, 23);
    let dr = micro(&bench.run_dr_match());
    let ours = micro(&bench.run_ours(true, true, true, "ours"));
    // Loose margin: smoke-scale self-training is noisy (tiny model, few
    // iterations), so assert "not meaningfully behind the matcher" rather
    // than a strict win — the strict ordering belongs to paper scale.
    assert!(
        ours.recall() + 0.10 >= dr.recall(),
        "ours recall {} vs matcher {}",
        ours.recall(),
        dr.recall()
    );
}

#[test]
fn sentence_level_inference_is_faster_on_long_documents() {
    // The Time/Resume row: token-level windowed models pay quadratic
    // attention over long windows; the hierarchical sentence-level model
    // does not. On a paper-profile (~1700-token) resume the gap must be
    // visible even with untrained weights.
    use rand_chacha::rand_core::SeedableRng;
    let mut drng = rand_chacha::ChaCha8Rng::seed_from_u64(24);
    let resume = generate_resume(&mut drng, &GeneratorConfig::paper());

    let bench = BlockBench::new(Scale::Smoke, 24);
    let mut rng = seeded_rng(25);
    let encoder = HierarchicalEncoder::new(&mut rng, &bench.config);
    let ours = BlockClassifier::new(&mut rng, &bench.config, encoder);
    // 512-token windows, as the real LayoutXLM uses: quadratic window
    // attention dominates and the gap is robust to machine load.
    let layoutxlm = LayoutXlmSim::new(&mut rng, &bench.config, 512);

    let (input, _) = prepare_document(&resume.doc, &bench.wp, &bench.config);
    let td = prepare_token_doc(&resume.doc, &bench.wp, &bench.config, 512);

    // Min-of-5: the minimum over several runs is robust to transient
    // contention spikes (a loaded CI box can stall any single run).
    let time = |f: &mut dyn FnMut()| {
        (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let mut prng = seeded_rng(26);
    let t_ours = time(&mut || {
        ours.predict(&input, &mut prng);
    });
    let t_token = time(&mut || {
        layoutxlm.predict_sentences(&td, &mut prng);
    });
    // The asymptotic gap is large; 1.05 keeps the ordering assertion while
    // tolerating scheduler noise on shared runners.
    assert!(
        t_token > t_ours * 1.05,
        "token-level {:.4}s should be slower than sentence-level {:.4}s",
        t_token,
        t_ours
    );
}

#[test]
fn multimodal_headers_disambiguate_block_classes() {
    // The designed ambiguity: the same header text maps to different block
    // classes across templates, disambiguated by style. Check the corpus
    // actually contains the ambiguity (precondition for Table II's
    // multimodal > text-only ordering).
    use resuformer_datagen::{BlockType, TemplateStyle};
    let compact_work = TemplateStyle::Compact.header(BlockType::WorkExp).unwrap();
    let labeled_proj = TemplateStyle::Labeled.header(BlockType::ProjExp).unwrap();
    assert_eq!(
        compact_work, labeled_proj,
        "ambiguous header text must be shared"
    );
}
