//! Cross-crate integration test: the full ResuFormer pipeline from corpus
//! generation through pre-training, fine-tuning, block segmentation,
//! distant NER and structured-record extraction.

use resuformer::annotate::build_ner_dataset;
use resuformer::block_classifier::{BlockClassifier, FinetuneConfig};
use resuformer::config::{ModelConfig, PretrainConfig};
use resuformer::data::{
    block_tag_scheme, build_tokenizer, entity_tag_scheme, prepare_document, sentence_iob_labels,
    DocumentInput,
};
use resuformer::encoder::HierarchicalEncoder;
use resuformer::ner::{NerConfig, NerModel};
use resuformer::pipeline::{EntityExtractor, ResumeParser};
use resuformer::pretrain::{pretrain, Pretrainer};
use resuformer::self_training::{self_train, SelfTrainingConfig};
use resuformer_datagen::{Corpus, Dictionaries, DictionaryConfig, EntityType, Scale, Split};
use resuformer_tensor::init::seeded_rng;
use resuformer_text::Vocab;

#[test]
fn full_pipeline_generates_trains_and_parses() {
    let seed = 1234u64;
    let corpus = Corpus::generate(seed, Scale::Smoke);
    let wp = build_tokenizer(corpus.words(Split::Pretrain), 2);
    let word_vocab = Vocab::build(corpus.words(Split::Pretrain), 2);
    let config = ModelConfig::tiny(wp.vocab.len());
    let scheme = block_tag_scheme();
    let mut rng = seeded_rng(seed);

    // --- Stage 0: pre-training (1 epoch, loss must be finite) ------------
    let pre_docs: Vec<DocumentInput> = corpus
        .pretrain
        .iter()
        .take(6)
        .map(|r| prepare_document(&r.doc, &wp, &config).0)
        .collect();
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let pt = Pretrainer::new(&mut rng, &config, PretrainConfig::default());
    let trace = pretrain(&encoder, &pt, &pre_docs, 1, &mut rng);
    assert!(trace[0].total.is_finite());
    assert!(trace[0].total > 0.0);

    // --- Stage 1: block classifier fine-tuning ---------------------------
    let train: Vec<(DocumentInput, Vec<usize>)> = corpus
        .train
        .iter()
        .map(|r| {
            let (input, sentences) = prepare_document(&r.doc, &wp, &config);
            let labels = sentence_iob_labels(r, &sentences, &scheme);
            (input, labels)
        })
        .collect();
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let pairs: Vec<(&DocumentInput, &[usize])> =
        train.iter().map(|(d, l)| (d, l.as_slice())).collect();
    classifier.finetune(
        &pairs,
        &FinetuneConfig {
            epochs: 8,
            ..Default::default()
        },
        &mut rng,
    );

    // Training-set segmentation accuracy must be strong.
    let (doc0, gold0) = &train[0];
    let pred = classifier.predict(doc0, &mut rng);
    let acc = pred
        .iter()
        .zip(gold0.iter())
        .filter(|(a, b)| scheme.class_of(**a) == scheme.class_of(**b))
        .count() as f32
        / gold0.len() as f32;
    assert!(acc > 0.7, "train segmentation accuracy {acc}");

    // --- Stage 2: distant NER via Algorithm 2 ----------------------------
    let dicts = Dictionaries::build(DictionaryConfig::default());
    let entity_scheme = entity_tag_scheme();
    let ner_train = build_ner_dataset(&corpus.pretrain, &dicts, &word_vocab, &entity_scheme, true);
    let ner_val = build_ner_dataset(
        &corpus.validation,
        &dicts,
        &word_vocab,
        &entity_scheme,
        false,
    );
    assert!(!ner_train.is_empty());
    let proto = NerModel::new(&mut rng, NerConfig::tiny(word_vocab.len()));
    let out = self_train(
        &proto,
        &ner_train,
        &ner_val,
        &SelfTrainingConfig {
            teacher_epochs: 3,
            iterations: 2,
            batch: 8,
            ..Default::default()
        },
        &mut rng,
    );
    assert!(
        out.teacher_val > 0.5,
        "teacher validation accuracy {}",
        out.teacher_val
    );

    // --- Stage 3: end-to-end parse ---------------------------------------
    let parser = ResumeParser {
        classifier,
        extractor: EntityExtractor::Ner {
            model: out.model,
            vocab: word_vocab,
        },
        wordpiece: wp,
        config,
    };
    let target = &corpus.train[0]; // seen in training: parse must be coherent
    let parsed = parser.parse(&target.doc, &mut rng);
    assert!(!parsed.blocks.is_empty(), "no blocks parsed");
    assert!(parsed.classify_seconds > 0.0);

    let total_entities: usize = parsed.blocks.iter().map(|b| b.entities.len()).sum();
    assert!(
        total_entities >= 3,
        "only {total_entities} entities extracted"
    );

    // Fixed-format entities (email/phone) are the easiest — at least one
    // email or phone must surface from PInfo.
    let emails = parsed.entities_of(EntityType::Email);
    let phones = parsed.entities_of(EntityType::PhoneNum);
    assert!(
        !emails.is_empty() || !phones.is_empty(),
        "no contact entity extracted"
    );
}

#[test]
fn model_persistence_survives_pipeline() {
    // Train briefly, save to bytes, restore into a fresh instance, and
    // verify identical predictions — the deployment path.
    use resuformer_nn::Module;
    let seed = 77u64;
    let corpus = Corpus::generate(seed, Scale::Smoke);
    let wp = build_tokenizer(corpus.words(Split::Pretrain), 2);
    let config = ModelConfig::tiny(wp.vocab.len());
    let scheme = block_tag_scheme();
    let mut rng = seeded_rng(seed);

    let (input, sentences) = prepare_document(&corpus.train[0].doc, &wp, &config);
    let labels = sentence_iob_labels(&corpus.train[0], &sentences, &scheme);
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let pairs: Vec<(&DocumentInput, &[usize])> = vec![(&input, labels.as_slice())];
    classifier.finetune(
        &pairs,
        &FinetuneConfig {
            epochs: 3,
            ..Default::default()
        },
        &mut rng,
    );

    let bytes = classifier.save_bytes();

    let mut rng2 = seeded_rng(seed); // identical architecture RNG stream
    let encoder2 = HierarchicalEncoder::new(&mut rng2, &config);
    let restored = BlockClassifier::new(&mut rng2, &config, encoder2);
    restored.load_bytes(&bytes).expect("load saved weights");

    let mut r1 = seeded_rng(1);
    let mut r2 = seeded_rng(1);
    assert_eq!(
        classifier.predict(&input, &mut r1),
        restored.predict(&input, &mut r2)
    );
}

#[test]
fn pretraining_improves_downstream_over_random_init() {
    // The paper's central claim for the first task: self-supervised
    // pre-training reduces dependence on labeled data. With very few
    // labeled documents, the pre-trained encoder should fine-tune to a
    // better (or at least not worse) held-out accuracy than random init.
    let seed = 88u64;
    let corpus = Corpus::generate(seed, Scale::Smoke);
    let wp = build_tokenizer(corpus.words(Split::Pretrain), 2);
    let config = ModelConfig::tiny(wp.vocab.len());
    let scheme = block_tag_scheme();

    let prep = |r: &resuformer_datagen::LabeledResume| {
        let (input, sentences) = prepare_document(&r.doc, &wp, &config);
        let labels = sentence_iob_labels(r, &sentences, &scheme);
        (input, labels)
    };
    let train: Vec<_> = corpus.train.iter().take(4).map(prep).collect();
    let test: Vec<_> = corpus.test.iter().take(4).map(prep).collect();
    let pre_docs: Vec<DocumentInput> = corpus
        .pretrain
        .iter()
        .take(12)
        .map(|r| prepare_document(&r.doc, &wp, &config).0)
        .collect();

    let accuracy = |clf: &BlockClassifier, rng: &mut rand_chacha::ChaCha8Rng| -> f32 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (doc, labels) in &test {
            let pred = clf.predict(doc, rng);
            for (p, g) in pred.iter().zip(labels.iter()) {
                if scheme.class_of(*p) == scheme.class_of(*g) {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f32 / total.max(1) as f32
    };

    let run = |pretrain_epochs: usize| -> f32 {
        let mut rng = seeded_rng(seed ^ 0xBEEF);
        let encoder = HierarchicalEncoder::new(&mut rng, &config);
        if pretrain_epochs > 0 {
            let pt = Pretrainer::new(&mut rng, &config, PretrainConfig::default());
            pretrain(&encoder, &pt, &pre_docs, pretrain_epochs, &mut rng);
        }
        let clf = BlockClassifier::new(&mut rng, &config, encoder);
        let pairs: Vec<(&DocumentInput, &[usize])> =
            train.iter().map(|(d, l)| (d, l.as_slice())).collect();
        clf.finetune(
            &pairs,
            &FinetuneConfig {
                epochs: 8,
                ..Default::default()
            },
            &mut rng,
        );
        accuracy(&clf, &mut rng)
    };

    let random_init = run(0);
    let pretrained = run(2);
    assert!(
        pretrained + 0.10 >= random_init,
        "pre-training hurt badly: {pretrained} vs {random_init}"
    );
}
