//! Smoke tests over the experiment harness: every table driver's entry
//! points run at reduced budgets and produce structurally valid results.

use resuformer_bench::ner_exp::render_ner_table;
use resuformer_bench::{BlockBench, NerBench, TABLE4_ROWS};
use resuformer_datagen::{BlockType, Corpus, Scale, Split};

#[test]
fn table1_statistics_are_consistent() {
    let corpus = Corpus::generate(5, Scale::Smoke);
    for split in [
        Split::Pretrain,
        Split::Train,
        Split::Validation,
        Split::Test,
    ] {
        let s = corpus.stats(split);
        assert!(s.n_docs > 0);
        assert!(s.avg_tokens > 0.0);
        assert!(s.avg_sentences > 0.0);
        assert!(s.avg_pages >= 1.0);
        // Tokens per sentence must be plausible (not degenerate).
        let tps = s.avg_tokens / s.avg_sentences;
        assert!((2.0..60.0).contains(&tps), "tokens/sentence {tps}");
    }
}

#[test]
fn table2_driver_hibert_runs_end_to_end() {
    // HiBERT is the cheapest trained method; it exercises the shared
    // evaluate/timing path of the Table II driver.
    let bench = BlockBench::new(Scale::Smoke, 6);
    let res = bench.run_hibert();
    assert_eq!(res.per_tag.len(), BlockType::ALL.len());
    assert!(res.seconds_per_resume > 0.0);
    // A trained model must beat the all-O floor on at least half the tags.
    let nonzero = res.per_tag.iter().filter(|m| m.f1 > 0.3).count();
    assert!(nonzero >= 4, "only {nonzero} tags above 0.3 F1");
}

#[test]
fn table4_driver_rows_and_rendering() {
    let bench = NerBench::new(Scale::Smoke, 7);
    let dr = bench.run_dr_match();
    assert_eq!(dr.per_row.len(), TABLE4_ROWS.len());
    let table = render_ner_table("smoke", &[dr.clone()]);
    assert!(table.contains("EduExp/College"));
    // Fixed-format classes (Email/PhoneNum) must be near-perfect for the
    // matcher (they use closed patterns, not dictionaries).
    let email_idx = TABLE4_ROWS
        .iter()
        .position(|(_, e)| *e == resuformer_datagen::EntityType::Email)
        .unwrap();
    assert!(
        dr.per_row[email_idx].f1() > 0.9,
        "email F1 {}",
        dr.per_row[email_idx].f1()
    );
}

#[test]
fn table6_dataset_statistics_are_consistent() {
    let bench = NerBench::new(Scale::Smoke, 8);
    assert!(!bench.train.is_empty());
    assert!(!bench.validation.is_empty());
    assert!(!bench.test.is_empty());
    // Training instances were filtered to ≥ 1 distant match.
    for b in &bench.train {
        assert!(b.num_distant_entities(&bench.scheme) >= 1);
    }
    // Average entities per gold block in the paper's range neighbourhood.
    let avg: f32 = bench
        .test
        .iter()
        .map(|b| b.num_gold_entities(&bench.scheme) as f32)
        .sum::<f32>()
        / bench.test.len() as f32;
    assert!((1.0..8.0).contains(&avg), "avg gold entities {avg}");
}

#[test]
fn corpus_splits_do_not_leak() {
    // Train/test documents must be distinct (different names with very
    // high probability across the whole splits).
    let corpus = Corpus::generate(9, Scale::Smoke);
    let train_names: Vec<&str> = corpus
        .train
        .iter()
        .map(|r| r.record.name.as_str())
        .collect();
    let dup = corpus
        .test
        .iter()
        .filter(|r| {
            train_names.contains(&r.record.name.as_str())
                && corpus.train.iter().any(|t| {
                    t.record.name == r.record.name && t.doc.num_tokens() == r.doc.num_tokens()
                })
        })
        .count();
    assert_eq!(dup, 0, "{dup} identical documents shared between splits");
}
