#!/usr/bin/env bash
# The full local CI gate: build, test, formatting, lints.
#
#   ./scripts/ci.sh            # everything
#   SKIP_CLIPPY=1 ./scripts/ci.sh
#
# Mirrors what a hosted pipeline would run; keep it green before pushing.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [[ -z "${SKIP_CLIPPY:-}" ]]; then
    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
    # The training engine is new: lint it explicitly so a workspace-level
    # exclusion can never silently skip it.
    echo "==> cargo clippy -p resuformer-train -- -D warnings"
    cargo clippy -p resuformer-train --all-targets -- -D warnings
    # Same for the telemetry substrate every other crate now records into.
    echo "==> cargo clippy -p resuformer-telemetry -- -D warnings"
    cargo clippy -p resuformer-telemetry --all-targets -- -D warnings
fi

echo "==> pretrain smoke: 2-worker run, kill point, resume, trace capture"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
CLI=target/release/resuformer-cli
"$CLI" generate --count 4 --out "$SMOKE_DIR/resumes.json" --seed 7
"$CLI" pretrain --data "$SMOKE_DIR/resumes.json" --model "$SMOKE_DIR/ckpt.bin" \
    --workers 2 --epochs 1 --sync-every 1 --checkpoint-every 1 --seed 42 \
    --trace-out "$SMOKE_DIR/trace.json"
"$CLI" pretrain --data "$SMOKE_DIR/resumes.json" --model "$SMOKE_DIR/ckpt.bin" \
    --resume "$SMOKE_DIR/ckpt.bin" --epochs 2
# Resuming a finished run must be a clean no-op.
"$CLI" pretrain --data "$SMOKE_DIR/resumes.json" --model "$SMOKE_DIR/ckpt.bin" \
    --resume "$SMOKE_DIR/ckpt.bin" --epochs 2

echo "==> trace smoke: --trace-out wrote a valid Chrome trace"
python3 - "$SMOKE_DIR/trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace must contain at least one span event"
names = {e["name"] for e in events}
assert "train.forward" in names, f"no forward spans in {sorted(names)}"
assert "train.backward" in names, f"no backward spans in {sorted(names)}"
for e in events:
    assert e["ph"] == "X" and e["ts"] >= 0 and e["dur"] >= 0, e
print(f"    {len(events)} events, phases: {', '.join(sorted(names))}")
PY

echo "==> stale smoke: 2-worker stale:2 run, kill point, resume, bit-identity"
# Full uninterrupted run vs killed-at-epoch-1 + resumed: the final
# checkpoints must be byte-identical (the determinism contract).
"$CLI" pretrain --data "$SMOKE_DIR/resumes.json" --model "$SMOKE_DIR/stale_full.ckpt" \
    --workers 2 --epochs 2 --sync-every 1 --checkpoint-every 0 --seed 42 \
    --sync-mode stale:2
"$CLI" pretrain --data "$SMOKE_DIR/resumes.json" --model "$SMOKE_DIR/stale_resume.ckpt" \
    --workers 2 --epochs 1 --sync-every 1 --checkpoint-every 1 --seed 42 \
    --sync-mode stale:2
# Resume without --sync-mode: the checkpoint's mode must be adopted.
"$CLI" pretrain --data "$SMOKE_DIR/resumes.json" --model "$SMOKE_DIR/stale_resume.ckpt" \
    --resume "$SMOKE_DIR/stale_resume.ckpt" --epochs 2 --sync-every 1 \
    --checkpoint-every 0 --seed 42
cmp "$SMOKE_DIR/stale_full.ckpt" "$SMOKE_DIR/stale_resume.ckpt" \
    || { echo "stale kill/resume checkpoint diverged"; exit 1; }

echo "==> trace ring smoke: tiny capacity drops events and exports the counter"
"$CLI" pretrain --data "$SMOKE_DIR/resumes.json" --model "$SMOKE_DIR/ring.ckpt" \
    --workers 2 --epochs 1 --sync-every 1 --checkpoint-every 0 --seed 42 \
    --trace-out "$SMOKE_DIR/ring_trace.json" --trace-capacity 8 \
    --metrics-out "$SMOKE_DIR/metrics.prom"
grep -q '^telemetry_trace_dropped_events ' "$SMOKE_DIR/metrics.prom" \
    || { echo "dropped-event counter missing from Prometheus export"; exit 1; }
DROPPED=$(awk '/^telemetry_trace_dropped_events /{print $2}' "$SMOKE_DIR/metrics.prom")
[[ "$DROPPED" -gt 0 ]] \
    || { echo "expected drops with --trace-capacity 8, got $DROPPED"; exit 1; }
python3 - "$SMOKE_DIR/ring_trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert 0 < len(events) <= 8, f"ring capacity 8 violated: {len(events)} events"
print(f"    ring kept {len(events)} events (capacity 8)")
PY
echo "    ring dropped $DROPPED events, counter exported"

echo "==> chaos smoke: armed failpoint + mixed burst, pool stays at full strength"
"$CLI" train --data "$SMOKE_DIR/resumes.json" --model "$SMOKE_DIR/serve_model.bin" \
    --epochs 1 --seed 42
RESUFORMER_FAILPOINTS='serve.worker.parse=one_shot_panic' \
    "$CLI" serve --model "$SMOKE_DIR/serve_model.bin" --port 0 --workers 2 \
    --max-wait-ms 2 >"$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's|^listening on http://\([0-9.:]*\).*|\1|p' "$SMOKE_DIR/serve.log")
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "server never announced its address"; cat "$SMOKE_DIR/serve.log"; exit 1; }
# Chaos burst: 3 of every 8 requests are deliberately malformed, and the
# armed failpoint panics one worker parse. Exit gate: every request gets
# a well-formed terminal answer.
target/release/loadgen --addr "$ADDR" --requests 64 --concurrency 8 --seed 42 --chaos
python3 - "$ADDR" <<'PY'
import json, sys, urllib.request
addr = sys.argv[1]
with urllib.request.urlopen(f"http://{addr}/healthz", timeout=10) as r:
    assert r.status == 200, f"healthz after chaos: {r.status}"
with urllib.request.urlopen(f"http://{addr}/metrics", timeout=10) as r:
    m = json.load(r)
assert m["workers_alive"] == 2, f"pool shrank: {m['workers_alive']}/2 workers alive"
assert m["worker_restarts"] == 0, f"caught panic must not kill a worker: {m}"
assert m["worker_panics"] >= 1, f"the armed failpoint never fired: {m}"
print(f"    survived: {m['requests']} ok / {m['errors']} degraded, "
      f"panics {m['worker_panics']}, poisoned {m['docs_poisoned']}, pool 2/2")
PY
kill -INT "$SERVE_PID"
wait "$SERVE_PID"
trap 'rm -rf "$SMOKE_DIR"' EXIT

echo "==> CI OK"
