#!/usr/bin/env bash
# The full local CI gate: build, test, formatting, lints.
#
#   ./scripts/ci.sh            # everything
#   SKIP_CLIPPY=1 ./scripts/ci.sh
#
# Mirrors what a hosted pipeline would run; keep it green before pushing.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [[ -z "${SKIP_CLIPPY:-}" ]]; then
    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> CI OK"
