//! Property-based tests of the resume generator's ground-truth invariants.

use proptest::prelude::*;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
use resuformer_datagen::BlockType;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn documents_always_validate(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        prop_assert!(r.doc.validate().is_ok());
        prop_assert_eq!(r.doc.num_tokens(), r.token_blocks.len());
        prop_assert_eq!(r.doc.num_tokens(), r.token_entities.len());
    }

    #[test]
    fn block_instances_are_contiguous(seed in 0u64..10_000) {
        // A block instance id must appear as one contiguous token run —
        // the precondition for IOB labels being well formed.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let mut seen: Vec<(BlockType, usize)> = Vec::new();
        let mut prev: Option<(BlockType, usize)> = None;
        for &key in &r.token_blocks {
            if prev != Some(key) {
                prop_assert!(
                    !seen.contains(&key),
                    "block instance {:?} split into multiple runs",
                    key
                );
                seen.push(key);
                prev = Some(key);
            }
        }
    }

    #[test]
    fn reading_order_is_monotone(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        for w in r.doc.tokens.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                a.page < b.page || (a.page == b.page && a.bbox.y0 <= b.bbox.y0 + 0.5),
                "tokens out of reading order: {:?} then {:?}",
                (a.page, a.bbox.y0),
                (b.page, b.bbox.y0)
            );
        }
    }

    #[test]
    fn record_entities_appear_in_document(seed in 0u64..10_000) {
        // The name's family token must appear with a Name entity label.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let family = r.record.name.split_whitespace().next().unwrap();
        let found = r.doc.tokens.iter().zip(r.token_entities.iter()).any(|(t, e)| {
            t.text == family && e.is_some()
        });
        prop_assert!(found, "name token {:?} not labeled", family);
    }

    #[test]
    fn title_blocks_use_header_font(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let body = r.template.body_font();
        for (i, &(ty, _)) in r.token_blocks.iter().enumerate() {
            if ty == BlockType::Title {
                prop_assert!(
                    r.doc.tokens[i].font_size > body,
                    "title token not visually distinct"
                );
            }
        }
    }
}
