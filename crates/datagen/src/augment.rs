//! Training-data augmentation for distant supervision (§IV-B2):
//! "we replace the entity mentions in the sentence with other entities in
//! the dictionaries" and "the order of entities ... can be adjusted".

use rand::seq::SliceRandom;
use rand::Rng;

use crate::entities;
use crate::types::EntityType;

/// A token-level training instance: words plus per-token entity labels.
#[derive(Clone, Debug, PartialEq)]
pub struct NerInstance {
    /// Word tokens.
    pub tokens: Vec<String>,
    /// Per-token entity label.
    pub labels: Vec<Option<EntityType>>,
}

impl NerInstance {
    /// Contiguous same-class entity runs as `(start, end, class)`.
    pub fn entity_runs(&self) -> Vec<(usize, usize, EntityType)> {
        let mut runs = Vec::new();
        let mut i = 0;
        while i < self.labels.len() {
            if let Some(c) = self.labels[i] {
                let mut j = i + 1;
                while j < self.labels.len() && self.labels[j] == Some(c) {
                    j += 1;
                }
                runs.push((i, j, c));
                i = j;
            } else {
                i += 1;
            }
        }
        runs
    }
}

fn replacement_pool(class: EntityType) -> Option<Vec<String>> {
    match class {
        EntityType::College => Some(entities::all_colleges()),
        EntityType::Company => Some(entities::all_companies()),
        EntityType::ProjName => Some(entities::all_projects()),
        EntityType::Major => Some(entities::MAJORS.iter().map(|s| s.to_string()).collect()),
        EntityType::Position => Some(entities::POSITIONS.iter().map(|s| s.to_string()).collect()),
        _ => None,
    }
}

/// Mention replacement: swap each open-class entity mention for a random
/// same-class dictionary entry with probability `p`.
pub fn replace_mentions(rng: &mut impl Rng, inst: &NerInstance, p: f64) -> NerInstance {
    let mut tokens: Vec<String> = Vec::with_capacity(inst.tokens.len());
    let mut labels: Vec<Option<EntityType>> = Vec::with_capacity(inst.labels.len());
    let runs = inst.entity_runs();
    let mut next_run = 0usize;
    let mut i = 0;
    while i < inst.tokens.len() {
        let run = runs.get(next_run).filter(|r| r.0 == i).copied();
        match run {
            Some((start, end, class)) => {
                next_run += 1;
                let replace = rng.gen_bool(p);
                match (replace, replacement_pool(class)) {
                    (true, Some(pool)) => {
                        let repl = pool.choose(rng).expect("non-empty pool");
                        for w in repl.split_whitespace() {
                            tokens.push(w.to_string());
                            labels.push(Some(class));
                        }
                    }
                    _ => {
                        for k in start..end {
                            tokens.push(inst.tokens[k].clone());
                            labels.push(inst.labels[k]);
                        }
                    }
                }
                i = end;
            }
            None => {
                tokens.push(inst.tokens[i].clone());
                labels.push(inst.labels[i]);
                i += 1;
            }
        }
    }
    NerInstance { tokens, labels }
}

/// Field reorder: rotate the entity runs of an instance (e.g. swap the
/// company/date order in a work-experience header line), keeping the
/// non-entity filler in place.
pub fn reorder_entities(rng: &mut impl Rng, inst: &NerInstance) -> NerInstance {
    let runs = inst.entity_runs();
    if runs.len() < 2 {
        return inst.clone();
    }
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.shuffle(rng);
    // Rebuild: walk the original, emitting the next run in shuffled order
    // whenever a run position is reached.
    let mut tokens = Vec::with_capacity(inst.tokens.len());
    let mut labels = Vec::with_capacity(inst.labels.len());
    let mut emitted = 0usize;
    let mut i = 0;
    while i < inst.tokens.len() {
        if let Some(pos) = runs.iter().position(|r| r.0 == i) {
            let _ = pos;
            let (_, end, _) = runs[runs.iter().position(|r| r.0 == i).expect("found")];
            let (rs, re, rc) = runs[order[emitted]];
            emitted += 1;
            for k in rs..re {
                tokens.push(inst.tokens[k].clone());
                labels.push(Some(rc));
            }
            i = end;
        } else {
            tokens.push(inst.tokens[i].clone());
            labels.push(inst.labels[i]);
            i += 1;
        }
    }
    NerInstance { tokens, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> NerInstance {
        NerInstance {
            tokens: [
                "2018.09",
                "-",
                "2022.06",
                "Northlake",
                "University",
                "Computer",
                "Science",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            labels: vec![
                Some(EntityType::Date),
                Some(EntityType::Date),
                Some(EntityType::Date),
                Some(EntityType::College),
                Some(EntityType::College),
                Some(EntityType::Major),
                Some(EntityType::Major),
            ],
        }
    }

    #[test]
    fn entity_runs_found() {
        let runs = sample().entity_runs();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], (0, 3, EntityType::Date));
        assert_eq!(runs[1], (3, 5, EntityType::College));
        assert_eq!(runs[2], (5, 7, EntityType::Major));
    }

    #[test]
    fn replacement_preserves_label_structure() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = replace_mentions(&mut rng, &sample(), 1.0);
        assert_eq!(out.tokens.len(), out.labels.len());
        let runs = out.entity_runs();
        // Same number and class sequence of runs; surface may change.
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].2, EntityType::Date);
        assert_eq!(runs[1].2, EntityType::College);
        assert_eq!(runs[2].2, EntityType::Major);
    }

    #[test]
    fn replacement_p_zero_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = sample();
        assert_eq!(replace_mentions(&mut rng, &inst, 0.0), inst);
    }

    #[test]
    fn dates_are_never_replaced() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = replace_mentions(&mut rng, &sample(), 1.0);
        assert_eq!(&out.tokens[..3], &sample().tokens[..3]);
    }

    #[test]
    fn reorder_keeps_multiset_of_classes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let inst = sample();
        let out = reorder_entities(&mut rng, &inst);
        assert_eq!(out.tokens.len(), inst.tokens.len());
        let mut a: Vec<EntityType> = inst.entity_runs().iter().map(|r| r.2).collect();
        let mut b: Vec<EntityType> = out.entity_runs().iter().map(|r| r.2).collect();
        a.sort_by_key(|e| e.index());
        b.sort_by_key(|e| e.index());
        assert_eq!(a, b);
    }

    #[test]
    fn reorder_single_run_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inst = NerInstance {
            tokens: vec!["Northlake".into(), "University".into()],
            labels: vec![Some(EntityType::College); 2],
        };
        assert_eq!(reorder_entities(&mut rng, &inst), inst);
    }
}
