//! Corpus assembly: seeded splits and Table I statistics.
//!
//! The paper pre-trains on 80 000 unlabeled resumes and fine-tunes on a
//! 1 100 / 500 / 500 annotated split. Our synthetic corpus reproduces the
//! *per-document* statistical profile exactly and scales the *counts* down
//! so CPU training completes in minutes; [`Scale`] selects the regime and
//! the experiment harness records both numbers in EXPERIMENTS.md.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer_doc::{concat_sentences, SentenceConfig};
use serde::Serialize;

use crate::generator::{generate_resume, GeneratorConfig, LabeledResume};

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: small documents, few of them.
    Smoke,
    /// Paper-profile documents (Table I averages), reduced counts.
    Paper,
}

impl Scale {
    /// Generator richness for this scale.
    pub fn generator_config(&self) -> GeneratorConfig {
        match self {
            Scale::Smoke => GeneratorConfig::smoke(),
            Scale::Paper => GeneratorConfig::paper(),
        }
    }

    /// Split sizes `(pretrain, train, validation, test)`.
    pub fn split_sizes(&self) -> (usize, usize, usize, usize) {
        match self {
            Scale::Smoke => (24, 12, 6, 6),
            Scale::Paper => (60, 24, 10, 20),
        }
    }

    /// The paper's original split sizes, for reporting.
    pub fn paper_split_sizes() -> (usize, usize, usize, usize) {
        (80_000, 1_100, 500, 500)
    }
}

/// A corpus split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// Unlabeled pre-training pool (gold labels withheld from models).
    Pretrain,
    /// Annotated fine-tuning training set.
    Train,
    /// Annotated validation set.
    Validation,
    /// Annotated test set.
    Test,
}

/// The generated corpus.
pub struct Corpus {
    /// Pre-training documents (treat labels as hidden).
    pub pretrain: Vec<LabeledResume>,
    /// Fine-tuning training documents.
    pub train: Vec<LabeledResume>,
    /// Validation documents.
    pub validation: Vec<LabeledResume>,
    /// Test documents.
    pub test: Vec<LabeledResume>,
    /// Scale used.
    pub scale: Scale,
}

impl Corpus {
    /// Generate a corpus deterministically from a seed.
    pub fn generate(seed: u64, scale: Scale) -> Self {
        let cfg = scale.generator_config();
        let (np, nt, nv, ns) = scale.split_sizes();
        let gen_split = |offset: u64, n: usize| -> Vec<LabeledResume> {
            (0..n)
                .map(|i| {
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        seed.wrapping_mul(0x9E37_79B9)
                            .wrapping_add(offset + i as u64),
                    );
                    generate_resume(&mut rng, &cfg)
                })
                .collect()
        };
        Corpus {
            pretrain: gen_split(0, np),
            train: gen_split(1_000_000, nt),
            validation: gen_split(2_000_000, nv),
            test: gen_split(3_000_000, ns),
            scale,
        }
    }

    /// Documents of a split.
    pub fn split(&self, split: Split) -> &[LabeledResume] {
        match split {
            Split::Pretrain => &self.pretrain,
            Split::Train => &self.train,
            Split::Validation => &self.validation,
            Split::Test => &self.test,
        }
    }

    /// Table I statistics for a split.
    pub fn stats(&self, split: Split) -> CorpusStats {
        CorpusStats::compute(self.split(split))
    }

    /// All words across a split (for vocabulary building).
    pub fn words(&self, split: Split) -> impl Iterator<Item = String> + '_ {
        self.split(split)
            .iter()
            .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone()))
    }
}

/// Per-split statistics (the rows of Table I).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CorpusStats {
    /// Number of documents.
    pub n_docs: usize,
    /// Average tokens per document.
    pub avg_tokens: f32,
    /// Average sentences per document.
    pub avg_sentences: f32,
    /// Average pages per document.
    pub avg_pages: f32,
}

impl CorpusStats {
    /// Compute over a document set.
    pub fn compute(docs: &[LabeledResume]) -> Self {
        if docs.is_empty() {
            return CorpusStats {
                n_docs: 0,
                avg_tokens: 0.0,
                avg_sentences: 0.0,
                avg_pages: 0.0,
            };
        }
        let n = docs.len() as f32;
        let cfg = SentenceConfig::default();
        let tokens: usize = docs.iter().map(|d| d.doc.num_tokens()).sum();
        let sentences: usize = docs
            .iter()
            .map(|d| concat_sentences(&d.doc, &cfg).len())
            .sum();
        let pages: usize = docs.iter().map(|d| d.doc.num_pages()).sum();
        CorpusStats {
            n_docs: docs.len(),
            avg_tokens: tokens as f32 / n,
            avg_sentences: sentences as f32 / n,
            avg_pages: pages as f32 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_have_requested_sizes() {
        let c = Corpus::generate(1, Scale::Smoke);
        let (np, nt, nv, ns) = Scale::Smoke.split_sizes();
        assert_eq!(c.pretrain.len(), np);
        assert_eq!(c.train.len(), nt);
        assert_eq!(c.validation.len(), nv);
        assert_eq!(c.test.len(), ns);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = Corpus::generate(7, Scale::Smoke);
        let b = Corpus::generate(7, Scale::Smoke);
        let c = Corpus::generate(8, Scale::Smoke);
        assert_eq!(a.train[0].record.name, b.train[0].record.name);
        assert_ne!(
            (
                a.train[0].record.name.clone(),
                a.train[1].record.name.clone()
            ),
            (
                c.train[0].record.name.clone(),
                c.train[1].record.name.clone()
            )
        );
    }

    #[test]
    fn splits_are_disjoint_streams() {
        // Different splits use different seed offsets; spot-check that the
        // documents differ.
        let c = Corpus::generate(3, Scale::Smoke);
        assert_ne!(c.pretrain[0].record.name, c.train[0].record.name);
    }

    #[test]
    fn stats_reasonable_at_smoke_scale() {
        let c = Corpus::generate(2, Scale::Smoke);
        let s = c.stats(Split::Train);
        assert_eq!(s.n_docs, 12);
        assert!(s.avg_tokens > 50.0);
        assert!(s.avg_sentences > 10.0);
        assert!(s.avg_pages >= 1.0);
    }

    #[test]
    fn words_iterator_covers_all_tokens() {
        let c = Corpus::generate(4, Scale::Smoke);
        let n: usize = c.words(Split::Validation).count();
        let expect: usize = c.validation.iter().map(|d| d.doc.num_tokens()).sum();
        assert_eq!(n, expect);
    }
}
