//! Ground-truth types: block classes, entity classes, structured records.

use serde::{Deserialize, Serialize};

/// The eight semantic block classes of §III-A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockType {
    /// A section title line.
    Title,
    /// Personal information (name, contacts, demographics).
    PInfo,
    /// One education experience.
    EduExp,
    /// One work experience.
    WorkExp,
    /// One project experience.
    ProjExp,
    /// Skill description.
    SkillDes,
    /// Self summary.
    Summary,
    /// Awards / honours.
    Awards,
}

impl BlockType {
    /// All classes, in the paper's tag order for tables.
    pub const ALL: [BlockType; 8] = [
        BlockType::PInfo,
        BlockType::EduExp,
        BlockType::WorkExp,
        BlockType::ProjExp,
        BlockType::Summary,
        BlockType::Awards,
        BlockType::SkillDes,
        BlockType::Title,
    ];

    /// Paper tag name.
    pub fn name(&self) -> &'static str {
        match self {
            BlockType::Title => "Title",
            BlockType::PInfo => "PInfo",
            BlockType::EduExp => "EduExp",
            BlockType::WorkExp => "WorkExp",
            BlockType::ProjExp => "ProjExp",
            BlockType::SkillDes => "SkillDes",
            BlockType::Summary => "Summary",
            BlockType::Awards => "Awards",
        }
    }

    /// Index into [`BlockType::ALL`].
    pub fn index(&self) -> usize {
        BlockType::ALL
            .iter()
            .position(|b| b == self)
            .expect("member of ALL")
    }
}

/// The entity classes of Table IV. `Date` is shared by the three
/// experience blocks, as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityType {
    /// Person name (PInfo).
    Name,
    /// Gender (PInfo).
    Gender,
    /// Phone number (PInfo).
    PhoneNum,
    /// Email address (PInfo).
    Email,
    /// Age (PInfo).
    Age,
    /// College / university (EduExp).
    College,
    /// Major (EduExp).
    Major,
    /// Degree (EduExp).
    Degree,
    /// Company name (WorkExp).
    Company,
    /// Job position (WorkExp).
    Position,
    /// Project name (ProjExp).
    ProjName,
    /// Date / date range (EduExp, WorkExp, ProjExp).
    Date,
}

impl EntityType {
    /// All classes in a stable order.
    pub const ALL: [EntityType; 12] = [
        EntityType::Name,
        EntityType::Gender,
        EntityType::PhoneNum,
        EntityType::Email,
        EntityType::Age,
        EntityType::College,
        EntityType::Major,
        EntityType::Degree,
        EntityType::Company,
        EntityType::Position,
        EntityType::ProjName,
        EntityType::Date,
    ];

    /// Table IV tag name.
    pub fn name(&self) -> &'static str {
        match self {
            EntityType::Name => "Name",
            EntityType::Gender => "Gender",
            EntityType::PhoneNum => "PhoneNum",
            EntityType::Email => "Email",
            EntityType::Age => "Age",
            EntityType::College => "College",
            EntityType::Major => "Major",
            EntityType::Degree => "Degree",
            EntityType::Company => "Company",
            EntityType::Position => "Position",
            EntityType::ProjName => "ProjName",
            EntityType::Date => "Date",
        }
    }

    /// Index into [`EntityType::ALL`].
    pub fn index(&self) -> usize {
        EntityType::ALL
            .iter()
            .position(|e| e == self)
            .expect("member of ALL")
    }
}

/// One education experience in the structured record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Education {
    /// College / university name.
    pub college: String,
    /// Major / field of study.
    pub major: String,
    /// Degree.
    pub degree: String,
    /// Start, `YYYY.MM`.
    pub start: String,
    /// End, `YYYY.MM` or a present marker.
    pub end: String,
    /// Optional inlined scholarship line (the Figure 3 ambiguity).
    pub scholarship: Option<String>,
}

/// One work experience in the structured record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Work {
    /// Company name (including suffixes like `Co. LTD`).
    pub company: String,
    /// Job position / title.
    pub position: String,
    /// Start, `YYYY.MM`.
    pub start: String,
    /// End, `YYYY.MM` or a present marker.
    pub end: String,
    /// Free-text responsibility bullets.
    pub bullets: Vec<String>,
}

/// One project experience in the structured record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Project {
    /// Project name.
    pub name: String,
    /// Start, `YYYY.MM`.
    pub start: String,
    /// End, `YYYY.MM` or a present marker.
    pub end: String,
    /// Free-text description bullets.
    pub bullets: Vec<String>,
}

/// The full structured truth behind a generated resume — exactly what a
/// perfect semantic-structure extractor should recover.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResumeRecord {
    /// Person name.
    pub name: String,
    /// Gender string.
    pub gender: String,
    /// Phone number.
    pub phone: String,
    /// Email address.
    pub email: String,
    /// Age in years.
    pub age: u32,
    /// Education experiences, newest first.
    pub educations: Vec<Education>,
    /// Work experiences, newest first.
    pub works: Vec<Work>,
    /// Project experiences, newest first.
    pub projects: Vec<Project>,
    /// Skill keywords.
    pub skills: Vec<String>,
    /// Summary lines.
    pub summary: Vec<String>,
    /// Award lines.
    pub awards: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_indices_round_trip() {
        for (i, b) in BlockType::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        assert_eq!(BlockType::PInfo.name(), "PInfo");
        assert_eq!(BlockType::SkillDes.index(), 6);
    }

    #[test]
    fn entity_indices_round_trip() {
        for (i, e) in EntityType::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
        assert_eq!(EntityType::ALL.len(), 12);
        assert_eq!(EntityType::Date.name(), "Date");
    }
}
