//! The resume generator: samples a structured record, then lays it out onto
//! pages through a real layout engine (margins, line wrap, page breaks),
//! producing a [`resuformer_doc::Document`] with full per-token ground
//! truth.

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer_doc::{BBox, Document, Page, Sentence, Token};
use serde::{Deserialize, Serialize};

use crate::entities;
use crate::templates::TemplateStyle;
use crate::types::{BlockType, Education, EntityType, Project, ResumeRecord, Work};

/// Content-richness knobs. Ranges are inclusive.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Education experiences per resume.
    pub n_educations: (usize, usize),
    /// Work experiences per resume.
    pub n_works: (usize, usize),
    /// Project experiences per resume.
    pub n_projects: (usize, usize),
    /// Bullets per work/project item.
    pub bullets_per_item: (usize, usize),
    /// Extra clauses appended to each bullet (lengthens lines).
    pub bullet_extra_clauses: (usize, usize),
    /// Skill keywords.
    pub n_skills: (usize, usize),
    /// Summary lines.
    pub n_summary: (usize, usize),
    /// Award lines.
    pub n_awards: (usize, usize),
    /// Probability an education block inlines a scholarship line (the
    /// Figure 3 ambiguity: Awards content positioned inside EduExp).
    pub scholarship_prob: f64,
    /// Probability an open-class entity mention renders as a surface
    /// variant the dictionaries do not contain ("Northlake Univ.").
    pub variant_prob: f64,
}

impl GeneratorConfig {
    /// Small resumes for fast tests (hundreds of tokens).
    pub fn smoke() -> Self {
        GeneratorConfig {
            n_educations: (1, 2),
            n_works: (1, 2),
            n_projects: (1, 2),
            bullets_per_item: (1, 2),
            bullet_extra_clauses: (0, 1),
            n_skills: (4, 8),
            n_summary: (1, 2),
            n_awards: (1, 2),
            scholarship_prob: 0.25,
            variant_prob: 0.3,
        }
    }

    /// Paper-profile resumes (Table I: ≈1 700 tokens, ≈90 sentences,
    /// ≈2 pages).
    pub fn paper() -> Self {
        GeneratorConfig {
            n_educations: (1, 3),
            n_works: (2, 5),
            n_projects: (2, 4),
            bullets_per_item: (6, 9),
            bullet_extra_clauses: (1, 3),
            n_skills: (10, 20),
            n_summary: (3, 5),
            n_awards: (2, 5),
            scholarship_prob: 0.25,
            variant_prob: 0.3,
        }
    }
}

/// A generated resume document plus its complete ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabeledResume {
    /// The laid-out document.
    pub doc: Document,
    /// Per-token block class + block-instance id (instance ids are unique
    /// per logical block so IOB `B-`/`I-` boundaries can be derived).
    pub token_blocks: Vec<(BlockType, usize)>,
    /// Per-token entity class, where applicable.
    pub token_entities: Vec<Option<EntityType>>,
    /// The underlying structured record.
    pub record: ResumeRecord,
    /// Writing style used.
    pub template: TemplateStyle,
}

impl LabeledResume {
    /// Derive sentence-level block labels by majority vote over member
    /// tokens (the generator writes blocks line-atomically, so votes are
    /// unanimous in practice; the vote guards refactors).
    pub fn sentence_blocks(&self, sentences: &[Sentence]) -> Vec<(BlockType, usize)> {
        sentences
            .iter()
            .map(|s| {
                let mut counts: Vec<((BlockType, usize), usize)> = Vec::new();
                for &ti in &s.token_indices {
                    let key = self.token_blocks[ti];
                    match counts.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((key, 1)),
                    }
                }
                counts
                    .into_iter()
                    .max_by_key(|&(_, c)| c)
                    .expect("sentences are non-empty")
                    .0
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Record sampling
// ---------------------------------------------------------------------------

fn range_sample(rng: &mut impl Rng, (lo, hi): (usize, usize)) -> usize {
    rng.gen_range(lo..=hi)
}

/// Sample a structured resume record.
pub fn sample_record(rng: &mut impl Rng, config: &GeneratorConfig) -> ResumeRecord {
    let name = entities::sample_name(rng);
    let email = entities::sample_email(rng, &name);
    let colleges = entities::all_colleges();
    let companies = entities::all_companies();
    let projects = entities::all_projects();

    let educations = (0..range_sample(rng, config.n_educations))
        .map(|_| {
            let start_year = rng.gen_range(2006..2018);
            Education {
                college: colleges.choose(rng).expect("non-empty").clone(),
                major: entities::MAJORS.choose(rng).expect("non-empty").to_string(),
                degree: entities::DEGREES
                    .choose(rng)
                    .expect("non-empty")
                    .to_string(),
                start: format!("{start_year}.09"),
                end: format!("{}.06", start_year + 4),
                scholarship: if rng.gen_bool(config.scholarship_prob) {
                    Some(entities::AWARDS.choose(rng).expect("non-empty").to_string())
                } else {
                    None
                },
            }
        })
        .collect();

    let make_bullets = |rng: &mut _| -> Vec<String> {
        (0..range_sample(rng, config.bullets_per_item))
            .map(|_| {
                let mut b = entities::sample_bullet(rng);
                for _ in 0..range_sample(rng, config.bullet_extra_clauses) {
                    b.push_str(" and ");
                    b.push_str(&entities::sample_bullet(rng).to_lowercase());
                }
                b
            })
            .collect()
    };

    let works = (0..range_sample(rng, config.n_works))
        .map(|i| {
            let (start, mut end) = entities::sample_date_range(rng, 2012, 2021);
            if i == 0 && rng.gen_bool(0.5) {
                end = "Present".to_string();
            }
            Work {
                company: companies.choose(rng).expect("non-empty").clone(),
                position: entities::POSITIONS
                    .choose(rng)
                    .expect("non-empty")
                    .to_string(),
                start,
                end,
                bullets: make_bullets(rng),
            }
        })
        .collect();

    let projs = (0..range_sample(rng, config.n_projects))
        .map(|_| {
            let (start, end) = entities::sample_date_range(rng, 2014, 2023);
            Project {
                name: projects.choose(rng).expect("non-empty").clone(),
                start,
                end,
                bullets: make_bullets(rng),
            }
        })
        .collect();

    let n_skills = range_sample(rng, config.n_skills);
    let n_summary = range_sample(rng, config.n_summary);
    let n_awards = range_sample(rng, config.n_awards);
    let mut skills: Vec<String> = entities::SKILLS
        .choose_multiple(rng, n_skills)
        .map(|s| s.to_string())
        .collect();
    skills.sort();

    ResumeRecord {
        gender: entities::GENDERS
            .choose(rng)
            .expect("non-empty")
            .to_string(),
        phone: entities::sample_phone(rng),
        age: rng.gen_range(22..45),
        educations,
        works,
        projects: projs,
        skills,
        summary: entities::SUMMARY_LINES
            .choose_multiple(rng, n_summary)
            .map(|s| s.to_string())
            .collect(),
        awards: entities::AWARDS
            .choose_multiple(rng, n_awards)
            .map(|s| s.to_string())
            .collect(),
        name,
        email,
    }
}

// ---------------------------------------------------------------------------
// Layout engine
// ---------------------------------------------------------------------------

/// Approximate glyph advance: width of a word at a font size.
fn word_width(word: &str, font_size: f32) -> f32 {
    0.40 * font_size * word.chars().count().max(1) as f32
}

struct Writer {
    page_geom: Page,
    margin_x: f32,
    margin_y: f32,
    x: f32,
    y: f32,
    page: usize,
    tokens: Vec<Token>,
    token_blocks: Vec<(BlockType, usize)>,
    token_entities: Vec<Option<EntityType>>,
}

impl Writer {
    fn new(style: TemplateStyle) -> Self {
        let page_geom = Page::a4();
        Writer {
            page_geom,
            margin_x: style.margin_x(),
            margin_y: style.margin_y(),
            x: style.margin_x(),
            y: style.margin_y(),
            page: 0,
            tokens: Vec::new(),
            token_blocks: Vec::new(),
            token_entities: Vec::new(),
        }
    }

    fn line_height(font: f32) -> f32 {
        font * 1.18
    }

    fn newline(&mut self, font: f32) {
        self.x = self.margin_x;
        self.y += Self::line_height(font);
        if self.y + Self::line_height(font) > self.page_geom.height - self.margin_y {
            self.page += 1;
            self.y = self.margin_y;
        }
    }

    fn gap(&mut self, pts: f32) {
        self.y += pts;
        if self.y + 14.0 > self.page_geom.height - self.margin_y {
            self.page += 1;
            self.y = self.margin_y;
        }
        self.x = self.margin_x;
    }

    /// Write words on the current line, wrapping at the right margin. Each
    /// word is one token; `entities` must parallel `words` (or be empty for
    /// all-None).
    fn write_words(
        &mut self,
        words: &[&str],
        entities: &[Option<EntityType>],
        font: f32,
        bold: bool,
        block: (BlockType, usize),
        indent: f32,
    ) {
        assert!(entities.is_empty() || entities.len() == words.len());
        let space = 0.20 * font;
        for (i, word) in words.iter().enumerate() {
            let w = word_width(word, font);
            if self.x + w > self.page_geom.width - self.margin_x && self.x > self.margin_x {
                self.newline(font);
                self.x = self.margin_x + indent;
            }
            let bbox = BBox::new(self.x, self.y, self.x + w, self.y + font);
            self.tokens.push(Token {
                text: (*word).to_string(),
                bbox,
                page: self.page,
                font_size: font,
                bold,
            });
            self.token_blocks.push(block);
            self.token_entities.push(entities.get(i).copied().flatten());
            self.x += w + space;
        }
    }

    /// Write a full line (words + newline).
    fn write_line(
        &mut self,
        words: &[&str],
        entities: &[Option<EntityType>],
        font: f32,
        bold: bool,
        block: (BlockType, usize),
    ) {
        if words.is_empty() {
            return;
        }
        self.x = self.margin_x;
        self.write_words(words, entities, font, bold, block, 0.0);
        self.newline(font);
    }
}

fn split_entity<'a>(phrase: &'a str, ty: EntityType) -> (Vec<&'a str>, Vec<Option<EntityType>>) {
    let words: Vec<&str> = phrase.split_whitespace().collect();
    let ents = vec![Some(ty); words.len()];
    (words, ents)
}

/// Restyle a canonical `YYYY.MM` date with the template's separator.
fn restyle_date(date: &str, sep: char) -> String {
    if date.len() == 7 && date.as_bytes()[4] == b'.' {
        let mut s = date.to_string();
        s.replace_range(4..5, &sep.to_string());
        s
    } else {
        date.to_string() // "Present" and friends pass through
    }
}

/// Build a `start - end` date-range token run with Date entity labels.
fn date_range(start: &str, end: &str, sep: char) -> (Vec<String>, Vec<Option<EntityType>>) {
    (
        vec![
            restyle_date(start, sep),
            "-".to_string(),
            restyle_date(end, sep),
        ],
        vec![Some(EntityType::Date); 3],
    )
}

// ---------------------------------------------------------------------------
// Resume generation
// ---------------------------------------------------------------------------

/// Generate one labeled resume.
///
/// ```
/// use rand_chacha::rand_core::SeedableRng;
/// use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let resume = generate_resume(&mut rng, &GeneratorConfig::smoke());
/// resume.doc.validate().unwrap();
/// assert_eq!(resume.doc.num_tokens(), resume.token_blocks.len());
/// ```
pub fn generate_resume(rng: &mut impl Rng, config: &GeneratorConfig) -> LabeledResume {
    let record = sample_record(rng, config);
    let template = *TemplateStyle::ALL.choose(rng).expect("non-empty");
    render_resume(rng, &record, template, config.variant_prob)
}

/// Apply a surface variant with probability `p` (dictionaries hold only
/// canonical forms; see [`entities::surface_variant`]).
fn maybe_variant(rng: &mut impl Rng, canonical: &str, p: f64) -> String {
    if p > 0.0 && rng.gen_bool(p) {
        entities::surface_variant(rng, canonical)
    } else {
        canonical.to_string()
    }
}

/// Render a record with a specific template (used by Fig. 1/Fig. 3 benches).
/// `variant_prob` controls entity surface variation.
pub fn render_resume(
    rng: &mut impl Rng,
    record: &ResumeRecord,
    template: TemplateStyle,
    variant_prob: f64,
) -> LabeledResume {
    let mut w = Writer::new(template);
    let sep = template.date_separator();
    let body = template.body_font();
    let header_font = template.header_font();
    let mut next_instance = 0usize;
    let mut fresh = || {
        let id = next_instance;
        next_instance += 1;
        id
    };

    // --- Personal information -------------------------------------------
    let pinfo = (BlockType::PInfo, fresh());
    {
        // Big name line.
        let (words, ents) = split_entity(&record.name, EntityType::Name);
        w.write_line(&words, &ents, template.name_font(), true, pinfo);

        // A header between the name line and the field lines (Labeled
        // style) starts a new PInfo block instance, keeping instances
        // contiguous for IOB labeling.
        let pinfo = if let Some(h) = template.header(BlockType::PInfo) {
            let title = (BlockType::Title, fresh());
            let words: Vec<&str> = h.split_whitespace().collect();
            w.write_line(&words, &[], header_font, true, title);
            (BlockType::PInfo, fresh())
        } else {
            pinfo
        };

        let age = record.age.to_string();
        if template.labeled_pinfo() {
            w.write_line(
                &["Gender", ":", &record.gender],
                &[None, None, Some(EntityType::Gender)],
                body,
                false,
                pinfo,
            );
            w.write_line(
                &["Age", ":", &age],
                &[None, None, Some(EntityType::Age)],
                body,
                false,
                pinfo,
            );
            w.write_line(
                &["Phone", ":", &record.phone],
                &[None, None, Some(EntityType::PhoneNum)],
                body,
                false,
                pinfo,
            );
            w.write_line(
                &["Email", ":", &record.email],
                &[None, None, Some(EntityType::Email)],
                body,
                false,
                pinfo,
            );
        } else {
            w.write_line(
                &[
                    &record.gender,
                    "|",
                    &age,
                    "years",
                    "old",
                    "|",
                    &record.phone,
                    "|",
                    &record.email,
                ],
                &[
                    Some(EntityType::Gender),
                    None,
                    Some(EntityType::Age),
                    None,
                    None,
                    None,
                    Some(EntityType::PhoneNum),
                    None,
                    Some(EntityType::Email),
                ],
                body,
                false,
                pinfo,
            );
        }
    }
    w.gap(6.0);

    // --- Sections in template order --------------------------------------
    for section in template.section_order() {
        if section == BlockType::PInfo {
            continue; // already emitted
        }
        if let Some(h) = template.header(section) {
            let title = (BlockType::Title, fresh());
            let words: Vec<&str> = h.split_whitespace().collect();
            w.write_line(&words, &[], header_font, true, title);
        }
        match section {
            BlockType::EduExp => {
                for edu in &record.educations {
                    let block = (BlockType::EduExp, fresh());
                    let (date_words, mut ents) = date_range(&edu.start, &edu.end, sep);
                    let mut words: Vec<&str> = date_words.iter().map(|s| s.as_str()).collect();
                    let college = maybe_variant(rng, &edu.college, variant_prob);
                    let (cw, ce) = split_entity(&college, EntityType::College);
                    words.extend(cw);
                    ents.extend(ce);
                    let (mw, me) = split_entity(&edu.major, EntityType::Major);
                    words.extend(mw);
                    ents.extend(me);
                    let (dw, de) = split_entity(&edu.degree, EntityType::Degree);
                    words.extend(dw);
                    ents.extend(de);
                    w.write_line(&words, &ents, body, false, block);
                    // Fig. 3 ambiguity: a scholarship line positioned inside
                    // the education section but semantically an Awards block.
                    if let Some(sch) = &edu.scholarship {
                        let award_block = (BlockType::Awards, fresh());
                        let mut words = vec!["Awarded"];
                        words.extend(sch.split_whitespace());
                        w.write_line(&words, &[], body, false, award_block);
                    }
                    w.gap(3.0);
                }
            }
            BlockType::WorkExp => {
                for work in &record.works {
                    let block = (BlockType::WorkExp, fresh());
                    let (date_words, mut ents) = date_range(&work.start, &work.end, sep);
                    let mut words: Vec<&str> = date_words.iter().map(|s| s.as_str()).collect();
                    let company = maybe_variant(rng, &work.company, variant_prob);
                    let (cw, ce) = split_entity(&company, EntityType::Company);
                    words.extend(cw);
                    ents.extend(ce);
                    let position = maybe_variant(rng, &work.position, variant_prob);
                    let (pw, pe) = split_entity(&position, EntityType::Position);
                    words.extend(pw);
                    ents.extend(pe);
                    w.write_line(&words, &ents, body, rng.gen_bool(0.3), block);
                    for bullet in &work.bullets {
                        let mut words = vec!["-"];
                        words.extend(bullet.split_whitespace());
                        w.write_line(&words, &[], body, false, block);
                    }
                    w.gap(4.0);
                }
            }
            BlockType::ProjExp => {
                for proj in &record.projects {
                    let block = (BlockType::ProjExp, fresh());
                    let (date_words, mut ents) = date_range(&proj.start, &proj.end, sep);
                    let mut words: Vec<&str> = date_words.iter().map(|s| s.as_str()).collect();
                    let pname = maybe_variant(rng, &proj.name, variant_prob);
                    let (nw, ne) = split_entity(&pname, EntityType::ProjName);
                    words.extend(nw);
                    ents.extend(ne);
                    w.write_line(&words, &ents, body, false, block);
                    for bullet in &proj.bullets {
                        let mut words = vec!["-"];
                        words.extend(bullet.split_whitespace());
                        w.write_line(&words, &[], body, false, block);
                    }
                    w.gap(4.0);
                }
            }
            BlockType::SkillDes => {
                let block = (BlockType::SkillDes, fresh());
                let mut words: Vec<&str> = Vec::new();
                for (i, s) in record.skills.iter().enumerate() {
                    if i > 0 {
                        words.push(",");
                    }
                    words.push(s);
                }
                w.write_line(&words, &[], body, false, block);
            }
            BlockType::Summary => {
                let block = (BlockType::Summary, fresh());
                for line in &record.summary {
                    let words: Vec<&str> = line.split_whitespace().collect();
                    w.write_line(&words, &[], body, false, block);
                }
            }
            BlockType::Awards => {
                let block = (BlockType::Awards, fresh());
                for (i, award) in record.awards.iter().enumerate() {
                    let year = format!("20{}.{:02}", 15 + (i % 9), 1 + (i * 5) % 12);
                    let mut words = vec![year.as_str()];
                    words.extend(award.split_whitespace());
                    w.write_line(&words, &[], body, false, block);
                }
            }
            BlockType::PInfo | BlockType::Title => unreachable!("handled above"),
        }
        w.gap(6.0);
    }

    let doc = Document {
        tokens: w.tokens,
        pages: vec![w.page_geom; w.page + 1],
    };
    LabeledResume {
        doc,
        token_blocks: w.token_blocks,
        token_entities: w.token_entities,
        record: record.clone(),
        template,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer_doc::{concat_sentences, SentenceConfig};

    fn gen(seed: u64, cfg: GeneratorConfig) -> LabeledResume {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate_resume(&mut rng, &cfg)
    }

    #[test]
    fn documents_validate() {
        for seed in 0..10 {
            let r = gen(seed, GeneratorConfig::smoke());
            r.doc.validate().expect("generated doc must validate");
            assert_eq!(r.doc.num_tokens(), r.token_blocks.len());
            assert_eq!(r.doc.num_tokens(), r.token_entities.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(42, GeneratorConfig::smoke());
        let b = gen(42, GeneratorConfig::smoke());
        assert_eq!(a.doc.num_tokens(), b.doc.num_tokens());
        assert_eq!(a.record.name, b.record.name);
        assert_eq!(a.token_blocks, b.token_blocks);
    }

    #[test]
    fn all_block_types_present() {
        let r = gen(1, GeneratorConfig::smoke());
        for ty in [
            BlockType::PInfo,
            BlockType::EduExp,
            BlockType::WorkExp,
            BlockType::ProjExp,
            BlockType::SkillDes,
            BlockType::Summary,
            BlockType::Awards,
        ] {
            assert!(
                r.token_blocks.iter().any(|(b, _)| *b == ty),
                "missing {:?}",
                ty
            );
        }
    }

    #[test]
    fn entities_present_and_typed() {
        let r = gen(2, GeneratorConfig::smoke());
        let has = |ty: EntityType| r.token_entities.iter().any(|e| *e == Some(ty));
        for ty in [
            EntityType::Name,
            EntityType::Gender,
            EntityType::PhoneNum,
            EntityType::Email,
            EntityType::Age,
            EntityType::College,
            EntityType::Major,
            EntityType::Degree,
            EntityType::Company,
            EntityType::Position,
            EntityType::ProjName,
            EntityType::Date,
        ] {
            assert!(has(ty), "missing entity {:?}", ty);
        }
    }

    #[test]
    fn entity_tokens_live_in_their_home_block() {
        let r = gen(3, GeneratorConfig::smoke());
        for (i, ent) in r.token_entities.iter().enumerate() {
            let Some(e) = ent else { continue };
            let (block, _) = r.token_blocks[i];
            let ok = match e {
                EntityType::Name
                | EntityType::Gender
                | EntityType::PhoneNum
                | EntityType::Email
                | EntityType::Age => block == BlockType::PInfo,
                EntityType::College | EntityType::Major | EntityType::Degree => {
                    block == BlockType::EduExp
                }
                EntityType::Company | EntityType::Position => block == BlockType::WorkExp,
                EntityType::ProjName => block == BlockType::ProjExp,
                EntityType::Date => matches!(
                    block,
                    BlockType::EduExp | BlockType::WorkExp | BlockType::ProjExp
                ),
            };
            assert!(ok, "entity {:?} in block {:?}", e, block);
        }
    }

    #[test]
    fn sentences_do_not_cross_blocks() {
        let r = gen(4, GeneratorConfig::paper());
        let sentences = concat_sentences(&r.doc, &SentenceConfig::default());
        for s in &sentences {
            let first = r.token_blocks[s.token_indices[0]];
            for &ti in &s.token_indices {
                assert_eq!(r.token_blocks[ti], first, "sentence crosses block boundary");
            }
        }
    }

    #[test]
    fn paper_scale_matches_table1_profile() {
        let mut tokens = 0usize;
        let mut sentences = 0usize;
        let mut pages = 0usize;
        let n = 12;
        for seed in 0..n {
            let r = gen(100 + seed, GeneratorConfig::paper());
            tokens += r.doc.num_tokens();
            sentences += concat_sentences(&r.doc, &SentenceConfig::default()).len();
            pages += r.doc.num_pages();
        }
        let avg_tokens = tokens as f32 / n as f32;
        let avg_sentences = sentences as f32 / n as f32;
        let avg_pages = pages as f32 / n as f32;
        assert!(
            (1300.0..2100.0).contains(&avg_tokens),
            "avg tokens {} outside Table I profile",
            avg_tokens
        );
        assert!(
            (60.0..160.0).contains(&avg_sentences),
            "avg sentences {} outside Table I profile",
            avg_sentences
        );
        assert!(
            (1.6..3.2).contains(&avg_pages),
            "avg pages {} outside Table I profile",
            avg_pages
        );
    }

    #[test]
    fn headers_are_bold_and_larger() {
        let r = gen(5, GeneratorConfig::smoke());
        for (i, t) in r.doc.tokens.iter().enumerate() {
            if r.token_blocks[i].0 == BlockType::Title {
                assert!(t.bold, "title token {:?} not bold", t.text);
                assert!(t.font_size >= 12.0);
            }
        }
    }

    #[test]
    fn page_spanning_blocks_exist_at_paper_scale() {
        // At least one generated resume must contain a block whose tokens
        // span two pages (the Figure 3 case-study condition).
        let mut found = false;
        'outer: for seed in 0..20 {
            let r = gen(300 + seed, GeneratorConfig::paper());
            use std::collections::HashMap;
            let mut pages_by_block: HashMap<(BlockType, usize), Vec<usize>> = HashMap::new();
            for (i, &blk) in r.token_blocks.iter().enumerate() {
                pages_by_block
                    .entry(blk)
                    .or_default()
                    .push(r.doc.tokens[i].page);
            }
            for (_, pages) in pages_by_block {
                if pages.iter().any(|&p| p != pages[0]) {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no page-spanning block in 20 paper-scale resumes");
    }
}

#[cfg(test)]
mod date_style_tests {
    use super::*;
    use crate::templates::TemplateStyle;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn restyle_keeps_present_markers() {
        assert_eq!(restyle_date("2018.09", '/'), "2018/09");
        assert_eq!(restyle_date("2018.09", '-'), "2018-09");
        assert_eq!(restyle_date("Present", '/'), "Present");
    }

    #[test]
    fn each_template_renders_its_separator() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let record = sample_record(&mut rng, &GeneratorConfig::smoke());
        for style in TemplateStyle::ALL {
            let r = render_resume(&mut rng, &record, style, 0.0);
            let sep = style.date_separator();
            let marker = format!("{}{}", record.educations[0].start.get(..4).unwrap(), sep);
            let found = r.doc.tokens.iter().any(|t| t.text.starts_with(&marker));
            assert!(found, "{:?}: no date with separator {:?}", style, sep);
            // Date tokens must still be recognised by the matchers.
            let date_toks = r
                .doc
                .tokens
                .iter()
                .filter(|t| resuformer_text::matchers::is_year_month(&t.text))
                .count();
            assert!(
                date_toks >= 2,
                "{:?}: only {} matcher-valid dates",
                style,
                date_toks
            );
        }
    }
}
