//! # resuformer-datagen
//!
//! Synthetic resume corpus generator — the stand-in for the 80 000
//! proprietary resumes the paper trains on (DESIGN.md §2).
//!
//! The generator produces multi-page [`resuformer_doc::Document`]s through a
//! real layout engine (margins, line wrap, page breaks), in several writing
//! styles mirroring Figure 1 of the paper, with full ground truth: per-token
//! block labels (the 8 semantic classes), per-token entity labels (the 14
//! block/tag pairs of Table IV), and the underlying structured record.
//!
//! Design goals tied to the paper's evaluation:
//!
//! * the statistical profile at [`Scale::Paper`] matches Table I
//!   (≈1 600–1 700 tokens, ≈90 sentences, ≈2 pages per resume);
//! * section headers are *textually ambiguous across styles* but *visually
//!   consistent* (bold, larger font) — the mechanism by which multi-modal
//!   models beat text-only ones, as on real resumes;
//! * experiences may span page breaks and award lines may be inlined into
//!   education blocks (the two failure modes of Figure 3);
//! * [`dictionaries`] builds distant-supervision dictionaries with
//!   *controlled incomplete coverage*, producing exactly the noisy/partial
//!   label regime §IV-B studies.

#![warn(missing_docs)]

pub mod augment;
pub mod corpus;
pub mod dictionaries;
pub mod entities;
pub mod generator;
pub mod templates;
pub mod types;

pub use corpus::{Corpus, CorpusStats, Scale, Split};
pub use dictionaries::{Dictionaries, DictionaryConfig};
pub use generator::{generate_resume, GeneratorConfig, LabeledResume};
pub use templates::TemplateStyle;
pub use types::{BlockType, EntityType, ResumeRecord};
