//! Distant-supervision entity dictionaries (§IV-B1).
//!
//! Dictionaries are built over the same pools the generator samples from,
//! but with *controlled incomplete coverage*: only a configurable fraction
//! of each pool enters its dictionary. Mentions outside the covered subset
//! go unmatched during automatic annotation — exactly the incomplete-label
//! noise the self-training framework (§IV-B4) is designed to survive.

use resuformer_text::DictTrie;

use crate::entities;
use crate::types::EntityType;

/// Coverage configuration for dictionary construction.
#[derive(Clone, Copy, Debug)]
pub struct DictionaryConfig {
    /// Fraction of each open-class pool (colleges, companies, positions,
    /// projects, majors) included in its dictionary.
    pub coverage: f32,
}

impl Default for DictionaryConfig {
    fn default() -> Self {
        // 70% coverage: high enough that D&R Match gets good precision,
        // low enough that its recall visibly suffers (Table IV shape).
        DictionaryConfig { coverage: 0.7 }
    }
}

/// The entity dictionaries for automatic annotation.
pub struct Dictionaries {
    /// One trie over all dictionary surface forms; payload = entity class
    /// index into [`EntityType::ALL`].
    pub trie: DictTrie,
    /// Family-name list for the person-name heuristic.
    pub family_names: Vec<String>,
    config: DictionaryConfig,
}

impl Dictionaries {
    /// Build dictionaries with the given coverage.
    pub fn build(config: DictionaryConfig) -> Self {
        let mut trie = DictTrie::new();
        let take = |v: Vec<String>| -> Vec<String> {
            let n = ((v.len() as f32) * config.coverage).ceil() as usize;
            v.into_iter().take(n.max(1)).collect()
        };

        for college in take(entities::all_colleges()) {
            trie.insert_phrase(&college, EntityType::College.index());
        }
        for company in take(entities::all_companies()) {
            trie.insert_phrase(&company, EntityType::Company.index());
        }
        for project in take(entities::all_projects()) {
            trie.insert_phrase(&project, EntityType::ProjName.index());
        }
        for major in take(entities::MAJORS.iter().map(|s| s.to_string()).collect()) {
            trie.insert_phrase(&major, EntityType::Major.index());
        }
        for position in take(entities::POSITIONS.iter().map(|s| s.to_string()).collect()) {
            trie.insert_phrase(&position, EntityType::Position.index());
        }
        // Closed classes are fully covered (finite value type, §IV-B1).
        for degree in entities::DEGREES {
            trie.insert_phrase(degree, EntityType::Degree.index());
        }
        for gender in entities::GENDERS {
            trie.insert_phrase(gender, EntityType::Gender.index());
        }

        Dictionaries {
            trie,
            family_names: entities::FAMILY_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            config,
        }
    }

    /// The coverage this dictionary was built with.
    pub fn coverage(&self) -> f32 {
        self.config.coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_matches_everything() {
        let d = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        for college in entities::all_colleges() {
            let toks: Vec<&str> = college.split_whitespace().collect();
            assert!(
                !d.trie.find_all(&toks).is_empty(),
                "college {college} unmatched at full coverage"
            );
        }
    }

    #[test]
    fn partial_coverage_misses_tail_entries() {
        let d = Dictionaries::build(DictionaryConfig { coverage: 0.5 });
        let all = entities::all_companies();
        let miss = all
            .iter()
            .filter(|c| {
                let toks: Vec<&str> = c.split_whitespace().collect();
                d.trie.find_all(&toks).is_empty()
            })
            .count();
        let frac = miss as f32 / all.len() as f32;
        assert!((0.3..0.7).contains(&frac), "miss fraction {frac}");
    }

    #[test]
    fn closed_classes_always_covered() {
        let d = Dictionaries::build(DictionaryConfig { coverage: 0.1 });
        for degree in entities::DEGREES {
            let toks: Vec<&str> = degree.split_whitespace().collect();
            assert!(!d.trie.find_all(&toks).is_empty(), "{degree}");
        }
        assert!(!d.trie.find_all(&["Male"]).is_empty());
    }

    #[test]
    fn payloads_carry_entity_class() {
        let d = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let m = d.trie.find_all(&["Computer", "Science"]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].class, EntityType::Major.index());
        assert!(d.coverage() == 1.0);
        assert_eq!(d.family_names.len(), 40);
    }
}
