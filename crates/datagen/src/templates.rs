//! Resume writing styles (the three templates of Figure 1).
//!
//! A template fixes: section ordering, section header wording, header
//! visual style (font size / bold), label-prefix conventions in the
//! personal-information block, and layout geometry. Header wordings
//! deliberately *overlap across styles and block types* (e.g. the bare word
//! "Experience" heads work experience in one style and project experience
//! in another) so text alone under-determines the block class — the visual
//! and layout modalities carry the missing signal, as on real resumes.

use serde::{Deserialize, Serialize};

use crate::types::BlockType;

/// The three writing styles of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateStyle {
    /// Classic single-column: big name header, canonical section titles.
    Classic,
    /// Label-heavy style: `Field: value` personal block, shouting headers.
    Labeled,
    /// Compact style: summary first, terse ambiguous headers.
    Compact,
}

impl TemplateStyle {
    /// All styles.
    pub const ALL: [TemplateStyle; 3] = [
        TemplateStyle::Classic,
        TemplateStyle::Labeled,
        TemplateStyle::Compact,
    ];

    /// Section order for this style (Title blocks are emitted before each
    /// section automatically; `PInfo` placement varies).
    pub fn section_order(&self) -> Vec<BlockType> {
        match self {
            TemplateStyle::Classic => vec![
                BlockType::PInfo,
                BlockType::EduExp,
                BlockType::WorkExp,
                BlockType::ProjExp,
                BlockType::SkillDes,
                BlockType::Awards,
                BlockType::Summary,
            ],
            TemplateStyle::Labeled => vec![
                BlockType::PInfo,
                BlockType::Summary,
                BlockType::WorkExp,
                BlockType::ProjExp,
                BlockType::EduExp,
                BlockType::SkillDes,
                BlockType::Awards,
            ],
            TemplateStyle::Compact => vec![
                BlockType::PInfo,
                BlockType::Summary,
                BlockType::EduExp,
                BlockType::ProjExp,
                BlockType::WorkExp,
                BlockType::Awards,
                BlockType::SkillDes,
            ],
        }
    }

    /// Section header text for a block type (None = no header emitted).
    ///
    /// Note the deliberate cross-style ambiguity: "Experience" heads
    /// WorkExp in `Compact` but ProjExp in `Labeled`; "Background" heads
    /// EduExp in `Compact` but Summary in `Labeled`.
    pub fn header(&self, block: BlockType) -> Option<&'static str> {
        match (self, block) {
            (_, BlockType::PInfo) => match self {
                TemplateStyle::Labeled => Some("Basic Information"),
                _ => None,
            },
            (TemplateStyle::Classic, BlockType::EduExp) => Some("Education Experience"),
            (TemplateStyle::Classic, BlockType::WorkExp) => Some("Work Experience"),
            (TemplateStyle::Classic, BlockType::ProjExp) => Some("Project Experience"),
            (TemplateStyle::Classic, BlockType::SkillDes) => Some("Professional Skills"),
            (TemplateStyle::Classic, BlockType::Awards) => Some("Honors and Awards"),
            (TemplateStyle::Classic, BlockType::Summary) => Some("Self Evaluation"),

            (TemplateStyle::Labeled, BlockType::EduExp) => Some("EDUCATION"),
            (TemplateStyle::Labeled, BlockType::WorkExp) => Some("EMPLOYMENT HISTORY"),
            (TemplateStyle::Labeled, BlockType::ProjExp) => Some("Experience"),
            (TemplateStyle::Labeled, BlockType::SkillDes) => Some("SKILLS"),
            (TemplateStyle::Labeled, BlockType::Awards) => Some("AWARDS"),
            (TemplateStyle::Labeled, BlockType::Summary) => Some("Background"),

            (TemplateStyle::Compact, BlockType::EduExp) => Some("Background"),
            (TemplateStyle::Compact, BlockType::WorkExp) => Some("Experience"),
            (TemplateStyle::Compact, BlockType::ProjExp) => Some("Projects"),
            (TemplateStyle::Compact, BlockType::SkillDes) => Some("Stack"),
            (TemplateStyle::Compact, BlockType::Awards) => Some("Honors"),
            (TemplateStyle::Compact, BlockType::Summary) => Some("Profile"),

            (_, BlockType::Title) => None,
        }
    }

    /// Body font size in points.
    pub fn body_font(&self) -> f32 {
        match self {
            TemplateStyle::Classic => 10.0,
            TemplateStyle::Labeled => 10.5,
            TemplateStyle::Compact => 9.0,
        }
    }

    /// Section-header font size in points (always visibly larger than body).
    pub fn header_font(&self) -> f32 {
        match self {
            TemplateStyle::Classic => 14.0,
            TemplateStyle::Labeled => 13.0,
            TemplateStyle::Compact => 12.0,
        }
    }

    /// Name-line font size in points (the largest element on the page).
    pub fn name_font(&self) -> f32 {
        match self {
            TemplateStyle::Classic => 20.0,
            TemplateStyle::Labeled => 18.0,
            TemplateStyle::Compact => 16.0,
        }
    }

    /// Left margin in points.
    pub fn margin_x(&self) -> f32 {
        match self {
            TemplateStyle::Classic => 50.0,
            TemplateStyle::Labeled => 60.0,
            TemplateStyle::Compact => 40.0,
        }
    }

    /// Top/bottom margin in points.
    pub fn margin_y(&self) -> f32 {
        match self {
            TemplateStyle::Classic => 50.0,
            TemplateStyle::Labeled => 55.0,
            TemplateStyle::Compact => 40.0,
        }
    }

    /// Whether personal info uses `Field: value` label prefixes.
    pub fn labeled_pinfo(&self) -> bool {
        matches!(self, TemplateStyle::Labeled | TemplateStyle::Compact)
    }

    /// Date separator used in `YYYY<sep>MM` tokens (all three forms are
    /// accepted by the matchers; styles differ, as real resumes do).
    pub fn date_separator(&self) -> char {
        match self {
            TemplateStyle::Classic => '.',
            TemplateStyle::Labeled => '/',
            TemplateStyle::Compact => '-',
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_style_orders_all_sections() {
        for style in TemplateStyle::ALL {
            let order = style.section_order();
            assert_eq!(order.len(), 7, "{:?}", style);
            for b in [
                BlockType::PInfo,
                BlockType::EduExp,
                BlockType::WorkExp,
                BlockType::ProjExp,
                BlockType::SkillDes,
                BlockType::Summary,
                BlockType::Awards,
            ] {
                assert!(order.contains(&b), "{:?} missing {:?}", style, b);
            }
        }
    }

    #[test]
    fn headers_are_textually_ambiguous_across_styles() {
        // The same surface header maps to different block types in
        // different styles — the designed ambiguity.
        assert_eq!(
            TemplateStyle::Compact.header(BlockType::WorkExp),
            Some("Experience")
        );
        assert_eq!(
            TemplateStyle::Labeled.header(BlockType::ProjExp),
            Some("Experience")
        );
        assert_eq!(
            TemplateStyle::Compact.header(BlockType::EduExp),
            Some("Background")
        );
        assert_eq!(
            TemplateStyle::Labeled.header(BlockType::Summary),
            Some("Background")
        );
    }

    #[test]
    fn headers_are_visually_distinct_from_body() {
        for style in TemplateStyle::ALL {
            assert!(style.header_font() > style.body_font() + 1.0);
            assert!(style.name_font() > style.header_font());
        }
    }
}
