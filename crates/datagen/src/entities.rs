//! Entity pools: the fictional "world" resumes are sampled from.
//!
//! Pools are intentionally larger than the distant-supervision dictionaries
//! built over them ([`crate::dictionaries`]), so dictionary matching has
//! incomplete coverage — the noise regime §IV-B targets. All content is
//! fictional (as the paper's Figure 1 note requires).

use rand::seq::SliceRandom;
use rand::Rng;

/// Family names (romanised), used as the first token of person names. The
/// heuristic annotation rule "the person name starts with a common family
/// name" (§IV-B2) keys off this list.
pub const FAMILY_NAMES: [&str; 40] = [
    "Li", "Wang", "Zhang", "Liu", "Chen", "Yang", "Zhao", "Huang", "Zhou", "Wu", "Xu", "Sun", "Hu",
    "Zhu", "Gao", "Lin", "He", "Guo", "Ma", "Luo", "Liang", "Song", "Zheng", "Xie", "Han", "Tang",
    "Feng", "Yu", "Dong", "Xiao", "Cheng", "Cao", "Yuan", "Deng", "Fu", "Shen", "Zeng", "Peng",
    "Lu", "Jiang",
];

/// Given names (romanised).
pub const GIVEN_NAMES: [&str; 48] = [
    "Wei", "Fang", "Min", "Jun", "Lei", "Yan", "Ting", "Hao", "Jing", "Qiang", "Xin", "Bo", "Ying",
    "Chao", "Mei", "Tao", "Ning", "Peng", "Rui", "Shan", "Kai", "Lan", "Feng", "Hua", "Jie", "Ke",
    "Liang", "Na", "Ping", "Qi", "Rong", "Song", "Tian", "Xia", "Yun", "Zhen", "An", "Bin", "Cong",
    "Dan", "En", "Gang", "Hong", "Juan", "Kun", "Long", "Miao", "Nan",
];

/// College name stems; combined with [`COLLEGE_SUFFIXES`].
pub const COLLEGE_STEMS: [&str; 36] = [
    "Northlake",
    "Eastfield",
    "Westbrook",
    "Southgate",
    "Riverside",
    "Hillcrest",
    "Stonebridge",
    "Clearwater",
    "Maplewood",
    "Silverpine",
    "Goldcrest",
    "Ironwood",
    "Bluepeak",
    "Redwood",
    "Greenhill",
    "Whitecliff",
    "Brightwater",
    "Fairview",
    "Lakeshore",
    "Summit",
    "Harbor",
    "Meadowbrook",
    "Oakridge",
    "Pinehurst",
    "Crestview",
    "Glenwood",
    "Springfield",
    "Ridgemont",
    "Valleyforge",
    "Seacrest",
    "Northgate",
    "Eastwood",
    "Sunridge",
    "Starfield",
    "Moonlake",
    "Skyline",
];

/// College name suffixes.
pub const COLLEGE_SUFFIXES: [&str; 4] = [
    "University",
    "Institute of Technology",
    "Normal University",
    "University of Science and Technology",
];

/// Majors.
pub const MAJORS: [&str; 28] = [
    "Computer Science",
    "Software Engineering",
    "Electrical Engineering",
    "Information Systems",
    "Data Science",
    "Applied Mathematics",
    "Mechanical Engineering",
    "Automation",
    "Communication Engineering",
    "Artificial Intelligence",
    "Statistics",
    "Physics",
    "Industrial Design",
    "Civil Engineering",
    "Chemical Engineering",
    "Biomedical Engineering",
    "Finance",
    "Accounting",
    "Business Administration",
    "Marketing",
    "Economics",
    "International Trade",
    "Human Resource Management",
    "Law",
    "English Literature",
    "Journalism",
    "Psychology",
    "Logistics Management",
];

/// Degrees (finite value set, as the paper notes).
pub const DEGREES: [&str; 6] = ["Bachelor", "Master", "PhD", "Associate", "B.S.", "M.S."];

/// Gender values (finite value set).
pub const GENDERS: [&str; 2] = ["Male", "Female"];

/// Company name stems; combined with [`COMPANY_DOMAINS`] and
/// [`COMPANY_SUFFIXES`].
pub const COMPANY_STEMS: [&str; 40] = [
    "Bluepeak",
    "Cloudrise",
    "Datawave",
    "Brightline",
    "Nexcore",
    "Quantexa",
    "Sunforge",
    "Vertex",
    "Lumina",
    "Pinnacle",
    "Starlight",
    "Oceanic",
    "Redstone",
    "Ironclad",
    "Swiftarc",
    "Novabyte",
    "Greenfield",
    "Silverline",
    "Truenorth",
    "Apexon",
    "Deepmind-like",
    "Fluxwave",
    "Gridware",
    "Hypernet",
    "Inspira",
    "Jadetech",
    "Kitewing",
    "Lighthouse",
    "Metaflow",
    "Nimbus",
    "Orbital",
    "Polaris",
    "Quasar",
    "Rainfall",
    "Streamline",
    "Tidewater",
    "Umbra",
    "Vortex",
    "Wavefront",
    "Zenith",
];

/// Company business-domain middles.
pub const COMPANY_DOMAINS: [&str; 8] = [
    "Technologies",
    "Networks",
    "Software",
    "Information",
    "Intelligence",
    "Systems",
    "Digital",
    "Cloud",
];

/// Company legal suffixes ("the company entity often ends with 'Co. LTD'").
pub const COMPANY_SUFFIXES: [&str; 3] = ["Co. LTD", "Inc.", "Group"];

/// Job positions.
pub const POSITIONS: [&str; 30] = [
    "Software Engineer",
    "Senior Software Engineer",
    "Backend Developer",
    "Frontend Developer",
    "Algorithm Engineer",
    "Data Engineer",
    "Machine Learning Engineer",
    "Product Manager",
    "Project Manager",
    "QA Engineer",
    "Test Engineer",
    "DevOps Engineer",
    "Site Reliability Engineer",
    "Database Administrator",
    "System Architect",
    "Technical Lead",
    "Engineering Manager",
    "Research Scientist",
    "Data Analyst",
    "Business Analyst",
    "UI Designer",
    "UX Designer",
    "Operations Manager",
    "Sales Manager",
    "Marketing Specialist",
    "HR Specialist",
    "Financial Analyst",
    "Security Engineer",
    "Mobile Developer",
    "Solutions Architect",
];

/// Project name head nouns.
pub const PROJECT_HEADS: [&str; 20] = [
    "Realtime",
    "Distributed",
    "Intelligent",
    "Unified",
    "Scalable",
    "Automated",
    "Interactive",
    "Streaming",
    "Secure",
    "Adaptive",
    "Cross-platform",
    "Cloud-native",
    "Enterprise",
    "Mobile",
    "Embedded",
    "Multi-tenant",
    "High-availability",
    "Low-latency",
    "Self-service",
    "Federated",
];

/// Project name middles.
pub const PROJECT_MIDS: [&str; 16] = [
    "Recommendation",
    "Payment",
    "Logistics",
    "Monitoring",
    "Search",
    "Advertising",
    "Inventory",
    "Scheduling",
    "Messaging",
    "Analytics",
    "Authentication",
    "Billing",
    "Reporting",
    "Crawling",
    "Indexing",
    "Trading",
];

/// Project name tails.
pub const PROJECT_TAILS: [&str; 8] = [
    "Platform",
    "System",
    "Service",
    "Engine",
    "Pipeline",
    "Dashboard",
    "Framework",
    "Gateway",
];

/// Skill keywords.
pub const SKILLS: [&str; 36] = [
    "Java",
    "Python",
    "C++",
    "Rust",
    "Go",
    "JavaScript",
    "TypeScript",
    "SQL",
    "Kubernetes",
    "Docker",
    "Linux",
    "Git",
    "Redis",
    "MySQL",
    "PostgreSQL",
    "MongoDB",
    "Kafka",
    "Spark",
    "Hadoop",
    "Flink",
    "TensorFlow",
    "PyTorch",
    "React",
    "Vue",
    "Spring",
    "Django",
    "Flask",
    "gRPC",
    "GraphQL",
    "AWS",
    "Nginx",
    "Elasticsearch",
    "RabbitMQ",
    "Jenkins",
    "Terraform",
    "Ansible",
];

/// Award phrases.
pub const AWARDS: [&str; 14] = [
    "National Scholarship",
    "First Prize Scholarship",
    "Outstanding Graduate Award",
    "Excellent Student Leader",
    "Outstanding Employee of the Year",
    "Best Innovation Award",
    "Hackathon Champion",
    "Dean's List Honors",
    "Merit Student Award",
    "Best Team Contribution Award",
    "Annual Technical Excellence Award",
    "Provincial Mathematics Contest Second Prize",
    "ACM Regional Contest Bronze Medal",
    "Excellent Thesis Award",
];

/// Verb phrases for work/project bullets.
pub const BULLET_VERBS: [&str; 16] = [
    "Designed",
    "Implemented",
    "Maintained",
    "Optimized",
    "Led",
    "Developed",
    "Refactored",
    "Migrated",
    "Deployed",
    "Monitored",
    "Automated",
    "Integrated",
    "Documented",
    "Tested",
    "Scaled",
    "Launched",
];

/// Object phrases for bullets.
pub const BULLET_OBJECTS: [&str; 16] = [
    "the core service modules",
    "a distributed cache layer",
    "the data ingestion pipeline",
    "the user growth dashboard",
    "an internal configuration center",
    "the offline feature store",
    "the online inference service",
    "a high-throughput message queue",
    "the continuous integration workflow",
    "the database sharding scheme",
    "the API gateway routing rules",
    "the anomaly detection alerts",
    "the A/B testing framework",
    "the customer billing reports",
    "the search ranking strategy",
    "the mobile client SDK",
];

/// Outcome phrases for bullets.
pub const BULLET_OUTCOMES: [&str; 12] = [
    "reducing average latency by 40 percent",
    "improving system availability to four nines",
    "cutting infrastructure cost significantly",
    "supporting millions of daily active users",
    "shortening the release cycle to one week",
    "increasing conversion rate measurably",
    "eliminating recurring on-call incidents",
    "doubling the processing throughput",
    "raising unit test coverage above 85 percent",
    "enabling rapid feature experimentation",
    "standardizing the team coding practices",
    "unblocking several downstream teams",
];

/// Summary sentence templates (joined with sampled skills/traits).
pub const SUMMARY_LINES: [&str; 10] = [
    "Self-motivated engineer with solid fundamentals and strong ownership",
    "Passionate about large scale distributed systems and clean architecture",
    "Fast learner who enjoys collaborating across teams",
    "Strong communication skills and a pragmatic engineering mindset",
    "Experienced in the full lifecycle from design to operation",
    "Comfortable working under tight deadlines with shifting priorities",
    "Focused on measurable impact and data driven decisions",
    "Enthusiastic about mentoring junior engineers",
    "Detail oriented with a habit of thorough code review",
    "Proven record of delivering reliable services on schedule",
];

/// Sample a person name: family name + 1–2 given tokens.
pub fn sample_name(rng: &mut impl Rng) -> String {
    let family = FAMILY_NAMES.choose(rng).expect("non-empty");
    let g1 = GIVEN_NAMES.choose(rng).expect("non-empty");
    if rng.gen_bool(0.4) {
        let g2 = GIVEN_NAMES.choose(rng).expect("non-empty");
        format!("{family} {g1}{}", g2.to_lowercase())
    } else {
        format!("{family} {g1}")
    }
}

/// Every possible college surface form (the full pool).
pub fn all_colleges() -> Vec<String> {
    let mut v = Vec::new();
    for stem in COLLEGE_STEMS {
        for suffix in COLLEGE_SUFFIXES {
            v.push(format!("{stem} {suffix}"));
        }
    }
    v
}

/// Every possible company surface form (the full pool).
pub fn all_companies() -> Vec<String> {
    let mut v = Vec::new();
    for stem in COMPANY_STEMS {
        for domain in COMPANY_DOMAINS {
            for suffix in COMPANY_SUFFIXES {
                v.push(format!("{stem} {domain} {suffix}"));
            }
        }
    }
    v
}

/// Every possible project surface form (the full pool).
pub fn all_projects() -> Vec<String> {
    let mut v = Vec::new();
    for head in PROJECT_HEADS {
        for mid in PROJECT_MIDS {
            for tail in PROJECT_TAILS {
                v.push(format!("{head} {mid} {tail}"));
            }
        }
    }
    v
}

/// Sample an email derived from a name (so heuristics can cross-check).
pub fn sample_email(rng: &mut impl Rng, name: &str) -> String {
    let lowered: Vec<String> = name.split_whitespace().map(|s| s.to_lowercase()).collect();
    let domains = ["example.com", "mailbox.cn", "corpmail.com", "webpost.net"];
    let sep = if rng.gen_bool(0.5) { "." } else { "_" };
    let num: u32 = rng.gen_range(1..999);
    format!(
        "{}{}{}{}@{}",
        lowered[0],
        sep,
        lowered.get(1).cloned().unwrap_or_default(),
        num,
        domains.choose(rng).expect("non-empty")
    )
}

/// Sample a phone number in one of the accepted shapes.
pub fn sample_phone(rng: &mut impl Rng) -> String {
    if rng.gen_bool(0.6) {
        // Mobile: 11 digits starting 13/15/18.
        let prefix = ["138", "139", "158", "186", "188"]
            .choose(rng)
            .expect("non-empty");
        let rest: String = (0..8)
            .map(|_| char::from(b'0' + rng.gen_range(0..10u8)))
            .collect();
        format!("{prefix}{rest}")
    } else {
        // Landline-ish grouped form.
        let a: String = (0..3)
            .map(|_| char::from(b'0' + rng.gen_range(0..10u8)))
            .collect();
        let b: String = (0..4)
            .map(|_| char::from(b'0' + rng.gen_range(0..10u8)))
            .collect();
        let c: String = (0..4)
            .map(|_| char::from(b'0' + rng.gen_range(0..10u8)))
            .collect();
        format!("{a}-{b}-{c}")
    }
}

/// Sample a `YYYY.MM` date within `[min_year, max_year]`.
pub fn sample_year_month(rng: &mut impl Rng, min_year: u32, max_year: u32) -> String {
    let y = rng.gen_range(min_year..=max_year);
    let m = rng.gen_range(1..=12u32);
    format!("{y}.{m:02}")
}

/// Sample a `(start, end)` date range: the end follows the start by 3–48
/// months (real experience ranges never run backwards).
pub fn sample_date_range(rng: &mut impl Rng, min_year: u32, max_year: u32) -> (String, String) {
    let y = rng.gen_range(min_year..=max_year);
    let m = rng.gen_range(1..=12u32);
    let months = y * 12 + (m - 1) + rng.gen_range(3..=48u32);
    let (ey, em) = (months / 12, months % 12 + 1);
    (format!("{y}.{m:02}"), format!("{ey}.{em:02}"))
}

/// Sample a work/project bullet sentence.
pub fn sample_bullet(rng: &mut impl Rng) -> String {
    let v = BULLET_VERBS.choose(rng).expect("non-empty");
    let o = BULLET_OBJECTS.choose(rng).expect("non-empty");
    if rng.gen_bool(0.7) {
        let out = BULLET_OUTCOMES.choose(rng).expect("non-empty");
        format!("{v} {o} , {out}")
    } else {
        format!("{v} {o}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pools_are_nontrivial() {
        assert_eq!(all_colleges().len(), 36 * 4);
        assert_eq!(all_companies().len(), 40 * 8 * 3);
        assert_eq!(all_projects().len(), 20 * 16 * 8);
    }

    #[test]
    fn sampled_values_validate_with_matchers() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let name = sample_name(&mut rng);
            assert!(resuformer_text::matchers::is_email(&sample_email(
                &mut rng, &name
            )));
            assert!(resuformer_text::matchers::is_phone(&sample_phone(&mut rng)));
            assert!(resuformer_text::matchers::is_year_month(
                &sample_year_month(&mut rng, 2000, 2025)
            ));
        }
    }

    #[test]
    fn names_start_with_family_name() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let name = sample_name(&mut rng);
            let first = name.split_whitespace().next().unwrap();
            assert!(FAMILY_NAMES.contains(&first), "{name}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = sample_name(&mut ChaCha8Rng::seed_from_u64(7));
        let b = sample_name(&mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn bullets_are_plain_word_streams() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let b = sample_bullet(&mut rng);
            assert!(!b.is_empty());
            assert!(b.split_whitespace().count() >= 3);
        }
    }
}

/// Render a surface variant of an open-class entity mention, as real
/// resumes do ("Northlake Univ.", "Bluepeak Technologies" without the
/// legal suffix, "Sr. Software Eng."). Dictionaries hold canonical forms
/// only, so variants are invisible to exact matching — a key source of
/// distant-supervision incompleteness beyond coverage.
pub fn surface_variant(rng: &mut impl Rng, canonical: &str) -> String {
    let mut out = canonical.to_string();
    let rules: [(&str, &str); 8] = [
        (
            "University of Science and Technology",
            "Univ. of Sci. & Tech.",
        ),
        ("Institute of Technology", "Tech."),
        ("Normal University", "Normal Univ."),
        ("University", "Univ."),
        ("Technologies", "Tech"),
        ("Senior", "Sr."),
        ("Engineer", "Eng."),
        ("Developer", "Dev."),
    ];
    for (from, to) in rules {
        if contains_word_phrase(&out, from) && rng.gen_bool(0.7) {
            out = replace_word_phrase(&out, from, to);
            break;
        }
    }
    // Drop a trailing legal suffix half the time.
    for suffix in [" Co. LTD", " Inc.", " Group"] {
        if out.ends_with(suffix) && rng.gen_bool(0.5) {
            out.truncate(out.len() - suffix.len());
            break;
        }
    }
    out
}

/// Whether `phrase` occurs in `s` on word boundaries (so "Engineer" does
/// not match inside "Engineering").
fn contains_word_phrase(s: &str, phrase: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = s[start..].find(phrase) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !s[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric());
        let after = abs + phrase.len();
        let after_ok = after == s.len()
            || !s[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric());
        if before_ok && after_ok {
            return true;
        }
        start = abs + 1;
    }
    false
}

/// Replace the first word-boundary occurrence of `phrase` with `to`.
fn replace_word_phrase(s: &str, phrase: &str, to: &str) -> String {
    let mut start = 0;
    while let Some(pos) = s[start..].find(phrase) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !s[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric());
        let after = abs + phrase.len();
        let after_ok = after == s.len()
            || !s[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric());
        if before_ok && after_ok {
            return format!("{}{}{}", &s[..abs], to, &s[after..]);
        }
        start = abs + 1;
    }
    s.to_string()
}

#[cfg(test)]
mod variant_tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn variants_differ_from_canonical_most_of_the_time() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut changed = 0;
        for _ in 0..100 {
            let v = surface_variant(&mut rng, "Northlake University");
            if v != "Northlake University" {
                changed += 1;
                assert!(v.contains("Univ."), "{v}");
            }
        }
        assert!(changed > 40, "only {changed} variants generated");
    }

    #[test]
    fn company_suffix_drops() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut dropped = 0;
        for _ in 0..100 {
            let v = surface_variant(&mut rng, "Bluepeak Networks Co. LTD");
            if !v.contains("Co. LTD") {
                dropped += 1;
            }
            assert!(v.starts_with("Bluepeak"));
        }
        assert!(dropped > 20, "only {dropped} suffix drops");
    }

    #[test]
    fn variant_never_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for canonical in ["Group", "Senior Software Engineer", "X"] {
            for _ in 0..20 {
                assert!(!surface_variant(&mut rng, canonical).is_empty());
            }
        }
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn date_ranges_are_forward_in_time() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..200 {
            let (start, end) = sample_date_range(&mut rng, 2010, 2022);
            let parse = |s: &str| -> u32 {
                s[..4].parse::<u32>().unwrap() * 12 + s[5..7].parse::<u32>().unwrap()
            };
            assert!(parse(&end) > parse(&start), "{start} .. {end}");
            assert!(resuformer_text::matchers::is_year_month(&start));
            assert!(resuformer_text::matchers::is_year_month(&end));
        }
    }
}

#[cfg(test)]
mod word_boundary_tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn engineer_never_mangles_engineering() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            let v = surface_variant(&mut rng, "Engineering Manager");
            assert!(!v.contains("Eng.ing"), "{v}");
        }
        // Whole-word Engineer still abbreviates.
        let mut hit = false;
        for _ in 0..100 {
            if surface_variant(&mut rng, "Software Engineer") == "Software Eng." {
                hit = true;
            }
        }
        assert!(hit);
    }
}
