//! The serving loop: accept connections, route requests, and run the
//! micro-batching pipeline across a worker pool sharing one warm parser.
//!
//! Thread layout:
//!
//! ```text
//! acceptor ──spawns──▶ connection handlers ──Job──▶ requests channel
//!                                                        │
//!                                                   scheduler (batching)
//!                                                        │ Vec<Job>
//!                                              batches channel (mpmc)
//!                                               │        │        │
//!                                            worker 0  worker 1  worker N
//!                                         (all share ONE parser replica)
//! ```
//!
//! Shutdown drains rather than drops: the acceptor stops taking new
//! connections, in-flight handlers finish enqueuing and get replies, the
//! scheduler empties the queue, and only then do the workers exit.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use resuformer_doc::Document;
use serde::Serialize;

use crate::batch::{run_scheduler, Job};
use crate::http::{read_request, write_error, write_json, write_response, Request};
use crate::metrics::Metrics;
use crate::registry::{ModelInfo, ModelRegistry};

/// How long a connection handler waits for its parse result before
/// answering 504. Generous: a batch on a cold replica takes well under a
/// second even for large documents.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(60);

/// Tunables for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Largest batch the scheduler will form.
    pub max_batch: usize,
    /// Longest the scheduler waits to fill a batch before shipping it.
    pub max_wait_ms: u64,
    /// Worker threads, all sharing one warm parser replica.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            max_batch: 8,
            max_wait_ms: 20,
            workers: 2,
        }
    }
}

/// A running inference server. Dropping the handle does NOT stop it; call
/// [`Server::shutdown`] for the orderly drain.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    acceptor: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    active_connections: Arc<AtomicUsize>,
}

#[derive(Serialize)]
struct Health<'a> {
    status: &'a str,
    model: &'a ModelInfo,
}

impl Server {
    /// Bind, build the shared parser (so a corrupt model fails startup,
    /// not a request), spin up the worker pool, and start accepting
    /// connections in the background.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("resolving bound address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("setting nonblocking accept: {e}"))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::new());
        let active_connections = Arc::new(AtomicUsize::new(0));
        let (req_tx, req_rx) = unbounded::<Job>();
        let (batch_tx, batch_rx) = unbounded::<Vec<Job>>();

        // Worker pool: the autograd graph is Arc-based (`Send + Sync`), so
        // every thread shares ONE warm parser built once from the model
        // bytes — memory stays constant in the worker count instead of
        // growing `workers×`. Seeds come from a shared counter so every
        // document still gets a distinct deterministic stream.
        let parser = Arc::new(
            registry
                .build_parser()
                .map_err(|e| format!("loading model replica: {e}"))?,
        );
        let seed_counter = Arc::new(AtomicU64::new(0x5EED));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for worker_id in 0..config.workers.max(1) {
            let rx = batch_rx.clone();
            let parser = parser.clone();
            let metrics = metrics.clone();
            let seed_counter = seed_counter.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("resuformer-worker-{worker_id}"))
                    .spawn(move || {
                        while let Ok(batch) = rx.recv() {
                            // Borrow the documents straight out of the jobs:
                            // the hot path never clones a Document.
                            let docs: Vec<&Document> = batch.iter().map(|j| &j.doc).collect();
                            let base_seed =
                                seed_counter.fetch_add(docs.len() as u64, Ordering::Relaxed);
                            let start = Instant::now();
                            let results = resuformer_telemetry::span::time("serve.parse", || {
                                parser.parse_documents_ref(&docs, base_seed)
                            });
                            metrics.note_batch_done(batch.len(), start.elapsed().as_secs_f64());
                            for (job, parsed) in batch.into_iter().zip(results) {
                                metrics.note_request_done(job.enqueued.elapsed().as_secs_f64());
                                let _ = job.resp.send(Ok(parsed));
                            }
                        }
                    })
                    .map_err(|e| format!("spawning worker: {e}"))?,
            );
        }
        drop(batch_rx);

        // Scheduler thread.
        let scheduler = {
            let metrics = metrics.clone();
            let max_wait = Duration::from_millis(config.max_wait_ms);
            let max_batch = config.max_batch;
            std::thread::Builder::new()
                .name("resuformer-scheduler".to_string())
                .spawn(move || run_scheduler(req_rx, batch_tx, max_batch, max_wait, metrics))
                .map_err(|e| format!("spawning scheduler: {e}"))?
        };

        // Acceptor thread: polls the nonblocking listener so it can also
        // notice the shutdown flag between connections.
        let acceptor = {
            let shutdown = shutdown.clone();
            let metrics = metrics.clone();
            let active = active_connections.clone();
            let info = registry.info.clone();
            std::thread::Builder::new()
                .name("resuformer-acceptor".to_string())
                .spawn(move || {
                    // req_tx moves in here: once the acceptor exits and
                    // every handler finishes, all request senders are gone
                    // and the scheduler drains to a stop.
                    let req_tx = req_tx;
                    loop {
                        if shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                active.fetch_add(1, Ordering::SeqCst);
                                let req_tx = req_tx.clone();
                                let metrics = metrics.clone();
                                let shutdown = shutdown.clone();
                                let active = active.clone();
                                let info = info.clone();
                                let spawned = std::thread::Builder::new()
                                    .name("resuformer-conn".to_string())
                                    .spawn(move || {
                                        handle_connection(
                                            stream, &req_tx, &metrics, &shutdown, &info,
                                        );
                                        active.fetch_sub(1, Ordering::SeqCst);
                                    });
                                if spawned.is_err() {
                                    active.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                .map_err(|e| format!("spawning acceptor: {e}"))?
        };

        Ok(Server {
            local_addr,
            shutdown,
            metrics,
            acceptor: Some(acceptor),
            scheduler: Some(scheduler),
            workers,
            active_connections,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared metrics handle (same counters `/metrics` reports).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// Orderly shutdown: stop accepting, let in-flight requests finish,
    /// drain the queue, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Handlers still running hold request senders; give them (bounded)
        // time to finish so their jobs get processed, not dropped.
        let deadline = Instant::now() + RESPONSE_TIMEOUT;
        while self.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Parse one request off the stream, route it, and reply.
fn handle_connection(
    mut stream: TcpStream,
    req_tx: &Sender<Job>,
    metrics: &Arc<Metrics>,
    shutdown: &Arc<AtomicBool>,
    info: &ModelInfo,
) {
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            metrics.note_error();
            write_error(&mut stream, 400, &e);
            return;
        }
    };
    match (
        request.method.as_str(),
        request.path.split('?').next().unwrap_or(""),
    ) {
        ("GET", "/healthz") => {
            write_json(
                &mut stream,
                200,
                &Health {
                    status: "ok",
                    model: info,
                },
            );
        }
        ("GET", "/metrics") => {
            write_json(&mut stream, 200, &metrics.snapshot());
        }
        ("GET", "/metrics/prometheus") => {
            write_response(
                &mut stream,
                200,
                "text/plain; version=0.0.4",
                metrics.prometheus_text().as_bytes(),
            );
        }
        ("POST", "/parse") => handle_parse(stream, &request, req_tx, metrics, shutdown),
        ("POST", "/parse_batch") => handle_parse_batch(stream, &request, req_tx, metrics, shutdown),
        ("GET", _) | ("POST", _) => {
            write_error(&mut stream, 404, "unknown path");
        }
        _ => {
            write_error(&mut stream, 405, "method not allowed");
        }
    }
}

/// Validate a document before it enters the queue.
fn check_document(doc: &Document) -> Result<(), String> {
    if doc.tokens.is_empty() {
        return Err("document has no tokens".to_string());
    }
    Ok(())
}

fn handle_parse(
    mut stream: TcpStream,
    request: &Request,
    req_tx: &Sender<Job>,
    metrics: &Arc<Metrics>,
    shutdown: &Arc<AtomicBool>,
) {
    if shutdown.load(Ordering::Relaxed) {
        metrics.note_error();
        write_error(&mut stream, 503, "server is shutting down");
        return;
    }
    let doc: Document = match serde_json::from_slice(&request.body) {
        Ok(d) => d,
        Err(e) => {
            metrics.note_error();
            write_error(&mut stream, 400, &format!("invalid document JSON: {e}"));
            return;
        }
    };
    if let Err(e) = check_document(&doc) {
        metrics.note_error();
        write_error(&mut stream, 400, &e);
        return;
    }
    let (resp_tx, resp_rx) = std::sync::mpsc::channel();
    metrics.note_enqueued();
    if req_tx
        .send(Job {
            doc,
            enqueued: Instant::now(),
            resp: resp_tx,
        })
        .is_err()
    {
        metrics.note_error();
        write_error(&mut stream, 503, "request queue is closed");
        return;
    }
    match resp_rx.recv_timeout(RESPONSE_TIMEOUT) {
        Ok(Ok(parsed)) => {
            resuformer_telemetry::span::time("serve.serialize", || {
                write_json(&mut stream, 200, &parsed)
            });
        }
        Ok(Err(e)) => {
            metrics.note_error();
            write_error(&mut stream, 500, &e);
        }
        Err(_) => {
            metrics.note_error();
            write_error(&mut stream, 504, "parse timed out");
        }
    }
}

fn handle_parse_batch(
    mut stream: TcpStream,
    request: &Request,
    req_tx: &Sender<Job>,
    metrics: &Arc<Metrics>,
    shutdown: &Arc<AtomicBool>,
) {
    if shutdown.load(Ordering::Relaxed) {
        metrics.note_error();
        write_error(&mut stream, 503, "server is shutting down");
        return;
    }
    let docs: Vec<Document> = match serde_json::from_slice(&request.body) {
        Ok(d) => d,
        Err(e) => {
            metrics.note_error();
            write_error(
                &mut stream,
                400,
                &format!("invalid document array JSON: {e}"),
            );
            return;
        }
    };
    if docs.is_empty() {
        metrics.note_error();
        write_error(&mut stream, 400, "empty document array");
        return;
    }
    if let Some(e) = docs.iter().find_map(|d| check_document(d).err()) {
        metrics.note_error();
        write_error(&mut stream, 400, &e);
        return;
    }
    let mut receivers = Vec::with_capacity(docs.len());
    for doc in docs {
        let (resp_tx, resp_rx) = std::sync::mpsc::channel();
        metrics.note_enqueued();
        if req_tx
            .send(Job {
                doc,
                enqueued: Instant::now(),
                resp: resp_tx,
            })
            .is_err()
        {
            metrics.note_error();
            write_error(&mut stream, 503, "request queue is closed");
            return;
        }
        receivers.push(resp_rx);
    }
    let mut parsed = Vec::with_capacity(receivers.len());
    for rx in receivers {
        match rx.recv_timeout(RESPONSE_TIMEOUT) {
            Ok(Ok(p)) => parsed.push(p),
            Ok(Err(e)) => {
                metrics.note_error();
                write_error(&mut stream, 500, &e);
                return;
            }
            Err(_) => {
                metrics.note_error();
                write_error(&mut stream, 504, "parse timed out");
                return;
            }
        }
    }
    resuformer_telemetry::span::time("serve.serialize", || write_json(&mut stream, 200, &parsed));
}
