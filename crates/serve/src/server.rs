//! The serving loop: accept connections, route requests, and run the
//! micro-batching pipeline across a supervised worker pool sharing one
//! warm parser.
//!
//! Thread layout:
//!
//! ```text
//! acceptor ──spawns──▶ connection handlers ──Job──▶ bounded requests channel
//!                                                        │ (full → 429)
//!                                                   scheduler (batching,
//!                                                    sheds expired jobs)
//!                                                        │ Vec<Job>
//!                                              batches channel (mpmc)
//!                                               │        │        │
//!                                            worker 0  worker 1  worker N
//!                                         (all share ONE parser replica,
//!                                          supervised: a crashed thread
//!                                          is respawned, a panicking
//!                                          batch is retried per-document)
//! ```
//!
//! Overload and faults degrade instead of collapsing:
//!
//! - admission is **bounded**: when the request queue is full the handler
//!   answers `429` immediately with a `Retry-After` estimate, so memory
//!   and tail latency stay bounded under any offered load;
//! - every job carries a **deadline**; the scheduler and the workers shed
//!   expired jobs (`504` was already on the wire) instead of parsing for
//!   nobody;
//! - workers run each batch under `catch_unwind`; a panic is retried one
//!   document at a time so only the poisoned document's request fails
//!   (`500`), and the **supervisor** respawns any worker thread that
//!   still dies, keeping the pool at full strength.
//!
//! Fault injection for all of the above goes through
//! `resuformer_telemetry::failpoint` — see the sites in
//! [`failpoint_sites`].
//!
//! Shutdown drains rather than drops: the acceptor stops taking new
//! connections, in-flight handlers finish enqueuing and get replies, the
//! scheduler empties the queue, and only then do the workers exit.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use resuformer_doc::Document;
use resuformer_telemetry::failpoint;
use serde::Serialize;

use crate::batch::{run_scheduler, Job, JobError, JobResult};
use crate::http::{
    read_request, write_error, write_error_with_headers, write_json, write_response, Request,
};
use crate::metrics::Metrics;
use crate::registry::{ModelInfo, ModelRegistry};

/// The failpoint sites this server exercises (see
/// `resuformer_telemetry::failpoint` for arming them):
///
/// | site | where it fires |
/// |---|---|
/// | `serve.worker.parse` | worker, inside `catch_unwind`, before the batched (and each retried) parse — `panic` exercises per-document retry, `err` fails the batch, `delay` simulates a slow model |
/// | `serve.worker.recv` | worker loop, outside `catch_unwind`, after a batch is received — `panic` kills the thread and exercises supervision |
/// | `serve.acceptor.spawn` | acceptor, before spawning a connection handler — `err` simulates thread-spawn failure (the connection gets a `503`) |
pub mod failpoint_sites {
    /// Worker parse step (inside the unwind guard).
    pub const WORKER_PARSE: &str = "serve.worker.parse";
    /// Worker batch receive (outside the unwind guard — kills the thread).
    pub const WORKER_RECV: &str = "serve.worker.recv";
    /// Acceptor handler spawn.
    pub const ACCEPTOR_SPAWN: &str = "serve.acceptor.spawn";
}

/// Tunables for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Largest batch the scheduler will form.
    pub max_batch: usize,
    /// Longest the scheduler waits to fill a batch before shipping it.
    pub max_wait_ms: u64,
    /// Worker threads, all sharing one warm parser replica.
    pub workers: usize,
    /// Bound on the request queue; a full queue answers `429` with a
    /// `Retry-After` estimate. `0` means `max_batch × workers × 4`.
    pub max_queue: usize,
    /// Per-request deadline in milliseconds: time from admission to the
    /// last instant anyone is still waiting for the answer. Expired jobs
    /// are shed (`504`) instead of parsed.
    pub request_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            max_batch: 8,
            max_wait_ms: 20,
            workers: 2,
            max_queue: 0,
            request_timeout_ms: 60_000,
        }
    }
}

impl ServeConfig {
    /// The effective queue bound (resolves the `0` default).
    pub fn queue_capacity(&self) -> usize {
        if self.max_queue > 0 {
            self.max_queue
        } else {
            (self.max_batch.max(1) * self.workers.max(1) * 4).max(1)
        }
    }

    /// The per-request deadline as a [`Duration`].
    pub fn request_timeout(&self) -> Duration {
        Duration::from_millis(self.request_timeout_ms.max(1))
    }
}

/// A running inference server. Dropping the handle does NOT stop it; call
/// [`Server::shutdown`] for the orderly drain.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    acceptor: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    active_connections: Arc<AtomicUsize>,
    request_timeout: Duration,
}

#[derive(Serialize)]
struct Health<'a> {
    status: &'a str,
    model: &'a ModelInfo,
}

/// Everything a connection handler needs, bundled once instead of six
/// argument slots per call.
struct HandlerCtx {
    req_tx: Sender<Job>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    info: ModelInfo,
    request_timeout: Duration,
    queue_capacity: usize,
    max_batch: usize,
    workers: usize,
}

impl HandlerCtx {
    /// Seconds a rejected client should wait before retrying: the time
    /// the worker pool needs to drain a full queue, estimated from the
    /// observed mean batch service time. Clamped to `[1, 60]`; before the
    /// first batch completes there is no observation, so answer 1.
    fn retry_after_seconds(&self) -> u64 {
        let mean_batch = self.metrics.mean_batch_seconds();
        if mean_batch <= 0.0 {
            return 1;
        }
        let batches_to_drain =
            (self.queue_capacity as f64 / (self.max_batch * self.workers).max(1) as f64).ceil();
        (mean_batch * batches_to_drain).ceil() as u64
    }
}

impl Server {
    /// Bind, build the shared parser (so a corrupt model fails startup,
    /// not a request), spin up the supervised worker pool, and start
    /// accepting connections in the background.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Result<Server, String> {
        // Honor RESUFORMER_FAILPOINTS in every embedding binary (lazy and
        // idempotent; a malformed spec warns instead of failing startup).
        let _ = failpoint::init_from_env();

        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("resolving bound address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("setting nonblocking accept: {e}"))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::new());
        let active_connections = Arc::new(AtomicUsize::new(0));
        let queue_capacity = config.queue_capacity();
        let (req_tx, req_rx) = bounded::<Job>(queue_capacity);
        // The batch channel is bounded too (one staged batch per worker):
        // if it were unbounded the scheduler would drain the admission
        // queue into it as fast as requests arrive and the queue bound
        // would never be felt. With both bounded, backpressure propagates
        // workers → scheduler → admission queue → 429.
        let (batch_tx, batch_rx) = bounded::<Vec<Job>>(config.workers.max(1));

        // Worker pool: the autograd graph is Arc-based (`Send + Sync`), so
        // every thread shares ONE warm parser built once from the model
        // bytes — memory stays constant in the worker count instead of
        // growing `workers×`. Seeds come from a shared counter so every
        // document still gets a distinct deterministic stream.
        let parser = Arc::new(
            registry
                .build_parser()
                .map_err(|e| format!("loading model replica: {e}"))?,
        );
        let seed_counter = Arc::new(AtomicU64::new(0x5EED));
        let pool = WorkerPool {
            batch_rx,
            parser,
            metrics: metrics.clone(),
            seed_counter,
            shutdown: shutdown.clone(),
        };
        let supervisor = pool.start(config.workers.max(1))?;

        // Scheduler thread.
        let scheduler = {
            let metrics = metrics.clone();
            let max_wait = Duration::from_millis(config.max_wait_ms);
            let max_batch = config.max_batch;
            std::thread::Builder::new()
                .name("resuformer-scheduler".to_string())
                .spawn(move || run_scheduler(req_rx, batch_tx, max_batch, max_wait, metrics))
                .map_err(|e| format!("spawning scheduler: {e}"))?
        };

        // Acceptor thread: polls the nonblocking listener so it can also
        // notice the shutdown flag between connections.
        let acceptor = {
            let ctx = Arc::new(HandlerCtx {
                req_tx,
                metrics: metrics.clone(),
                shutdown: shutdown.clone(),
                info: registry.info.clone(),
                request_timeout: config.request_timeout(),
                queue_capacity,
                max_batch: config.max_batch.max(1),
                workers: config.workers.max(1),
            });
            let shutdown = shutdown.clone();
            let active = active_connections.clone();
            std::thread::Builder::new()
                .name("resuformer-acceptor".to_string())
                .spawn(move || {
                    // ctx (and with it the request sender) lives in this
                    // closure: once the acceptor exits and every handler
                    // finishes, all request senders are gone and the
                    // scheduler drains to a stop.
                    loop {
                        if shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                accept_connection(stream, &ctx, &active);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                .map_err(|e| format!("spawning acceptor: {e}"))?
        };

        Ok(Server {
            local_addr,
            shutdown,
            metrics,
            acceptor: Some(acceptor),
            scheduler: Some(scheduler),
            supervisor: Some(supervisor),
            active_connections,
            request_timeout: config.request_timeout(),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared metrics handle (same counters `/metrics` reports).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// Orderly shutdown: stop accepting, let in-flight requests finish,
    /// drain the queue, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Handlers still running hold request senders; give them (bounded)
        // time to finish so their jobs get processed, not dropped. Every
        // handler answers by its own deadline, so the request timeout plus
        // slack bounds the wait.
        let deadline = Instant::now() + self.request_timeout + Duration::from_secs(5);
        while self.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// Hand one accepted connection to a handler thread; if the thread cannot
/// be spawned, the client still gets an answer (`503`) instead of a
/// silently dropped connection.
fn accept_connection(stream: TcpStream, ctx: &Arc<HandlerCtx>, active: &Arc<AtomicUsize>) {
    active.fetch_add(1, Ordering::SeqCst);
    if let Err(e) = failpoint::hit(failpoint_sites::ACCEPTOR_SPAWN) {
        // Simulated spawn failure: same degraded path as the real one.
        active.fetch_sub(1, Ordering::SeqCst);
        ctx.metrics.note_error();
        let mut stream = stream;
        write_error(
            &mut stream,
            503,
            &format!("cannot spawn connection handler: {e}"),
        );
        return;
    }
    // Keep a clone of the socket: if the spawn fails, the closure (and
    // the primary stream inside it) is dropped, but the clone still
    // reaches the peer for a 503.
    let fallback = stream.try_clone().ok();
    let ctx_clone = ctx.clone();
    let active_clone = active.clone();
    let spawned = std::thread::Builder::new()
        .name("resuformer-conn".to_string())
        .spawn(move || {
            handle_connection(stream, &ctx_clone);
            active_clone.fetch_sub(1, Ordering::SeqCst);
        });
    if let Err(e) = spawned {
        active.fetch_sub(1, Ordering::SeqCst);
        ctx.metrics.note_error();
        if let Some(mut stream) = fallback {
            write_error(
                &mut stream,
                503,
                &format!("cannot spawn connection handler: {e}"),
            );
        }
    }
}

/// The supervised worker pool: spawns the workers, then watches them from
/// a supervisor thread that respawns any thread that dies by panic, so
/// the pool never shrinks below its configured strength.
struct WorkerPool {
    batch_rx: Receiver<Vec<Job>>,
    parser: Arc<resuformer::pipeline::ResumeParser>,
    metrics: Arc<Metrics>,
    seed_counter: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
}

impl WorkerPool {
    fn spawn_worker(&self, worker_id: usize) -> std::io::Result<JoinHandle<()>> {
        let rx = self.batch_rx.clone();
        let parser = self.parser.clone();
        let metrics = self.metrics.clone();
        let seed_counter = self.seed_counter.clone();
        metrics.note_worker_up();
        let spawned = std::thread::Builder::new()
            .name(format!("resuformer-worker-{worker_id}"))
            .spawn(move || run_worker(rx, parser, metrics, seed_counter));
        if spawned.is_err() {
            self.metrics.note_worker_down();
        }
        spawned
    }

    /// Spawn `count` workers plus the supervisor thread that owns their
    /// join handles. The returned handle joins every worker before it
    /// finishes, so `Server::shutdown` only has to join the supervisor.
    fn start(self, count: usize) -> Result<JoinHandle<()>, String> {
        let mut slots: Vec<Option<JoinHandle<()>>> = Vec::with_capacity(count);
        for worker_id in 0..count {
            slots.push(Some(
                self.spawn_worker(worker_id)
                    .map_err(|e| format!("spawning worker: {e}"))?,
            ));
        }
        std::thread::Builder::new()
            .name("resuformer-supervisor".to_string())
            .spawn(move || self.supervise(slots))
            .map_err(|e| format!("spawning supervisor: {e}"))
    }

    fn supervise(self, mut slots: Vec<Option<JoinHandle<()>>>) {
        loop {
            let mut alive = 0usize;
            for (worker_id, slot) in slots.iter_mut().enumerate() {
                let finished = slot.as_ref().is_some_and(|h| h.is_finished());
                if finished {
                    let crashed = slot.take().expect("slot checked Some").join().is_err();
                    self.metrics.note_worker_down();
                    if crashed && !self.shutdown.load(Ordering::Relaxed) {
                        // A panic escaped the batch guard (or hit the
                        // worker loop itself): restore pool strength.
                        self.metrics.note_worker_restart();
                        match self.spawn_worker(worker_id) {
                            Ok(h) => {
                                *slot = Some(h);
                                alive += 1;
                            }
                            Err(e) => {
                                eprintln!("respawning worker {worker_id}: {e}");
                            }
                        }
                    }
                    // A clean exit means the batch channel closed — the
                    // drain path; leave the slot empty.
                } else if slot.is_some() {
                    alive += 1;
                }
            }
            if alive == 0 && self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if alive == 0 && self.batch_rx.is_empty() {
                // All workers exited cleanly without a shutdown flag:
                // every upstream sender is gone, nothing left to do.
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// One worker thread: pull batches until the channel closes, parsing each
/// under a panic guard.
fn run_worker(
    rx: Receiver<Vec<Job>>,
    parser: Arc<resuformer::pipeline::ResumeParser>,
    metrics: Arc<Metrics>,
    seed_counter: Arc<AtomicU64>,
) {
    while let Ok(batch) = rx.recv() {
        // Outside the unwind guard: arming `panic` here kills the whole
        // thread (dropping the batch in hand) — the supervision path.
        let _ = failpoint::hit(failpoint_sites::WORKER_RECV);
        process_batch(batch, &parser, &metrics, &seed_counter);
    }
}

/// Parse one batch: shed expired jobs, run the batched parse under
/// `catch_unwind`, and on a panic retry one document at a time so only
/// the poisoned document's request fails.
fn process_batch(
    batch: Vec<Job>,
    parser: &Arc<resuformer::pipeline::ResumeParser>,
    metrics: &Arc<Metrics>,
    seed_counter: &Arc<AtomicU64>,
) {
    // Shed jobs whose handler already gave up: a 504 is on the wire, and
    // parsing them would only delay the live ones behind them.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if job.expired(now) {
            metrics.note_job_expired_inflight();
            job.shed();
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }

    // Borrow the documents straight out of the jobs: the hot path never
    // clones a Document.
    let docs: Vec<&Document> = live.iter().map(|j| &j.doc).collect();
    let base_seed = seed_counter.fetch_add(docs.len() as u64, Ordering::Relaxed);
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        failpoint::hit(failpoint_sites::WORKER_PARSE)?;
        Ok(resuformer_telemetry::span::time("serve.parse", || {
            parser.parse_documents_ref(&docs, base_seed)
        }))
    }));
    match outcome {
        Ok(Ok(results)) => {
            metrics.note_batch_done(live.len(), start.elapsed().as_secs_f64());
            for (job, parsed) in live.into_iter().zip(results) {
                metrics.note_request_done(job.enqueued.elapsed().as_secs_f64());
                let _ = job.resp.send(Ok(parsed));
            }
        }
        Ok(Err(msg)) => {
            // A fallible parse step (today: only an `err` failpoint)
            // fails the whole batch without a panic.
            for job in live {
                let _ = job.resp.send(Err(JobError::Failed(msg.clone())));
            }
        }
        Err(_) => {
            // The batch panicked. Retry each document alone: every
            // healthy request still succeeds, and only the poisoned
            // document's request gets an error.
            metrics.note_worker_panic();
            for job in live {
                let seed = seed_counter.fetch_add(1, Ordering::Relaxed);
                let retry_start = Instant::now();
                let retry = catch_unwind(AssertUnwindSafe(|| {
                    failpoint::hit(failpoint_sites::WORKER_PARSE)?;
                    Ok(resuformer_telemetry::span::time("serve.parse", || {
                        parser.parse_documents_ref(&[&job.doc], seed)
                    }))
                }));
                match retry {
                    Ok(Ok(mut results)) if !results.is_empty() => {
                        metrics.note_batch_done(1, retry_start.elapsed().as_secs_f64());
                        metrics.note_request_done(job.enqueued.elapsed().as_secs_f64());
                        let _ = job.resp.send(Ok(results.remove(0)));
                    }
                    Ok(Ok(_)) => {
                        let _ = job.resp.send(Err(JobError::Failed(
                            "parser returned no result for the document".to_string(),
                        )));
                    }
                    Ok(Err(msg)) => {
                        let _ = job.resp.send(Err(JobError::Failed(msg)));
                    }
                    Err(_) => {
                        metrics.note_doc_poisoned();
                        let _ = job.resp.send(Err(JobError::Failed(
                            "worker panicked while parsing this document".to_string(),
                        )));
                    }
                }
            }
        }
    }
}

/// Parse one request off the stream, route it, and reply.
fn handle_connection(mut stream: TcpStream, ctx: &HandlerCtx) {
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            ctx.metrics.note_error();
            write_error(&mut stream, 400, &e);
            return;
        }
    };
    match (
        request.method.as_str(),
        request.path.split('?').next().unwrap_or(""),
    ) {
        ("GET", "/healthz") => {
            write_json(
                &mut stream,
                200,
                &Health {
                    status: "ok",
                    model: &ctx.info,
                },
            );
        }
        ("GET", "/metrics") => {
            write_json(&mut stream, 200, &ctx.metrics.snapshot());
        }
        ("GET", "/metrics/prometheus") => {
            write_response(
                &mut stream,
                200,
                "text/plain; version=0.0.4",
                ctx.metrics.prometheus_text().as_bytes(),
            );
        }
        ("POST", "/parse") => handle_parse(stream, &request, ctx),
        ("POST", "/parse_batch") => handle_parse_batch(stream, &request, ctx),
        ("GET", _) | ("POST", _) => {
            write_error(&mut stream, 404, "unknown path");
        }
        _ => {
            write_error(&mut stream, 405, "method not allowed");
        }
    }
}

/// Validate a document before it enters the queue.
fn check_document(doc: &Document) -> Result<(), String> {
    if doc.tokens.is_empty() {
        return Err("document has no tokens".to_string());
    }
    Ok(())
}

/// Admission: try to enqueue one job on the bounded queue. `Ok(receiver)`
/// means the job is in; otherwise the error response has already been
/// written and the request is over.
fn try_enqueue(
    stream: &mut TcpStream,
    ctx: &HandlerCtx,
    doc: Document,
    deadline: Instant,
) -> Result<std::sync::mpsc::Receiver<JobResult>, ()> {
    let (resp_tx, resp_rx) = std::sync::mpsc::channel();
    let job = Job {
        doc,
        enqueued: Instant::now(),
        deadline,
        resp: resp_tx,
    };
    match ctx.req_tx.try_send(job) {
        Ok(()) => {
            ctx.metrics.note_enqueued();
            Ok(resp_rx)
        }
        Err(TrySendError::Full(_)) => {
            ctx.metrics.note_queue_rejected();
            ctx.metrics.note_error();
            let retry_after = ctx.retry_after_seconds();
            write_error_with_headers(
                stream,
                429,
                "request queue is full, retry later",
                &[("Retry-After", retry_after.to_string())],
            );
            Err(())
        }
        Err(TrySendError::Disconnected(_)) => {
            ctx.metrics.note_error();
            write_error(stream, 503, "request queue is closed");
            Err(())
        }
    }
}

/// Wait for one job's result and translate it onto the wire. The wait is
/// bounded by the job's own deadline, so a handler never outlives the
/// window in which the pipeline may still answer it.
enum Reply {
    Ok(resuformer::pipeline::ParsedResume),
    /// `(status, message)` — the error has NOT been written yet.
    Err(u16, String),
}

fn await_result(rx: &std::sync::mpsc::Receiver<JobResult>, deadline: Instant) -> Reply {
    let remaining = deadline.saturating_duration_since(Instant::now());
    match rx.recv_timeout(remaining) {
        Ok(Ok(parsed)) => Reply::Ok(parsed),
        Ok(Err(JobError::Expired)) => {
            Reply::Err(504, "request deadline exceeded before parse".to_string())
        }
        Ok(Err(JobError::Failed(e))) => Reply::Err(500, e),
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            Reply::Err(504, "request deadline exceeded".to_string())
        }
        // The response sender was dropped without an answer: the worker
        // holding this job died. Distinct from a deadline expiry.
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            Reply::Err(500, "worker failed".to_string())
        }
    }
}

fn handle_parse(mut stream: TcpStream, request: &Request, ctx: &HandlerCtx) {
    if ctx.shutdown.load(Ordering::Relaxed) {
        ctx.metrics.note_error();
        write_error(&mut stream, 503, "server is shutting down");
        return;
    }
    let doc: Document = match serde_json::from_slice(&request.body) {
        Ok(d) => d,
        Err(e) => {
            ctx.metrics.note_error();
            write_error(&mut stream, 400, &format!("invalid document JSON: {e}"));
            return;
        }
    };
    if let Err(e) = check_document(&doc) {
        ctx.metrics.note_error();
        write_error(&mut stream, 400, &e);
        return;
    }
    let deadline = Instant::now() + ctx.request_timeout;
    let Ok(resp_rx) = try_enqueue(&mut stream, ctx, doc, deadline) else {
        return;
    };
    match await_result(&resp_rx, deadline) {
        Reply::Ok(parsed) => {
            resuformer_telemetry::span::time("serve.serialize", || {
                write_json(&mut stream, 200, &parsed)
            });
        }
        Reply::Err(status, msg) => {
            ctx.metrics.note_error();
            write_error(&mut stream, status, &msg);
        }
    }
}

fn handle_parse_batch(mut stream: TcpStream, request: &Request, ctx: &HandlerCtx) {
    if ctx.shutdown.load(Ordering::Relaxed) {
        ctx.metrics.note_error();
        write_error(&mut stream, 503, "server is shutting down");
        return;
    }
    let docs: Vec<Document> = match serde_json::from_slice(&request.body) {
        Ok(d) => d,
        Err(e) => {
            ctx.metrics.note_error();
            write_error(
                &mut stream,
                400,
                &format!("invalid document array JSON: {e}"),
            );
            return;
        }
    };
    if docs.is_empty() {
        ctx.metrics.note_error();
        write_error(&mut stream, 400, "empty document array");
        return;
    }
    if let Some(e) = docs.iter().find_map(|d| check_document(d).err()) {
        ctx.metrics.note_error();
        write_error(&mut stream, 400, &e);
        return;
    }
    // One deadline for the whole batch request: every document shares it.
    let deadline = Instant::now() + ctx.request_timeout;
    let mut receivers = Vec::with_capacity(docs.len());
    for doc in docs {
        match try_enqueue(&mut stream, ctx, doc, deadline) {
            Ok(rx) => receivers.push(rx),
            Err(()) => {
                // The rejection (429/503) is on the wire; walk away from
                // the documents already enqueued — their results will go
                // unread (the metric keeps the divergence observable).
                abandon(ctx, receivers);
                return;
            }
        }
    }
    let mut parsed = Vec::with_capacity(receivers.len());
    let mut pending = receivers.into_iter();
    for rx in pending.by_ref() {
        match await_result(&rx, deadline) {
            Reply::Ok(p) => parsed.push(p),
            Reply::Err(status, msg) => {
                ctx.metrics.note_error();
                write_error(&mut stream, status, &msg);
                // Don't leak the rest of the batch: drain whatever is
                // already there and walk away from the remainder so
                // workers aren't parsing for a closed connection longer
                // than they must.
                abandon(ctx, pending.collect());
                return;
            }
        }
    }
    resuformer_telemetry::span::time("serve.serialize", || write_json(&mut stream, 200, &parsed));
}

/// Walk away from in-flight batch members after the request already
/// failed: consume anything already answered (non-blocking) and count the
/// rest so `requests_enqueued`-vs-`answered` divergence stays observable.
fn abandon(ctx: &HandlerCtx, receivers: Vec<std::sync::mpsc::Receiver<JobResult>>) {
    let mut abandoned = 0u64;
    for rx in receivers {
        // One non-blocking poll: a completed result is consumed, a
        // pending one is abandoned (its worker send will just fail).
        if rx.try_recv().is_err() {
            abandoned += 1;
        }
    }
    if abandoned > 0 {
        ctx.metrics.note_responses_abandoned(abandoned);
    }
}
