//! The model registry: loads and validates a saved model bundle once at
//! startup, then builds the single warm parser the worker pool shares.
//!
//! The autograd graph underneath the models is `Arc`-based (`Send + Sync`),
//! so one loaded parser serves every worker thread — the server builds it
//! once via [`ModelRegistry::build_parser`] and hands out `Arc` clones.
//! The registry keeps the raw file bytes alongside the metadata so callers
//! can rebuild additional replicas (tests, A/B comparisons) if they want.

use resuformer::model_io;
use resuformer::pipeline::ResumeParser;
use serde::Serialize;

/// What `/healthz` reports about the loaded model.
#[derive(Clone, Debug, Serialize)]
pub struct ModelInfo {
    /// File the model was loaded from.
    pub path: String,
    /// WordPiece vocabulary size.
    pub vocab_size: usize,
    /// Encoder width.
    pub hidden: usize,
    /// Document-length cap (sentences).
    pub max_doc_sentences: usize,
    /// Whether a trained NER stage is bundled; if not, entity extraction
    /// falls back to the dictionary/matcher rules.
    pub has_ner: bool,
}

/// Validated model bytes + metadata, shared across the worker pool.
pub struct ModelRegistry {
    bytes: Vec<u8>,
    /// Descriptive metadata for `/healthz` and logs.
    pub info: ModelInfo,
}

impl ModelRegistry {
    /// Read and validate a model file. Validation actually constructs the
    /// full bundle once, so a corrupt file fails here — at startup — and
    /// not inside a worker thread.
    pub fn load(path: &str) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        ModelRegistry::from_bytes(bytes, path)
    }

    /// Build a registry straight from in-memory bytes (tests, embedding).
    pub fn from_bytes(bytes: Vec<u8>, path: &str) -> Result<Self, String> {
        let bundle = model_io::load_bundle_bytes(&bytes)?;
        let info = ModelInfo {
            path: path.to_string(),
            vocab_size: bundle.wordpiece.vocab.len(),
            hidden: bundle.config.hidden,
            max_doc_sentences: bundle.config.max_doc_sentences,
            has_ner: bundle.ner.is_some(),
        };
        Ok(ModelRegistry { bytes, info })
    }

    /// Build a warm parser from the validated bytes. The server calls this
    /// once and shares the result across the worker pool behind an `Arc`.
    pub fn build_parser(&self) -> Result<ResumeParser, String> {
        Ok(model_io::load_bundle_bytes(&self.bytes)?.into_parser())
    }
}
