//! The model registry: loads and validates a saved model bundle once at
//! startup, then stamps out one warm parser per worker thread.
//!
//! The autograd graph underneath the models is `Rc`-based and therefore
//! neither `Send` nor `Sync`, so a loaded parser cannot cross threads.
//! The registry holds only the raw file bytes (plain `Vec<u8>`, freely
//! shareable behind an `Arc`) and rebuilds a parser inside each worker —
//! paying the load cost once per worker at startup, never per request.

use resuformer::model_io;
use resuformer::pipeline::ResumeParser;
use serde::Serialize;

/// What `/healthz` reports about the loaded model.
#[derive(Clone, Debug, Serialize)]
pub struct ModelInfo {
    /// File the model was loaded from.
    pub path: String,
    /// WordPiece vocabulary size.
    pub vocab_size: usize,
    /// Encoder width.
    pub hidden: usize,
    /// Document-length cap (sentences).
    pub max_doc_sentences: usize,
    /// Whether a trained NER stage is bundled; if not, entity extraction
    /// falls back to the dictionary/matcher rules.
    pub has_ner: bool,
}

/// Validated model bytes + metadata, shared across the worker pool.
pub struct ModelRegistry {
    bytes: Vec<u8>,
    /// Descriptive metadata for `/healthz` and logs.
    pub info: ModelInfo,
}

impl ModelRegistry {
    /// Read and validate a model file. Validation actually constructs the
    /// full bundle once, so a corrupt file fails here — at startup — and
    /// not inside a worker thread.
    pub fn load(path: &str) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        ModelRegistry::from_bytes(bytes, path)
    }

    /// Build a registry straight from in-memory bytes (tests, embedding).
    pub fn from_bytes(bytes: Vec<u8>, path: &str) -> Result<Self, String> {
        let bundle = model_io::load_bundle_bytes(&bytes)?;
        let info = ModelInfo {
            path: path.to_string(),
            vocab_size: bundle.wordpiece.vocab.len(),
            hidden: bundle.config.hidden,
            max_doc_sentences: bundle.config.max_doc_sentences,
            has_ner: bundle.ner.is_some(),
        };
        Ok(ModelRegistry { bytes, info })
    }

    /// Rebuild a warm parser replica (called once per worker thread).
    pub fn build_parser(&self) -> Result<ResumeParser, String> {
        Ok(model_io::load_bundle_bytes(&self.bytes)?.into_parser())
    }
}
