//! Load generator for the ResuFormer inference server.
//!
//! Generates synthetic resumes, fires them at `/parse` from a pool of
//! concurrent client threads, and reports throughput, client-side latency
//! percentiles, and the server's own `/metrics` snapshot.
//!
//! ```bash
//! cargo run --release -p resuformer-serve --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --requests 200 --concurrency 8
//! ```
//!
//! Exits nonzero if any request fails — the acceptance gate for the
//! serving stack is "zero errors under concurrency, mean batch size > 1".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer_datagen::{generate_resume, GeneratorConfig};
use resuformer_eval::Stopwatch;
use resuformer_serve::client::http_request;
use resuformer_serve::MetricsSnapshot;

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    docs: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        requests: 200,
        concurrency: 8,
        docs: 16,
        seed: 7,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--addr" => args.addr = value.clone(),
            "--requests" => {
                args.requests = value
                    .parse()
                    .map_err(|_| format!("bad --requests: {value}"))?
            }
            "--concurrency" => {
                args.concurrency = value
                    .parse()
                    .map_err(|_| format!("bad --concurrency: {value}"))?
            }
            "--docs" => args.docs = value.parse().map_err(|_| format!("bad --docs: {value}"))?,
            "--seed" => args.seed = value.parse().map_err(|_| format!("bad --seed: {value}"))?,
            _ => return Err(format!("unknown flag: {flag}")),
        }
        i += 2;
    }
    if args.requests == 0 || args.concurrency == 0 || args.docs == 0 {
        return Err("--requests, --concurrency, and --docs must be positive".to_string());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--requests N] [--concurrency N] [--docs N] [--seed N]"
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            std::process::exit(if e.is_empty() { 0 } else { 2 });
        }
    };

    // Pre-serialize the request bodies so the hot loop measures the
    // server, not the generator.
    println!(
        "Generating {} synthetic resumes (seed {})...",
        args.docs, args.seed
    );
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let config = GeneratorConfig::smoke();
    let bodies: Arc<Vec<Vec<u8>>> = Arc::new(
        (0..args.docs)
            .map(|_| {
                let resume = generate_resume(&mut rng, &config);
                serde_json::to_vec(&resume.doc).expect("document serializes")
            })
            .collect(),
    );

    println!(
        "Firing {} requests at {} with concurrency {}...",
        args.requests, args.addr, args.concurrency
    );
    let next = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let timeout = Duration::from_secs(60);
    let mut handles = Vec::new();
    for _ in 0..args.concurrency {
        let next = next.clone();
        let errors = errors.clone();
        let bodies = bodies.clone();
        let addr = args.addr.clone();
        let total = args.requests;
        handles.push(std::thread::spawn(move || {
            let mut sw = Stopwatch::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let body = &bodies[i % bodies.len()];
                let t0 = Instant::now();
                match http_request(&addr, "POST", "/parse", body, timeout) {
                    Ok(resp) if resp.status == 200 => {
                        // A response only counts if it is a well-formed
                        // parse, not just a 200.
                        match serde_json::from_slice::<serde_json::Value>(&resp.body) {
                            Ok(v) if v.get("blocks").is_some() => {
                                sw.record(t0.elapsed().as_secs_f64());
                            }
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                eprintln!("request {i}: 200 but malformed parse body");
                            }
                        }
                    }
                    Ok(resp) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "request {i}: status {} ({})",
                            resp.status,
                            String::from_utf8_lossy(&resp.body)
                        );
                    }
                    Err(e) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("request {i}: {e}");
                    }
                }
            }
            sw
        }));
    }

    let mut latency = Stopwatch::new();
    for h in handles {
        if let Ok(sw) = h.join() {
            latency.merge(&sw);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let failed = errors.load(Ordering::Relaxed);
    let ok = args.requests - failed.min(args.requests);

    println!("\n=== loadgen report ===");
    println!("requests    : {} ok, {} failed", ok, failed);
    println!(
        "wall time   : {elapsed:.2}s  ({:.1} req/s)",
        args.requests as f64 / elapsed
    );
    println!(
        "latency ms  : mean {:.1} | p50 {:.1} | p95 {:.1} | p99 {:.1}",
        latency.mean_seconds() * 1e3,
        latency.p50_seconds() * 1e3,
        latency.p95_seconds() * 1e3,
        latency.p99_seconds() * 1e3,
    );

    match resuformer_serve::client::get_json::<MetricsSnapshot>(&args.addr, "/metrics", timeout) {
        Ok(m) => {
            println!(
                "server      : {} requests in {} batches (mean batch size {:.2}), {} errors",
                m.requests, m.batches, m.mean_batch_size, m.errors
            );
            println!(
                "server ms   : request p50 {:.1} / p95 {:.1} / p99 {:.1} | batch p50 {:.1}",
                m.request_latency_ms.p50,
                m.request_latency_ms.p95,
                m.request_latency_ms.p99,
                m.batch_latency_ms.p50,
            );
        }
        Err(e) => eprintln!("fetching /metrics failed: {e}"),
    }

    if failed > 0 {
        std::process::exit(1);
    }
}
