//! Load generator for the ResuFormer inference server.
//!
//! Generates synthetic resumes and fires them at the server from a pool
//! of concurrent client threads, reporting throughput, client-side
//! latency percentiles, and the server's own `/metrics` snapshot.
//!
//! ```bash
//! # Fixed mode: N requests as fast as the pool can push them.
//! cargo run --release -p resuformer-serve --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --requests 200 --concurrency 8
//!
//! # Ramp mode: step offered load from 5 to 50 req/s in 4 steps,
//! # printing a per-step latency row (find the knee of the curve).
//! cargo run --release -p resuformer-serve --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --ramp 5:50:4 --step-seconds 5
//!
//! # Client-side batching: POST /parse_batch with 4 documents per call.
//! cargo run --release -p resuformer-serve --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --endpoint parse_batch --batch-size 4
//! ```
//!
//! ```bash
//! # Chaos mode: mix malformed, empty, and oversized requests in with the
//! # real ones and tally every status instead of failing on non-200s —
//! # for driving a server with armed failpoints (RESUFORMER_FAILPOINTS).
//! cargo run --release -p resuformer-serve --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --requests 200 --chaos
//! ```
//!
//! Exits nonzero if any request fails — the acceptance gate for the
//! serving stack is "zero errors under concurrency, mean batch size > 1".
//! In `--chaos` mode a degraded status (400/429/500/503/504) is an
//! expected, tallied outcome; only a transport error (dropped connection,
//! no response) or a malformed 200 fails the run — the gate becomes
//! "every request gets a well-formed terminal answer".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer_datagen::{generate_resume, GeneratorConfig};
use resuformer_eval::Stopwatch;
use resuformer_serve::client::http_request;
use resuformer_serve::MetricsSnapshot;

#[derive(Clone, Copy, PartialEq)]
enum Endpoint {
    Parse,
    ParseBatch,
}

impl Endpoint {
    fn path(self) -> &'static str {
        match self {
            Endpoint::Parse => "/parse",
            Endpoint::ParseBatch => "/parse_batch",
        }
    }
}

/// `--ramp LOW:TARGET:STEPS` — step the offered request rate from `low`
/// to `target` req/s across `steps` equal increments.
#[derive(Clone, Copy)]
struct Ramp {
    low: f64,
    target: f64,
    steps: usize,
}

impl Ramp {
    fn parse(s: &str) -> Result<Ramp, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [low, target, steps] = parts.as_slice() else {
            return Err(format!("bad --ramp {s:?}: expected LOW:TARGET:STEPS"));
        };
        let ramp = Ramp {
            low: low.parse().map_err(|_| format!("bad ramp low: {low}"))?,
            target: target
                .parse()
                .map_err(|_| format!("bad ramp target: {target}"))?,
            steps: steps
                .parse()
                .map_err(|_| format!("bad ramp steps: {steps}"))?,
        };
        if ramp.low <= 0.0 || ramp.target < ramp.low || ramp.steps == 0 {
            return Err("--ramp needs 0 < LOW <= TARGET and STEPS >= 1".to_string());
        }
        Ok(ramp)
    }

    /// Offered req/s for step `i` (0-based), linearly interpolated.
    fn rate(&self, i: usize) -> f64 {
        if self.steps == 1 {
            self.target
        } else {
            self.low + (self.target - self.low) * i as f64 / (self.steps - 1) as f64
        }
    }
}

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    docs: usize,
    seed: u64,
    endpoint: Endpoint,
    batch_size: usize,
    ramp: Option<Ramp>,
    step_seconds: f64,
    chaos: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        requests: 200,
        concurrency: 8,
        docs: 16,
        seed: 7,
        endpoint: Endpoint::Parse,
        batch_size: 4,
        ramp: None,
        step_seconds: 5.0,
        chaos: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        if flag == "--chaos" {
            args.chaos = true;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--addr" => args.addr = value.clone(),
            "--requests" => {
                args.requests = value
                    .parse()
                    .map_err(|_| format!("bad --requests: {value}"))?
            }
            "--concurrency" => {
                args.concurrency = value
                    .parse()
                    .map_err(|_| format!("bad --concurrency: {value}"))?
            }
            "--docs" => args.docs = value.parse().map_err(|_| format!("bad --docs: {value}"))?,
            "--seed" => args.seed = value.parse().map_err(|_| format!("bad --seed: {value}"))?,
            "--endpoint" => {
                args.endpoint = match value.as_str() {
                    "parse" => Endpoint::Parse,
                    "parse_batch" => Endpoint::ParseBatch,
                    other => return Err(format!("unknown endpoint {other} (parse|parse_batch)")),
                }
            }
            "--batch-size" => {
                args.batch_size = value
                    .parse()
                    .map_err(|_| format!("bad --batch-size: {value}"))?
            }
            "--ramp" => args.ramp = Some(Ramp::parse(value)?),
            "--step-seconds" => {
                args.step_seconds = value
                    .parse()
                    .map_err(|_| format!("bad --step-seconds: {value}"))?
            }
            _ => return Err(format!("unknown flag: {flag}")),
        }
        i += 2;
    }
    if args.requests == 0 || args.concurrency == 0 || args.docs == 0 || args.batch_size == 0 {
        return Err(
            "--requests, --concurrency, --docs, and --batch-size must be positive".to_string(),
        );
    }
    if args.step_seconds <= 0.0 {
        return Err("--step-seconds must be positive".to_string());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--requests N] [--concurrency N] [--docs N] [--seed N]
               [--endpoint parse|parse_batch] [--batch-size N]
               [--ramp LOW:TARGET:STEPS] [--step-seconds S] [--chaos]"
    );
}

/// Pre-serialized request bodies plus how many documents each carries and
/// how to validate the response.
struct Workload {
    bodies: Vec<Vec<u8>>,
    endpoint: Endpoint,
    docs_per_request: usize,
}

impl Workload {
    fn build(args: &Args) -> Workload {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let config = GeneratorConfig::smoke();
        let docs: Vec<resuformer_doc::Document> = (0..args.docs)
            .map(|_| generate_resume(&mut rng, &config).doc)
            .collect();
        match args.endpoint {
            Endpoint::Parse => Workload {
                bodies: docs
                    .iter()
                    .map(|d| serde_json::to_vec(d).expect("document serializes"))
                    .collect(),
                endpoint: Endpoint::Parse,
                docs_per_request: 1,
            },
            Endpoint::ParseBatch => {
                // Rotate through the corpus so consecutive batch bodies
                // differ, like distinct clients batching their own docs.
                let bodies = (0..docs.len())
                    .map(|start| {
                        let group: Vec<&resuformer_doc::Document> = (0..args.batch_size)
                            .map(|k| &docs[(start + k) % docs.len()])
                            .collect();
                        serde_json::to_vec(&group).expect("document array serializes")
                    })
                    .collect();
                Workload {
                    bodies,
                    endpoint: Endpoint::ParseBatch,
                    docs_per_request: args.batch_size,
                }
            }
        }
    }

    /// Fire request `i`; returns client-side seconds on a valid response.
    fn fire(&self, addr: &str, i: usize, timeout: Duration) -> Result<f64, String> {
        let body = &self.bodies[i % self.bodies.len()];
        let t0 = Instant::now();
        let resp = http_request(addr, "POST", self.endpoint.path(), body, timeout)?;
        if resp.status != 200 {
            return Err(format!(
                "status {} ({})",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            ));
        }
        // A response only counts if it is a well-formed parse, not just a
        // 200 — and batch responses must echo one parse per document.
        let v: serde_json::Value =
            serde_json::from_slice(&resp.body).map_err(|e| format!("malformed body: {e}"))?;
        let valid = match self.endpoint {
            Endpoint::Parse => v.get("blocks").is_some(),
            Endpoint::ParseBatch => v
                .as_array()
                .is_some_and(|a| a.len() == self.docs_per_request),
        };
        if !valid {
            return Err("200 but malformed parse body".to_string());
        }
        Ok(t0.elapsed().as_secs_f64())
    }
}

/// The chaos workload: mostly real documents, salted with requests a
/// robust server must reject cleanly — invalid JSON, an empty document,
/// and a body over the size cap. Every 8th-index slot cycles through the
/// three bad kinds; the other five are normal.
struct ChaosWorkload {
    normal: Workload,
    invalid_json: Vec<u8>,
    empty_doc: Vec<u8>,
    oversized: Vec<u8>,
}

impl ChaosWorkload {
    fn build(args: &Args) -> ChaosWorkload {
        ChaosWorkload {
            normal: Workload::build(args),
            invalid_json: b"{definitely not json".to_vec(),
            empty_doc: br#"{"tokens":[],"pages":[]}"#.to_vec(),
            oversized: vec![b'x'; resuformer_serve::http::MAX_BODY_BYTES + 1],
        }
    }

    /// Fire request `i` and return its status. `Err` means the request
    /// got no well-formed terminal answer: a transport failure, or a 200
    /// whose body is not a valid parse (or that a bad input should never
    /// have received).
    fn fire(&self, addr: &str, i: usize, timeout: Duration) -> Result<u16, String> {
        let (body, is_normal): (&[u8], bool) = match i % 8 {
            5 => (&self.invalid_json, false),
            6 => (&self.empty_doc, false),
            7 => (&self.oversized, false),
            _ => (&self.normal.bodies[i % self.normal.bodies.len()], true),
        };
        let resp = http_request(addr, "POST", self.normal.endpoint.path(), body, timeout)?;
        if resp.status == 200 {
            if !is_normal {
                return Err("bad input got a 200".to_string());
            }
            let v: serde_json::Value =
                serde_json::from_slice(&resp.body).map_err(|e| format!("malformed body: {e}"))?;
            let valid = match self.normal.endpoint {
                Endpoint::Parse => v.get("blocks").is_some(),
                Endpoint::ParseBatch => v
                    .as_array()
                    .is_some_and(|a| a.len() == self.normal.docs_per_request),
            };
            if !valid {
                return Err("200 but malformed parse body".to_string());
            }
        }
        Ok(resp.status)
    }
}

/// Per-status tallies from one chaos stage. Degraded statuses are
/// outcomes to report, not failures; `failed` counts requests that never
/// got a well-formed terminal answer.
#[derive(Default)]
struct Tally {
    n200: AtomicUsize,
    n400: AtomicUsize,
    n429: AtomicUsize,
    n500: AtomicUsize,
    n503: AtomicUsize,
    n504: AtomicUsize,
    other: AtomicUsize,
    failed: AtomicUsize,
}

impl Tally {
    fn note(&self, status: u16) {
        let slot = match status {
            200 => &self.n200,
            400 => &self.n400,
            429 => &self.n429,
            500 => &self.n500,
            503 => &self.n503,
            504 => &self.n504,
            _ => &self.other,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    fn get(&self, slot: &AtomicUsize) -> usize {
        slot.load(Ordering::Relaxed)
    }
}

/// Chaos twin of [`run_pool`]: same closed-loop pool and pacing, but
/// statuses are tallied instead of judged.
fn run_chaos_pool(
    workload: &Arc<ChaosWorkload>,
    addr: &str,
    total: usize,
    concurrency: usize,
    pace: Option<f64>,
    timeout: Duration,
) -> Arc<Tally> {
    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Tally::default());
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..concurrency {
        let next = next.clone();
        let tally = tally.clone();
        let workload = workload.clone();
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                break;
            }
            if let Some(rps) = pace {
                let due = started + Duration::from_secs_f64(i as f64 / rps);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
            }
            match workload.fire(&addr, i, timeout) {
                Ok(status) => tally.note(status),
                Err(e) => {
                    tally.failed.fetch_add(1, Ordering::Relaxed);
                    eprintln!("request {i}: {e}");
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    tally
}

/// Run `total` requests through a closed-loop thread pool. When `pace` is
/// set, each request is held until its scheduled offered-load slot.
fn run_pool(
    workload: &Arc<Workload>,
    addr: &str,
    total: usize,
    concurrency: usize,
    pace: Option<f64>,
    timeout: Duration,
) -> (Stopwatch, usize) {
    let next = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..concurrency {
        let next = next.clone();
        let errors = errors.clone();
        let workload = workload.clone();
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            let mut sw = Stopwatch::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                if let Some(rps) = pace {
                    // Open-loop pacing: request i is offered at i/rps.
                    let due = started + Duration::from_secs_f64(i as f64 / rps);
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                }
                match workload.fire(&addr, i, timeout) {
                    Ok(seconds) => sw.record(seconds),
                    Err(e) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("request {i}: {e}");
                    }
                }
            }
            sw
        }));
    }
    let mut latency = Stopwatch::new();
    for h in handles {
        if let Ok(sw) = h.join() {
            latency.merge(&sw);
        }
    }
    (latency, errors.load(Ordering::Relaxed))
}

fn print_server_metrics(addr: &str, timeout: Duration) {
    match resuformer_serve::client::get_json::<MetricsSnapshot>(addr, "/metrics", timeout) {
        Ok(m) => {
            println!(
                "server      : {} requests in {} batches (mean batch size {:.2}), {} errors",
                m.requests, m.batches, m.mean_batch_size, m.errors
            );
            println!(
                "server ms   : request p50 {:.1} / p95 {:.1} / p99 {:.1} | batch p50 {:.1}",
                m.request_latency_ms.p50,
                m.request_latency_ms.p95,
                m.request_latency_ms.p99,
                m.batch_latency_ms.p50,
            );
        }
        Err(e) => eprintln!("fetching /metrics failed: {e}"),
    }
}

/// The server-side fault-tolerance counters — the interesting numbers
/// when failpoints are armed or the queue bound is being hit.
fn print_fault_metrics(addr: &str, timeout: Duration) {
    match resuformer_serve::client::get_json::<MetricsSnapshot>(addr, "/metrics", timeout) {
        Ok(m) => {
            println!(
                "server fault: {} rejected (429), {} expired (504), {} worker panics, \
                 {} docs poisoned, {} abandoned, {} restarts, {} workers alive",
                m.queue_rejected,
                m.jobs_expired,
                m.worker_panics,
                m.docs_poisoned,
                m.responses_abandoned,
                m.worker_restarts,
                m.workers_alive
            );
        }
        Err(e) => eprintln!("fetching /metrics failed: {e}"),
    }
}

/// Chaos mode: fire the mixed workload (paced per ramp step when `--ramp`
/// is given) and report a status-tally row per stage. Returns the number
/// of requests that never got a well-formed terminal answer.
fn run_chaos(args: &Args, timeout: Duration) -> usize {
    let workload = Arc::new(ChaosWorkload::build(args));
    println!(
        "Chaos mode: {} with invalid/empty/oversized requests mixed in (3 of every 8)",
        workload.normal.endpoint.path()
    );
    println!(
        "\n{:>4} | {:>9} | {:>6} | {:>6} | {:>6} | {:>6} | {:>6} | {:>6} | {:>6}",
        "step", "offered/s", "200", "400", "429", "500", "503/4", "other", "fail"
    );
    println!("{}", "-".repeat(78));
    let mut failed = 0usize;
    let steps: Vec<(usize, Option<f64>, usize)> = match args.ramp {
        Some(ramp) => (0..ramp.steps)
            .map(|step| {
                let rps = ramp.rate(step);
                let total = ((rps * args.step_seconds).ceil() as usize).max(1);
                (step, Some(rps), total)
            })
            .collect(),
        None => vec![(0, None, args.requests)],
    };
    for (step, pace, total) in steps {
        let tally = run_chaos_pool(
            &workload,
            &args.addr,
            total,
            args.concurrency,
            pace,
            timeout,
        );
        failed += tally.get(&tally.failed);
        println!(
            "{:>4} | {:>9} | {:>6} | {:>6} | {:>6} | {:>6} | {:>6} | {:>6} | {:>6}",
            step,
            pace.map(|r| format!("{r:.1}"))
                .unwrap_or_else(|| "max".to_string()),
            tally.get(&tally.n200),
            tally.get(&tally.n400),
            tally.get(&tally.n429),
            tally.get(&tally.n500),
            tally.get(&tally.n503) + tally.get(&tally.n504),
            tally.get(&tally.other),
            tally.get(&tally.failed),
        );
    }
    println!();
    print_server_metrics(&args.addr, timeout);
    print_fault_metrics(&args.addr, timeout);
    failed
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            std::process::exit(if e.is_empty() { 0 } else { 2 });
        }
    };

    // Pre-serialize the request bodies so the hot loop measures the
    // server, not the generator.
    println!(
        "Generating {} synthetic resumes (seed {})...",
        args.docs, args.seed
    );
    let timeout = Duration::from_secs(60);

    if args.chaos {
        let failed = run_chaos(&args, timeout);
        if failed > 0 {
            std::process::exit(1);
        }
        return;
    }

    let workload = Arc::new(Workload::build(&args));

    let total_failed = if let Some(ramp) = args.ramp {
        // Ramp mode: one paced stage per step, a latency row each.
        println!(
            "Ramping {} from {:.1} to {:.1} req/s in {} steps of {:.1}s (concurrency {})...",
            workload.endpoint.path(),
            ramp.low,
            ramp.target,
            ramp.steps,
            args.step_seconds,
            args.concurrency
        );
        println!(
            "\n{:>4} | {:>9} | {:>9} | {:>6} | {:>6} | {:>8} | {:>8} | {:>8}",
            "step", "offered/s", "actual/s", "ok", "fail", "p50 ms", "p95 ms", "p99 ms"
        );
        println!("{}", "-".repeat(78));
        let mut failed = 0usize;
        for step in 0..ramp.steps {
            let rps = ramp.rate(step);
            let total = ((rps * args.step_seconds).ceil() as usize).max(1);
            let t0 = Instant::now();
            let (latency, errs) = run_pool(
                &workload,
                &args.addr,
                total,
                args.concurrency,
                Some(rps),
                timeout,
            );
            let elapsed = t0.elapsed().as_secs_f64();
            failed += errs;
            println!(
                "{:>4} | {:>9.1} | {:>9.1} | {:>6} | {:>6} | {:>8.1} | {:>8.1} | {:>8.1}",
                step,
                rps,
                total as f64 / elapsed.max(1e-9),
                total - errs.min(total),
                errs,
                latency.p50_seconds() * 1e3,
                latency.p95_seconds() * 1e3,
                latency.p99_seconds() * 1e3,
            );
        }
        println!();
        print_server_metrics(&args.addr, timeout);
        failed
    } else {
        // Fixed mode: N requests as fast as the pool can push them.
        println!(
            "Firing {} {} requests at {} with concurrency {}...",
            args.requests,
            workload.endpoint.path(),
            args.addr,
            args.concurrency
        );
        let started = Instant::now();
        let (latency, failed) = run_pool(
            &workload,
            &args.addr,
            args.requests,
            args.concurrency,
            None,
            timeout,
        );
        let elapsed = started.elapsed().as_secs_f64();
        let ok = args.requests - failed.min(args.requests);

        println!("\n=== loadgen report ===");
        println!("requests    : {} ok, {} failed", ok, failed);
        if workload.docs_per_request > 1 {
            println!(
                "documents   : {} ({} per request)",
                ok * workload.docs_per_request,
                workload.docs_per_request
            );
        }
        println!(
            "wall time   : {elapsed:.2}s  ({:.1} req/s)",
            args.requests as f64 / elapsed
        );
        println!(
            "latency ms  : mean {:.1} | p50 {:.1} | p95 {:.1} | p99 {:.1}",
            latency.mean_seconds() * 1e3,
            latency.p50_seconds() * 1e3,
            latency.p95_seconds() * 1e3,
            latency.p99_seconds() * 1e3,
        );
        print_server_metrics(&args.addr, timeout);
        failed
    };

    if total_failed > 0 {
        std::process::exit(1);
    }
}
