//! Serving observability: lock-free counters + latency distributions,
//! exported as the `/metrics` JSON document.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use resuformer_eval::Stopwatch;
use serde::{Deserialize, Serialize};

/// Latency distribution summary in milliseconds.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencyMs {
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl LatencyMs {
    fn from_stopwatch(sw: &Stopwatch) -> Self {
        LatencyMs {
            mean: sw.mean_seconds() * 1e3,
            p50: sw.p50_seconds() * 1e3,
            p95: sw.p95_seconds() * 1e3,
            p99: sw.p99_seconds() * 1e3,
        }
    }
}

/// Point-in-time view of the server counters (the `/metrics` body).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Completed parse requests (success only).
    pub requests: u64,
    /// Failed requests (bad input, timeouts, rejected during shutdown).
    pub errors: u64,
    /// Batches executed by the worker pool.
    pub batches: u64,
    /// Documents that went through batches (`batched_docs / batches` is
    /// the mean batch size).
    pub batched_docs: u64,
    /// Mean documents per batch — > 1 means micro-batching is coalescing
    /// concurrent requests.
    pub mean_batch_size: f64,
    /// Requests currently enqueued, waiting for a batch slot.
    pub queue_depth: u64,
    /// End-to-end request latency (enqueue → parsed), milliseconds.
    pub request_latency_ms: LatencyMs,
    /// Per-batch parse latency, milliseconds.
    pub batch_latency_ms: LatencyMs,
}

/// Shared server counters. All methods take `&self`; cheap atomics on the
/// hot path, a mutex only around the latency sample vectors.
pub struct Metrics {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batched_docs: AtomicU64,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    request_latency: Mutex<Stopwatch>,
    batch_latency: Mutex<Stopwatch>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh counters, clock starting now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_docs: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            request_latency: Mutex::new(Stopwatch::new()),
            batch_latency: Mutex::new(Stopwatch::new()),
        }
    }

    /// A request entered the batching queue.
    pub fn note_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// The scheduler formed a batch of `size` queued requests.
    pub fn note_batch_formed(&self, size: usize) {
        self.dequeued.fetch_add(size as u64, Ordering::Relaxed);
    }

    /// A worker finished a batch of `size` documents in `seconds`.
    pub fn note_batch_done(&self, size: usize, seconds: f64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_docs.fetch_add(size as u64, Ordering::Relaxed);
        self.batch_latency.lock().record(seconds);
    }

    /// A request completed successfully after `seconds` end to end.
    pub fn note_request_done(&self, seconds: f64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.request_latency.lock().record(seconds);
    }

    /// A request failed (anywhere in the pipeline).
    pub fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every counter for `/metrics`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_docs = self.batched_docs.load(Ordering::Relaxed);
        let enq = self.enqueued.load(Ordering::Relaxed);
        let deq = self.dequeued.load(Ordering::Relaxed);
        MetricsSnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches,
            batched_docs,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_docs as f64 / batches as f64
            },
            queue_depth: enq.saturating_sub(deq),
            request_latency_ms: LatencyMs::from_stopwatch(&self.request_latency.lock()),
            batch_latency_ms: LatencyMs::from_stopwatch(&self.batch_latency.lock()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.note_enqueued();
        m.note_enqueued();
        m.note_enqueued();
        m.note_batch_formed(2);
        m.note_batch_done(2, 0.010);
        m.note_request_done(0.012);
        m.note_request_done(0.020);
        m.note_error();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_docs, 2);
        assert!((s.mean_batch_size - 2.0).abs() < 1e-9);
        assert_eq!(s.queue_depth, 1);
        assert!(s.request_latency_ms.mean > 0.0);
        assert!(s.batch_latency_ms.p50 > 0.0);

        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests, 2);
    }
}
