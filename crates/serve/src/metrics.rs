//! Serving observability, backed by `resuformer-telemetry`.
//!
//! This module no longer owns any counter or percentile logic: every
//! number lives in a [`resuformer_telemetry::Registry`] (counters, a
//! queue-depth gauge, and log-bucketed latency histograms), and this file
//! only maps them onto the wire formats — the original `/metrics` JSON
//! document (shape unchanged since PR 1, extended additively since) and
//! the Prometheus text exposition served at `/metrics/prometheus`.

use std::sync::Arc;
use std::time::Instant;

use resuformer_telemetry::{export, Counter, Gauge, Histogram, HistogramSummary, Registry};
use serde::{Deserialize, Serialize};

/// Latency distribution summary in milliseconds.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencyMs {
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl LatencyMs {
    fn from_summary(s: &HistogramSummary) -> Self {
        LatencyMs {
            mean: s.mean * 1e3,
            p50: s.p50 * 1e3,
            p95: s.p95 * 1e3,
            p99: s.p99 * 1e3,
        }
    }
}

/// Point-in-time view of the server counters (the `/metrics` body).
///
/// The fault-tolerance fields (`queue_rejected` onward) are additive and
/// default to zero when decoding an older snapshot.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Completed parse requests (success only).
    pub requests: u64,
    /// Failed requests (bad input, timeouts, rejected during shutdown).
    pub errors: u64,
    /// Batches executed by the worker pool.
    pub batches: u64,
    /// Documents that went through batches (`batched_docs / batches` is
    /// the mean batch size).
    pub batched_docs: u64,
    /// Mean documents per batch — > 1 means micro-batching is coalescing
    /// concurrent requests.
    pub mean_batch_size: f64,
    /// Requests currently enqueued, waiting for a batch slot.
    pub queue_depth: u64,
    /// Requests answered 429 because the bounded queue was full.
    #[serde(default)]
    pub queue_rejected: u64,
    /// Jobs shed (by the scheduler or a worker) after their deadline.
    #[serde(default)]
    pub jobs_expired: u64,
    /// Worker panics caught while parsing a batch (the batch is retried
    /// one document at a time).
    #[serde(default)]
    pub worker_panics: u64,
    /// Documents that panicked the parser even on individual retry; their
    /// requests got a 500, everyone else in the batch succeeded.
    #[serde(default)]
    pub docs_poisoned: u64,
    /// Batch-endpoint responses abandoned after an earlier document in
    /// the same request failed (their parses may still complete, unread).
    #[serde(default)]
    pub responses_abandoned: u64,
    /// Crashed worker threads respawned by the supervisor.
    #[serde(default)]
    pub worker_restarts: u64,
    /// Worker threads currently alive (the pool is at full strength when
    /// this equals the configured worker count).
    #[serde(default)]
    pub workers_alive: u64,
    /// End-to-end request latency (enqueue → parsed), milliseconds.
    pub request_latency_ms: LatencyMs,
    /// Per-batch parse latency, milliseconds.
    pub batch_latency_ms: LatencyMs,
}

/// Shared server counters. All methods take `&self`; the hot path is
/// atomics only (the histograms are lock-free log-bucketed ones).
///
/// Each server owns its own telemetry [`Registry`] so several servers in
/// one process (tests) never share counters; the registry is reachable
/// through [`Metrics::registry`] for exporters.
pub struct Metrics {
    started: Instant,
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    batches: Arc<Counter>,
    batched_docs: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_rejected: Arc<Counter>,
    jobs_expired: Arc<Counter>,
    worker_panics: Arc<Counter>,
    docs_poisoned: Arc<Counter>,
    responses_abandoned: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    workers_alive: Arc<Gauge>,
    request_latency: Arc<Histogram>,
    batch_latency: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh counters, clock starting now.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        Metrics {
            started: Instant::now(),
            requests: registry.counter("serve.requests_total"),
            errors: registry.counter("serve.errors_total"),
            batches: registry.counter("serve.batches_total"),
            batched_docs: registry.counter("serve.batched_docs_total"),
            queue_depth: registry.gauge("serve.queue_depth"),
            queue_rejected: registry.counter("serve.queue_rejected_total"),
            jobs_expired: registry.counter("serve.jobs_expired_total"),
            worker_panics: registry.counter("serve.worker_panics_total"),
            docs_poisoned: registry.counter("serve.docs_poisoned_total"),
            responses_abandoned: registry.counter("serve.responses_abandoned_total"),
            worker_restarts: registry.counter("serve.worker_restarts_total"),
            workers_alive: registry.gauge("serve.workers_alive"),
            request_latency: registry.histogram("serve.request_seconds"),
            batch_latency: registry.histogram("serve.batch_seconds"),
            queue_wait: registry.histogram("serve.queue_wait_seconds"),
            registry,
        }
    }

    /// The underlying telemetry registry (for exporters).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A request entered the batching queue.
    pub fn note_enqueued(&self) {
        self.queue_depth.add(1);
    }

    /// A request was answered 429 because the bounded queue was full.
    pub fn note_queue_rejected(&self) {
        self.queue_rejected.inc();
    }

    /// The scheduler shed a queued job whose deadline had passed.
    pub fn note_job_expired_queued(&self) {
        self.queue_depth.add(-1);
        self.jobs_expired.inc();
    }

    /// A worker shed an in-flight job (already off the queue) whose
    /// deadline had passed.
    pub fn note_job_expired_inflight(&self) {
        self.jobs_expired.inc();
    }

    /// A worker panicked while parsing a batch (caught and retried).
    pub fn note_worker_panic(&self) {
        self.worker_panics.inc();
    }

    /// A document panicked the parser even alone; its request failed.
    pub fn note_doc_poisoned(&self) {
        self.docs_poisoned.inc();
    }

    /// A batch handler walked away from `n` pending responses.
    pub fn note_responses_abandoned(&self, n: u64) {
        self.responses_abandoned.add(n);
    }

    /// The supervisor respawned a crashed worker thread.
    pub fn note_worker_restart(&self) {
        self.worker_restarts.inc();
    }

    /// A worker thread came up (startup or respawn).
    pub fn note_worker_up(&self) {
        self.workers_alive.add(1);
    }

    /// A worker thread went down (crash or drain).
    pub fn note_worker_down(&self) {
        self.workers_alive.add(-1);
    }

    /// The scheduler formed a batch of `size` queued requests.
    pub fn note_batch_formed(&self, size: usize) {
        self.queue_depth.add(-(size as i64));
    }

    /// One job waited `seconds` between enqueue and batch formation.
    pub fn note_queue_wait(&self, seconds: f64) {
        self.queue_wait.record(seconds);
    }

    /// A worker finished a batch of `size` documents in `seconds`.
    pub fn note_batch_done(&self, size: usize, seconds: f64) {
        self.batches.inc();
        self.batched_docs.add(size as u64);
        self.batch_latency.record(seconds);
    }

    /// A request completed successfully after `seconds` end to end.
    pub fn note_request_done(&self, seconds: f64) {
        self.requests.inc();
        self.request_latency.record(seconds);
    }

    /// A request failed (anywhere in the pipeline).
    pub fn note_error(&self) {
        self.errors.inc();
    }

    /// Observed mean batch service time in seconds (0.0 before the first
    /// batch) — the base of the `Retry-After` estimate on 429s.
    pub fn mean_batch_seconds(&self) -> f64 {
        let s = self.batch_latency.summary();
        if s.count == 0 {
            0.0
        } else {
            s.mean
        }
    }

    /// Snapshot every counter for `/metrics`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = self.batches.get();
        let batched_docs = self.batched_docs.get();
        MetricsSnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            requests: self.requests.get(),
            errors: self.errors.get(),
            batches,
            batched_docs,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_docs as f64 / batches as f64
            },
            queue_depth: self.queue_depth.get().max(0) as u64,
            queue_rejected: self.queue_rejected.get(),
            jobs_expired: self.jobs_expired.get(),
            worker_panics: self.worker_panics.get(),
            docs_poisoned: self.docs_poisoned.get(),
            responses_abandoned: self.responses_abandoned.get(),
            worker_restarts: self.worker_restarts.get(),
            workers_alive: self.workers_alive.get().max(0) as u64,
            request_latency_ms: LatencyMs::from_summary(&self.request_latency.summary()),
            batch_latency_ms: LatencyMs::from_summary(&self.batch_latency.summary()),
        }
    }

    /// Render every counter, gauge and histogram in the Prometheus text
    /// exposition format (the `/metrics/prometheus` body), plus an uptime
    /// gauge the JSON snapshot also reports.
    pub fn prometheus_text(&self) -> String {
        let mut out = export::prometheus(&self.registry);
        out.push_str(&format!(
            "# TYPE serve_uptime_seconds gauge\nserve_uptime_seconds {}\n",
            self.started.elapsed().as_secs_f64()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.note_enqueued();
        m.note_enqueued();
        m.note_enqueued();
        m.note_batch_formed(2);
        m.note_batch_done(2, 0.010);
        m.note_request_done(0.012);
        m.note_request_done(0.020);
        m.note_error();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_docs, 2);
        assert!((s.mean_batch_size - 2.0).abs() < 1e-9);
        assert_eq!(s.queue_depth, 1);
        assert!(s.request_latency_ms.mean > 0.0);
        assert!(s.batch_latency_ms.p50 > 0.0);

        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests, 2);
    }

    #[test]
    fn fault_counters_accumulate_and_round_trip() {
        let m = Metrics::new();
        m.note_queue_rejected();
        m.note_job_expired_queued();
        m.note_job_expired_inflight();
        m.note_worker_panic();
        m.note_doc_poisoned();
        m.note_responses_abandoned(3);
        m.note_worker_restart();
        m.note_worker_up();
        m.note_worker_up();
        m.note_worker_down();
        let s = m.snapshot();
        assert_eq!(s.queue_rejected, 1);
        assert_eq!(s.jobs_expired, 2);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.docs_poisoned, 1);
        assert_eq!(s.responses_abandoned, 3);
        assert_eq!(s.worker_restarts, 1);
        assert_eq!(s.workers_alive, 1);

        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.jobs_expired, 2);
        assert_eq!(back.workers_alive, 1);

        // A pre-fault-tolerance snapshot (no new fields) still decodes.
        let legacy: MetricsSnapshot = serde_json::from_str(
            r#"{"uptime_seconds":1.0,"requests":5,"errors":0,"batches":2,
                "batched_docs":5,"mean_batch_size":2.5,"queue_depth":0,
                "request_latency_ms":{"mean":1.0,"p50":1.0,"p95":1.0,"p99":1.0},
                "batch_latency_ms":{"mean":1.0,"p50":1.0,"p95":1.0,"p99":1.0}}"#,
        )
        .unwrap();
        assert_eq!(legacy.queue_rejected, 0);
        assert_eq!(legacy.workers_alive, 0);
    }

    #[test]
    fn mean_batch_seconds_tracks_batches() {
        let m = Metrics::new();
        assert_eq!(m.mean_batch_seconds(), 0.0, "no batches yet");
        m.note_batch_done(4, 0.100);
        m.note_batch_done(4, 0.300);
        assert!((m.mean_batch_seconds() - 0.200).abs() < 0.01);
    }

    #[test]
    fn queue_depth_clamps_at_zero() {
        // The scheduler's unit tests form batches for jobs that never went
        // through note_enqueued; the exported depth must not wrap.
        let m = Metrics::new();
        m.note_batch_formed(5);
        assert_eq!(m.snapshot().queue_depth, 0);
    }

    #[test]
    fn latency_percentiles_track_the_histogram() {
        let m = Metrics::new();
        for i in 1..=100 {
            m.note_request_done(i as f64 * 1e-3);
        }
        let s = m.snapshot();
        assert!((s.request_latency_ms.p50 - 50.0).abs() <= 2.0, "{s:?}");
        assert!((s.request_latency_ms.p99 - 99.0).abs() <= 2.5, "{s:?}");
        assert!((s.request_latency_ms.mean - 50.5).abs() <= 1.0, "{s:?}");
    }

    #[test]
    fn prometheus_text_carries_the_same_numbers() {
        let m = Metrics::new();
        m.note_request_done(0.010);
        m.note_request_done(0.030);
        m.note_error();
        m.note_queue_rejected();
        m.note_worker_up();
        let text = m.prometheus_text();
        assert!(
            text.contains("# TYPE serve_requests_total counter\nserve_requests_total 2\n"),
            "{text}"
        );
        assert!(text.contains("serve_errors_total 1\n"), "{text}");
        assert!(text.contains("serve_queue_rejected_total 1\n"), "{text}");
        assert!(text.contains("serve_workers_alive 1\n"), "{text}");
        assert!(text.contains("serve_worker_panics_total 0\n"), "{text}");
        assert!(text.contains("serve_request_seconds_count 2\n"), "{text}");
        assert!(
            text.contains("serve_request_seconds{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("serve_uptime_seconds"), "{text}");
        assert!(text.contains("# TYPE serve_queue_depth gauge"), "{text}");
    }
}
