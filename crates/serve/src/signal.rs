//! Minimal SIGINT handling without a `libc` dependency.
//!
//! The handler only flips an `AtomicBool`; the serving loop polls it and
//! runs the orderly drain-then-exit sequence from safe code. Registering
//! uses the C `signal(2)` entry point directly — the only unsafe surface
//! is the one-line FFI declaration.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::*;

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single relaxed atomic store.
        SIGINT_RECEIVED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op on non-unix targets; Ctrl-C terminates the process directly.
    pub fn install() {}
}

/// Install the SIGINT handler (idempotent).
pub fn install_sigint_handler() {
    imp::install();
}

/// Whether SIGINT has been received since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::Relaxed)
}
