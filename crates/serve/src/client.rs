//! A tiny blocking HTTP client for the load generator and tests.
//!
//! Mirrors the server's dialect: one request per connection,
//! `Content-Length` framing, no keep-alive.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Response from [`http_request`]: status code and raw body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

/// Issue one blocking HTTP request and read the full response.
///
/// `addr` is `host:port`; `timeout` bounds connect, read, and write
/// individually (not the total exchange).
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<Response, String> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr} resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();

    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body))
        .map_err(|e| format!("sending request: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("reading response: {e}"))?;

    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("malformed response: no header terminator")?;
    let head_text = String::from_utf8_lossy(&raw[..header_end]);
    let status_line = head_text.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line}"))?;
    Ok(Response {
        status,
        body: raw[header_end + 4..].to_vec(),
    })
}

/// Convenience: GET `path` and deserialize the JSON body.
pub fn get_json<T: serde::de::DeserializeOwned>(
    addr: &str,
    path: &str,
    timeout: Duration,
) -> Result<T, String> {
    let resp = http_request(addr, "GET", path, &[], timeout)?;
    if resp.status != 200 {
        return Err(format!("GET {path}: status {}", resp.status));
    }
    serde_json::from_slice(&resp.body).map_err(|e| format!("decoding {path}: {e}"))
}
