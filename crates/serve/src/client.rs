//! A tiny blocking HTTP client for the load generator and tests.
//!
//! Mirrors the server's dialect: one request per connection,
//! `Content-Length` framing, no keep-alive.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Response from [`http_request`]: status code, headers, raw body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers as `(name, value)` pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The first header named `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Issue one blocking HTTP request and read the full response.
///
/// `addr` is `host:port`; `timeout` bounds connect, read, and write
/// individually (not the total exchange).
///
/// A failed body write does not abort the exchange: the server rejects
/// oversized requests (and requests during overload) after reading only
/// the headers, so the connection may carry a complete response even
/// though our write hit a reset pipe. In that case the response wins.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<Response, String> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr} resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();

    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("sending request head: {e}"))?;
    let write_err = stream
        .write_all(body)
        .err()
        .map(|e| format!("sending request body: {e}"));

    let mut raw = Vec::new();
    if let Err(e) = stream.read_to_end(&mut raw) {
        return Err(write_err.unwrap_or_else(|| format!("reading response: {e}")));
    }
    match parse_response(&raw) {
        Ok(resp) => Ok(resp),
        // An early-rejecting server may close before reading our body; if
        // no parseable response came back either, report the write error.
        Err(parse_err) => Err(write_err.unwrap_or(parse_err)),
    }
}

/// Split a raw HTTP/1.1 byte exchange into status, headers, and body.
fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("malformed response: no header terminator")?;
    let head_text = String::from_utf8_lossy(&raw[..header_end]);
    let mut lines = head_text.lines();
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line}"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Ok(Response {
        status,
        headers,
        body: raw[header_end + 4..].to_vec(),
    })
}

/// Convenience: GET `path` and deserialize the JSON body.
pub fn get_json<T: serde::de::DeserializeOwned>(
    addr: &str,
    path: &str,
    timeout: Duration,
) -> Result<T, String> {
    let resp = http_request(addr, "GET", path, &[], timeout)?;
    if resp.status != 200 {
        return Err(format!("GET {path}: status {}", resp.status));
    }
    serde_json::from_slice(&resp.body).map_err(|e| format!("decoding {path}: {e}"))
}
