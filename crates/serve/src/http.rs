//! A deliberately minimal HTTP/1.1 implementation over `std::net`.
//!
//! The server speaks exactly the subset the API needs: one request per
//! connection (`Connection: close`), `Content-Length` bodies only (no
//! chunked encoding), and small JSON payloads. Keeping this hand-rolled
//! avoids pulling an async runtime or HTTP framework into the workspace.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on request body size (8 MiB) — a resume document is far smaller;
/// anything bigger is rejected before allocation.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed inbound request: method, path, body.
#[derive(Debug)]
pub struct Request {
    /// HTTP method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string included if present.
    pub path: String,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Read one HTTP/1.1 request off the stream. Returns a human-readable
/// error for malformed framing; the caller maps that to a 400.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line missing path")?.to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("reading header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let value = value.trim();
                content_length = value
                    .parse()
                    .map_err(|_| format!("bad content-length: {value}"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body too large: {content_length} bytes"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok(Request { method, path, body })
}

/// Write a complete response and close out the exchange.
pub fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    write_response_with_headers(stream, status, content_type, &[], body);
}

/// Write a complete response with extra headers (e.g. `Retry-After` on a
/// 429) and close out the exchange.
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    // Best effort: the client may already have hung up, and there is no
    // useful recovery from a failed write on a closing connection.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Serialize `value` and send it as a JSON response.
pub fn write_json<T: serde::Serialize>(stream: &mut TcpStream, status: u16, value: &T) {
    match serde_json::to_vec(value) {
        Ok(body) => write_response(stream, status, "application/json", &body),
        Err(e) => {
            let msg = format!("{{\"error\":\"serialization failed: {e}\"}}");
            write_response(stream, 500, "application/json", msg.as_bytes());
        }
    }
}

/// Send a JSON error body `{"error": ...}` with the given status.
pub fn write_error(stream: &mut TcpStream, status: u16, message: &str) {
    write_error_with_headers(stream, status, message, &[]);
}

/// Send a JSON error body `{"error": ...}` with extra headers.
pub fn write_error_with_headers(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    extra_headers: &[(&str, String)],
) {
    #[derive(serde::Serialize)]
    struct ErrorBody<'a> {
        error: &'a str,
    }
    match serde_json::to_vec(&ErrorBody { error: message }) {
        Ok(body) => {
            write_response_with_headers(stream, status, "application/json", extra_headers, &body)
        }
        Err(_) => write_response_with_headers(
            stream,
            status,
            "application/json",
            extra_headers,
            b"{\"error\":\"error\"}",
        ),
    }
}
