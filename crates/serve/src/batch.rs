//! The dynamic micro-batching scheduler.
//!
//! Connection handlers enqueue [`Job`]s onto a crossbeam channel; one
//! scheduler thread drains up to `max_batch` jobs or waits `max_wait`,
//! whichever comes first, and hands the batch to the worker pool. Under
//! load the wait never triggers (batches fill instantly); at low traffic
//! a lone request pays at most `max_wait` of extra latency.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use resuformer::pipeline::ParsedResume;
use resuformer_doc::Document;

use crate::metrics::Metrics;

/// One queued parse request: the document plus the response channel the
/// connection handler is blocked on.
pub struct Job {
    /// The document to parse.
    pub doc: Document,
    /// When the request entered the queue (end-to-end latency anchor).
    pub enqueued: Instant,
    /// Where the worker sends the result.
    pub resp: std::sync::mpsc::Sender<Result<ParsedResume, String>>,
}

/// Drain the request queue into batches until every request sender is
/// dropped (the drain-on-shutdown path: handlers finish, the acceptor
/// drops its sender, the queue empties, and only then does this loop —
/// and with it the worker pool's batch channel — wind down).
pub fn run_scheduler(
    requests: Receiver<Job>,
    batches: Sender<Vec<Job>>,
    max_batch: usize,
    max_wait: Duration,
    metrics: Arc<Metrics>,
) {
    let max_batch = max_batch.max(1);
    loop {
        // Block for the first job of the next batch.
        let first = match requests.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            // All senders gone and the queue fully drained: shut down.
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let assembly = resuformer_telemetry::span("serve.batch_assembly");
        let mut batch = vec![first];
        let deadline = Instant::now() + max_wait;
        while batch.len() < max_batch {
            match requests.recv_deadline(deadline) {
                Ok(job) => batch.push(job),
                Err(_) => break, // deadline hit or disconnected: ship what we have
            }
        }
        for job in &batch {
            metrics.note_queue_wait(job.enqueued.elapsed().as_secs_f64());
        }
        metrics.note_batch_formed(batch.len());
        drop(assembly);
        if batches.send(batch).is_err() {
            break; // worker pool gone
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn job(doc: Document) -> (Job, std::sync::mpsc::Receiver<Result<ParsedResume, String>>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            Job {
                doc,
                enqueued: Instant::now(),
                resp: tx,
            },
            rx,
        )
    }

    #[test]
    fn scheduler_coalesces_queued_jobs_into_one_batch() {
        let (req_tx, req_rx) = unbounded();
        let (batch_tx, batch_rx) = unbounded();
        let metrics = Arc::new(Metrics::new());

        // Enqueue 5 jobs BEFORE the scheduler starts: they must coalesce
        // into one batch of 4 (the cap) and one of 1.
        let mut rxs = Vec::new();
        for _ in 0..5 {
            let (j, rx) = job(Document::default());
            rxs.push(rx);
            req_tx.send(j).unwrap();
        }
        drop(req_tx);

        let m = metrics.clone();
        let handle = std::thread::spawn(move || {
            run_scheduler(req_rx, batch_tx, 4, Duration::from_millis(5), m);
        });
        handle.join().unwrap();

        let sizes: Vec<usize> = batch_rx.iter().map(|b: Vec<Job>| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert_eq!(sizes[0], 4, "first batch must fill to max_batch: {sizes:?}");
        let snap = metrics.snapshot();
        assert_eq!(snap.queue_depth, 0, "scheduler must drain the queue");
    }

    #[test]
    fn scheduler_ships_partial_batch_after_max_wait() {
        let (req_tx, req_rx) = unbounded();
        let (batch_tx, batch_rx) = unbounded();
        let metrics = Arc::new(Metrics::new());

        let handle = std::thread::spawn(move || {
            run_scheduler(req_rx, batch_tx, 64, Duration::from_millis(10), metrics);
        });
        let (j, _rx) = job(Document::default());
        req_tx.send(j).unwrap();
        let batch = batch_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("lone job must ship after max_wait");
        assert_eq!(batch.len(), 1);
        drop(req_tx);
        handle.join().unwrap();
    }
}
