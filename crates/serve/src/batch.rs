//! The dynamic micro-batching scheduler.
//!
//! Connection handlers enqueue [`Job`]s onto a bounded crossbeam channel;
//! one scheduler thread drains up to `max_batch` jobs or waits `max_wait`,
//! whichever comes first, and hands the batch to the worker pool. Under
//! load the wait never triggers (batches fill instantly); at low traffic
//! a lone request pays at most `max_wait` of extra latency.
//!
//! Every job carries a **deadline**. The scheduler sheds jobs that are
//! already expired when it pulls them off the queue — their handlers have
//! answered 504 and nobody is waiting, so spending a batch slot (and a
//! model forward) on them would only push the deadline of every job
//! behind them. Workers shed on the same rule just before parsing
//! ([`Job::expired`]), so an expired job never reaches the model.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use resuformer::pipeline::ParsedResume;
use resuformer_doc::Document;

use crate::metrics::Metrics;

/// Why a job did not produce a [`ParsedResume`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job outlived its deadline and was shed before (or instead of)
    /// parsing; the handler maps this to `504`.
    Expired,
    /// The worker could not parse the document (a poisoned document that
    /// panicked the parser, or an injected fault); maps to `500`.
    Failed(String),
}

/// What a worker sends back for one job.
pub type JobResult = Result<ParsedResume, JobError>;

/// One queued parse request: the document plus the response channel the
/// connection handler is blocked on.
pub struct Job {
    /// The document to parse.
    pub doc: Document,
    /// When the request entered the queue (end-to-end latency anchor).
    pub enqueued: Instant,
    /// When nobody will be waiting for the answer anymore: the handler
    /// stops listening at this instant, so the pipeline sheds the job
    /// rather than burn a batch slot on it.
    pub deadline: Instant,
    /// Where the worker sends the result.
    pub resp: std::sync::mpsc::Sender<JobResult>,
}

impl Job {
    /// Whether the deadline has passed (the handler is gone).
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline <= now
    }

    /// Reply `Expired` (the handler may already have hung up — that is
    /// fine) so the shed is visible to anyone still listening.
    pub fn shed(self) {
        let _ = self.resp.send(Err(JobError::Expired));
    }
}

/// Drain the request queue into batches until every request sender is
/// dropped (the drain-on-shutdown path: handlers finish, the acceptor
/// drops its sender, the queue empties, and only then does this loop —
/// and with it the worker pool's batch channel — wind down).
pub fn run_scheduler(
    requests: Receiver<Job>,
    batches: Sender<Vec<Job>>,
    max_batch: usize,
    max_wait: Duration,
    metrics: Arc<Metrics>,
) {
    let max_batch = max_batch.max(1);
    'next_batch: loop {
        // Block for the first live job of the next batch, shedding any
        // job whose handler has already stopped waiting.
        let first = loop {
            match requests.recv_timeout(Duration::from_millis(100)) {
                Ok(job) => {
                    if job.expired(Instant::now()) {
                        metrics.note_job_expired_queued();
                        job.shed();
                        continue;
                    }
                    break job;
                }
                Err(RecvTimeoutError::Timeout) => continue 'next_batch,
                // All senders gone and the queue fully drained: shut down.
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let assembly = resuformer_telemetry::span("serve.batch_assembly");
        let mut batch = vec![first];
        let deadline = Instant::now() + max_wait;
        while batch.len() < max_batch {
            match requests.recv_deadline(deadline) {
                Ok(job) => {
                    if job.expired(Instant::now()) {
                        metrics.note_job_expired_queued();
                        job.shed();
                        continue;
                    }
                    batch.push(job);
                }
                Err(_) => break, // deadline hit or disconnected: ship what we have
            }
        }
        for job in &batch {
            metrics.note_queue_wait(job.enqueued.elapsed().as_secs_f64());
        }
        metrics.note_batch_formed(batch.len());
        drop(assembly);
        if batches.send(batch).is_err() {
            break; // worker pool gone
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn job(doc: Document) -> (Job, std::sync::mpsc::Receiver<JobResult>) {
        job_with_deadline(doc, Instant::now() + Duration::from_secs(60))
    }

    fn job_with_deadline(
        doc: Document,
        deadline: Instant,
    ) -> (Job, std::sync::mpsc::Receiver<JobResult>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            Job {
                doc,
                enqueued: Instant::now(),
                deadline,
                resp: tx,
            },
            rx,
        )
    }

    #[test]
    fn scheduler_coalesces_queued_jobs_into_one_batch() {
        let (req_tx, req_rx) = unbounded();
        let (batch_tx, batch_rx) = unbounded();
        let metrics = Arc::new(Metrics::new());

        // Enqueue 5 jobs BEFORE the scheduler starts: they must coalesce
        // into one batch of 4 (the cap) and one of 1.
        let mut rxs = Vec::new();
        for _ in 0..5 {
            let (j, rx) = job(Document::default());
            rxs.push(rx);
            req_tx.send(j).unwrap();
        }
        drop(req_tx);

        let m = metrics.clone();
        let handle = std::thread::spawn(move || {
            run_scheduler(req_rx, batch_tx, 4, Duration::from_millis(5), m);
        });
        handle.join().unwrap();

        let sizes: Vec<usize> = batch_rx.iter().map(|b: Vec<Job>| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert_eq!(sizes[0], 4, "first batch must fill to max_batch: {sizes:?}");
        let snap = metrics.snapshot();
        assert_eq!(snap.queue_depth, 0, "scheduler must drain the queue");
    }

    #[test]
    fn scheduler_ships_partial_batch_after_max_wait() {
        let (req_tx, req_rx) = unbounded();
        let (batch_tx, batch_rx) = unbounded();
        let metrics = Arc::new(Metrics::new());

        let handle = std::thread::spawn(move || {
            run_scheduler(req_rx, batch_tx, 64, Duration::from_millis(10), metrics);
        });
        let (j, _rx) = job(Document::default());
        req_tx.send(j).unwrap();
        let batch = batch_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("lone job must ship after max_wait");
        assert_eq!(batch.len(), 1);
        drop(req_tx);
        handle.join().unwrap();
    }

    #[test]
    fn scheduler_sheds_expired_jobs_before_batch_assembly() {
        let (req_tx, req_rx) = unbounded();
        let (batch_tx, batch_rx) = unbounded();
        let metrics = Arc::new(Metrics::new());

        // Two already-expired jobs around one live job: only the live one
        // may reach a batch, and the expired ones get an Expired reply.
        let past = Instant::now() - Duration::from_millis(1);
        let (dead1, dead1_rx) = job_with_deadline(Document::default(), past);
        let (live, live_rx) = job(Document::default());
        let (dead2, dead2_rx) = job_with_deadline(Document::default(), past);
        req_tx.send(dead1).unwrap();
        req_tx.send(live).unwrap();
        req_tx.send(dead2).unwrap();
        drop(req_tx);

        let m = metrics.clone();
        let handle = std::thread::spawn(move || {
            run_scheduler(req_rx, batch_tx, 8, Duration::from_millis(5), m);
        });
        handle.join().unwrap();

        let sizes: Vec<usize> = batch_rx.iter().map(|b: Vec<Job>| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1, "only the live job ships");
        assert_eq!(
            dead1_rx.try_recv(),
            Ok(Err(JobError::Expired)),
            "shed jobs must be answered, not dropped"
        );
        assert_eq!(dead2_rx.try_recv(), Ok(Err(JobError::Expired)));
        assert!(live_rx.try_recv().is_err(), "live job awaits a worker");
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs_expired, 2);
        assert_eq!(snap.queue_depth, 0, "shed jobs must leave the gauge");
    }
}
