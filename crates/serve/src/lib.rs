//! HTTP/JSON inference serving for the ResuFormer parse pipeline.
//!
//! This crate wraps the two-stage parser ([`resuformer::pipeline`]) in a
//! production-shaped serving loop built entirely on `std::net` plus the
//! workspace's existing concurrency crates — no async runtime, no HTTP
//! framework:
//!
//! - **Micro-batching** ([`batch`]): concurrent requests are coalesced
//!   into batches (up to `max_batch`, waiting at most `max_wait_ms`) so
//!   the per-request fixed costs amortize under load.
//! - **Model registry** ([`registry`]): the model bundle is read and
//!   validated once at startup; ONE warm parser is built from it and
//!   shared by every worker thread behind an `Arc` (the autograd graph
//!   is `Arc`-based and `Sync`), so serving memory stays constant in the
//!   worker count.
//! - **Observability** ([`metrics`]): request/batch counters, queue
//!   depth, and p50/p95/p99 latency, backed by `resuformer-telemetry`
//!   and served as JSON at `/metrics` and Prometheus text at
//!   `/metrics/prometheus`; pipeline stages (`serve.batch_assembly`,
//!   `serve.parse`, `serve.serialize`) record telemetry spans.
//! - **Fault tolerance** ([`server`]): admission is bounded (a full
//!   queue answers `429` with a `Retry-After` estimate instead of
//!   growing without limit), every job carries a deadline (expired jobs
//!   are shed as `504` before they reach the model), and workers run
//!   each batch under `catch_unwind` — a panic is retried one document
//!   at a time so only the poisoned document's request fails, and a
//!   supervisor respawns any worker thread that dies so the pool never
//!   shrinks. All of it is testable deterministically through
//!   `resuformer_telemetry::failpoint` (see
//!   [`server::failpoint_sites`]).
//! - **Graceful shutdown** ([`signal`], [`Server::shutdown`]): SIGINT
//!   stops the acceptor, drains the queue, and joins every thread —
//!   in-flight requests get answers, not resets.
//!
//! # Endpoints
//!
//! | Route | Method | Body | Response |
//! |---|---|---|---|
//! | `/healthz` | GET | — | model metadata |
//! | `/metrics` | GET | — | [`metrics::MetricsSnapshot`] |
//! | `/metrics/prometheus` | GET | — | Prometheus text exposition |
//! | `/parse` | POST | `Document` JSON | `ParsedResume` JSON |
//! | `/parse_batch` | POST | `[Document, ...]` | `[ParsedResume, ...]` |
//!
//! See `docs/SERVING.md` for the end-to-end walkthrough and
//! `src/bin/loadgen.rs` for the load generator.

#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod signal;

pub use metrics::{Metrics, MetricsSnapshot};
pub use registry::{ModelInfo, ModelRegistry};
pub use server::{ServeConfig, Server};
pub use signal::{install_sigint_handler, sigint_received};
