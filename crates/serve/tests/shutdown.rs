//! Graceful shutdown under live load: every request the server accepts
//! gets a terminal HTTP response — 200, 429, 500, 503, or 504 — and
//! never a silently closed socket, even when `Server::shutdown` lands in
//! the middle of a burst with slow (failpoint-delayed) workers.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::block_classifier::BlockClassifier;
use resuformer::config::ModelConfig;
use resuformer::data::build_tokenizer;
use resuformer::encoder::HierarchicalEncoder;
use resuformer_datagen::{generate_resume, GeneratorConfig};
use resuformer_serve::client::http_request;
use resuformer_serve::server::failpoint_sites;
use resuformer_serve::{ModelRegistry, ServeConfig, Server};
use resuformer_telemetry::failpoint::{self, Action};

fn tiny_registry(seed: u64) -> (Arc<ModelRegistry>, Vec<u8>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let gen = GeneratorConfig::smoke();
    let resumes: Vec<_> = (0..4).map(|_| generate_resume(&mut rng, &gen)).collect();
    let words = resumes
        .iter()
        .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone()));
    let wp = build_tokenizer(words, 1);
    let config = ModelConfig::tiny(wp.vocab.len());
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let bytes = resuformer::model_io::save_bundle_bytes(&classifier, &config, &wp, seed, None)
        .expect("bundle serializes");
    let registry = ModelRegistry::from_bytes(bytes, "in-memory").expect("bundle loads back");
    let body = serde_json::to_vec(&resumes[0].doc).expect("document serializes");
    (Arc::new(registry), body)
}

#[test]
fn shutdown_under_load_answers_every_accepted_request() {
    let (registry, body) = tiny_registry(47);
    let server = Server::start(
        registry,
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 4,
            max_wait_ms: 5,
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr().to_string();

    // Slow the workers so shutdown lands with requests genuinely in
    // flight (queued, batched, and mid-parse).
    failpoint::arm(failpoint_sites::WORKER_PARSE, Action::Delay(100));

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicUsize::new(0));
    let violations = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for _ in 0..12 {
        let addr = addr.clone();
        let body = body.clone();
        let stop = stop.clone();
        let completed = completed.clone();
        let violations = violations.clone();
        clients.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match http_request(&addr, "POST", "/parse", &body, Duration::from_secs(30)) {
                    Ok(resp) => {
                        if matches!(resp.status, 200 | 429 | 500 | 503 | 504) {
                            completed.fetch_add(1, Ordering::Relaxed);
                        } else {
                            eprintln!("unexpected status {}", resp.status);
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A refused connect means the listener is already
                    // gone — the request was never accepted; that is the
                    // one legitimate non-response.
                    Err(e) if e.starts_with("connecting to") => break,
                    Err(e) => {
                        eprintln!("accepted request got no response: {e}");
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    // Let load build, then stop issuing NEW requests a beat before the
    // shutdown so no client is racing its connect against the listener
    // teardown — the ones already on the wire are what's under test.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    for c in clients {
        c.join().expect("client thread");
    }
    failpoint::disarm(failpoint_sites::WORKER_PARSE);

    assert_eq!(
        violations.load(Ordering::SeqCst),
        0,
        "every accepted request must get a terminal response"
    );
    assert!(
        completed.load(Ordering::SeqCst) > 0,
        "the burst must actually have exercised the server"
    );
}
