//! End-to-end serving test: boot the server on an ephemeral port with a
//! tiny (untrained) model, exercise every endpoint over real sockets, and
//! check the wire contract — a deserializable `ParsedResume` and sane
//! `/metrics`. Uses one test function so the socket work stays serial.

use std::sync::Arc;
use std::time::Duration;

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::block_classifier::BlockClassifier;
use resuformer::config::ModelConfig;
use resuformer::data::build_tokenizer;
use resuformer::encoder::HierarchicalEncoder;
use resuformer::pipeline::ParsedResume;
use resuformer_datagen::{generate_resume, GeneratorConfig};
use resuformer_doc::Document;
use resuformer_serve::client::{get_json, http_request};
use resuformer_serve::{MetricsSnapshot, ModelRegistry, ServeConfig, Server};

/// Build an in-memory registry around a tiny untrained model (random
/// weights are fine: the test checks the serving contract, not accuracy)
/// plus a handful of documents to send at it.
fn tiny_registry(seed: u64) -> (Arc<ModelRegistry>, Vec<Document>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let gen = GeneratorConfig::smoke();
    let resumes: Vec<_> = (0..6).map(|_| generate_resume(&mut rng, &gen)).collect();
    let words = resumes
        .iter()
        .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone()));
    let wp = build_tokenizer(words, 1);
    let config = ModelConfig::tiny(wp.vocab.len());
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let bytes = resuformer::model_io::save_bundle_bytes(&classifier, &config, &wp, seed, None)
        .expect("bundle serializes");
    let registry = ModelRegistry::from_bytes(bytes, "in-memory").expect("bundle loads back");
    (
        Arc::new(registry),
        resumes.into_iter().map(|r| r.doc).collect(),
    )
}

#[test]
fn server_round_trip_over_real_sockets() {
    let (registry, docs) = tiny_registry(41);
    assert!(
        !registry.info.has_ner,
        "classifier-only bundle must report has_ner=false"
    );

    let server = Server::start(
        registry,
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 4,
            max_wait_ms: 5,
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("server starts on an ephemeral port");
    let addr = server.local_addr().to_string();
    let timeout = Duration::from_secs(30);

    // Health: status ok plus model metadata.
    let resp = http_request(&addr, "GET", "/healthz", &[], timeout).expect("healthz reachable");
    assert_eq!(resp.status, 200);
    let health: serde_json::Value = serde_json::from_slice(&resp.body).expect("healthz is JSON");
    assert_eq!(health["status"], "ok");
    assert_eq!(health["model"]["has_ner"], false);

    // A real document round-trips to a well-formed ParsedResume.
    let body = serde_json::to_vec(&docs[0]).unwrap();
    let resp = http_request(&addr, "POST", "/parse", &body, timeout).expect("parse reachable");
    assert_eq!(
        resp.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&resp.body)
    );
    let parsed: ParsedResume =
        serde_json::from_slice(&resp.body).expect("response deserializes as ParsedResume");
    assert!(
        !parsed.blocks.is_empty(),
        "parse must segment at least one block"
    );

    // Bad inputs are rejected at the edge, not inside a worker.
    let resp = http_request(&addr, "POST", "/parse", b"{not json", timeout).unwrap();
    assert_eq!(resp.status, 400);
    let resp = http_request(
        &addr,
        "POST",
        "/parse",
        b"{\"tokens\":[],\"pages\":[]}",
        timeout,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "empty document must be a 400");
    let resp = http_request(&addr, "GET", "/nope", &[], timeout).unwrap();
    assert_eq!(resp.status, 404);

    // Batch endpoint: N documents in, N parses out, in order.
    let body = serde_json::to_vec(&docs[..3]).unwrap();
    let resp = http_request(&addr, "POST", "/parse_batch", &body, timeout).unwrap();
    assert_eq!(
        resp.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&resp.body)
    );
    let parsed_batch: Vec<ParsedResume> = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(parsed_batch.len(), 3);

    // Metrics reflect what just happened.
    let m: MetricsSnapshot = get_json(&addr, "/metrics", timeout).expect("metrics decodes");
    assert!(
        m.requests >= 4,
        "1 parse + 3 batch docs expected, got {}",
        m.requests
    );
    assert!(
        m.errors >= 2,
        "the two 400s must be counted, got {}",
        m.errors
    );
    assert_eq!(m.queue_depth, 0, "queue must be drained when idle");
    assert!(m.batches >= 1);
    assert!(m.mean_batch_size >= 1.0);
    assert!(m.request_latency_ms.p50 > 0.0);
    assert!(m.uptime_seconds > 0.0);

    // The Prometheus rendering of the same registry must agree with the
    // JSON snapshot (counters can only have grown since `m` was taken).
    let resp = http_request(&addr, "GET", "/metrics/prometheus", &[], timeout)
        .expect("prometheus endpoint reachable");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).expect("prometheus body is UTF-8");
    assert!(
        text.contains("# TYPE serve_requests_total counter"),
        "{text}"
    );
    let prom_requests: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("serve_requests_total "))
        .expect("requests counter rendered")
        .parse()
        .expect("counter value parses");
    assert!(
        prom_requests >= m.requests,
        "prometheus ({prom_requests}) lags JSON ({})",
        m.requests
    );
    assert!(
        text.contains("# TYPE serve_request_seconds summary"),
        "{text}"
    );
    assert!(
        text.contains("serve_request_seconds{quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(text.contains("serve_queue_wait_seconds_count"), "{text}");
    assert!(text.contains("serve_uptime_seconds"), "{text}");

    // Graceful shutdown joins every thread without hanging the test.
    server.shutdown();
}
