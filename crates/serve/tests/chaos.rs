//! Chaos tests: prove the server *survives* faults instead of merely
//! reporting them. Every scenario arms a deterministic failpoint
//! (`resuformer_telemetry::failpoint`), drives real HTTP traffic at a
//! real server, and asserts the degraded behavior is exactly the designed
//! one — poisoned documents fail alone, overload answers `429` with a
//! retry hint, expired requests are shed as `504`, dead workers are
//! respawned, and a handler that cannot even be spawned still yields a
//! `503`.
//!
//! Failpoints are process-global, so everything runs sequentially inside
//! one test function (each scenario on a fresh server, disarming behind
//! itself).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::block_classifier::BlockClassifier;
use resuformer::config::ModelConfig;
use resuformer::data::build_tokenizer;
use resuformer::encoder::HierarchicalEncoder;
use resuformer_datagen::{generate_resume, GeneratorConfig};
use resuformer_doc::Document;
use resuformer_serve::client::http_request;
use resuformer_serve::server::failpoint_sites;
use resuformer_serve::{MetricsSnapshot, ModelRegistry, ServeConfig, Server};
use resuformer_telemetry::failpoint::{self, Action};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Tiny untrained model + a document to throw at it (accuracy is not
/// under test here, survival is).
fn tiny_registry(seed: u64) -> (Arc<ModelRegistry>, Vec<u8>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let gen = GeneratorConfig::smoke();
    let resumes: Vec<_> = (0..4).map(|_| generate_resume(&mut rng, &gen)).collect();
    let words = resumes
        .iter()
        .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone()));
    let wp = build_tokenizer(words, 1);
    let config = ModelConfig::tiny(wp.vocab.len());
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let bytes = resuformer::model_io::save_bundle_bytes(&classifier, &config, &wp, seed, None)
        .expect("bundle serializes");
    let registry = ModelRegistry::from_bytes(bytes, "in-memory").expect("bundle loads back");
    let doc: &Document = &resumes[0].doc;
    let body = serde_json::to_vec(doc).expect("document serializes");
    (Arc::new(registry), body)
}

fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> (Server, String) {
    let server = Server::start(registry, config).expect("server starts");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn metrics(addr: &str) -> MetricsSnapshot {
    resuformer_serve::client::get_json(addr, "/metrics", CLIENT_TIMEOUT).expect("metrics decodes")
}

/// Fire `n` copies of `body` at `/parse` from `threads` client threads;
/// return every status observed. Panics on a transport failure — in these
/// tests every request must get a terminal HTTP answer.
fn burst(addr: &str, body: &[u8], n: usize, threads: usize) -> Vec<u16> {
    let addr = addr.to_string();
    let body = body.to_vec();
    let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let addr = addr.clone();
        let body = body.clone();
        let next = next.clone();
        handles.push(std::thread::spawn(move || {
            let mut statuses = Vec::new();
            loop {
                if next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= n {
                    break;
                }
                let resp = http_request(&addr, "POST", "/parse", &body, CLIENT_TIMEOUT)
                    .expect("every request must get a terminal response");
                statuses.push(resp.status);
            }
            statuses
        }));
    }
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect()
}

#[test]
fn server_survives_injected_faults() {
    let (registry, body) = tiny_registry(43);

    // --- Scenario 1: a panicking parse poisons one document, not the
    // pool. Budget 2: the batch-level panic (fire 1) triggers the
    // per-document retry, whose first document re-fires (fire 2) and is
    // poisoned; every other document parses. (Under racy scheduling two
    // workers can consume both fires at batch level instead — then their
    // retries all succeed and zero documents are poisoned. Either way
    // the invariant below holds exactly.)
    {
        let (server, addr) = start(
            registry.clone(),
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                max_batch: 4,
                max_wait_ms: 5,
                workers: 2,
                ..ServeConfig::default()
            },
        );
        failpoint::arm_one_shot(failpoint_sites::WORKER_PARSE, Action::Panic, 2);
        let statuses = burst(&addr, &body, 100, 8);
        assert_eq!(statuses.len(), 100);
        let n500 = statuses.iter().filter(|&&s| s == 500).count();
        let n200 = statuses.iter().filter(|&&s| s == 200).count();
        assert_eq!(n200 + n500, 100, "only 200/500 expected, got {statuses:?}");
        let m = metrics(&addr);
        assert!(m.worker_panics >= 1, "the armed panic must have fired");
        assert_eq!(
            n500 as u64, m.docs_poisoned,
            "exactly the poisoned documents may fail"
        );
        assert_eq!(m.workers_alive, 2, "caught panics must not shrink the pool");
        assert_eq!(m.worker_restarts, 0, "no thread died, none respawned");
        failpoint::disarm(failpoint_sites::WORKER_PARSE);
        server.shutdown();
    }

    // --- Scenario 2: a full bounded queue answers 429 + Retry-After
    // immediately — it never hangs and never grows without limit.
    {
        let (server, addr) = start(
            registry.clone(),
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                max_batch: 1,
                max_wait_ms: 1,
                workers: 1,
                max_queue: 1,
                ..ServeConfig::default()
            },
        );
        failpoint::arm(failpoint_sites::WORKER_PARSE, Action::Delay(150));
        let statuses = burst(&addr, &body, 8, 8);
        failpoint::disarm(failpoint_sites::WORKER_PARSE);
        assert!(
            statuses.iter().all(|s| *s == 200 || *s == 429),
            "slow worker + queue bound 1 must only yield 200/429: {statuses:?}"
        );
        let n429 = statuses.iter().filter(|&&s| s == 429).count();
        assert!(n429 >= 1, "8 instant requests must overflow a queue of 1");
        let m = metrics(&addr);
        assert_eq!(m.queue_rejected, n429 as u64);

        // The rejection carries a machine-readable retry hint. Pipeline
        // capacity here is 1 parsing + 1 staged batch + 1 in the
        // scheduler's hand + 1 queued = 4, so 8 simultaneous posts must
        // overflow it.
        failpoint::arm(failpoint_sites::WORKER_PARSE, Action::Delay(150));
        let rejected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        http_request(&addr, "POST", "/parse", &body, CLIENT_TIMEOUT).unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|r| r.status == 429)
                .collect::<Vec<_>>()
        });
        failpoint::disarm(failpoint_sites::WORKER_PARSE);
        assert!(
            !rejected.is_empty(),
            "8 simultaneous posts must hit the bound"
        );
        for resp in &rejected {
            let secs: u64 = resp
                .header("Retry-After")
                .expect("429 must carry Retry-After")
                .parse()
                .expect("Retry-After must be integral seconds");
            assert!((1..=60).contains(&secs), "hint out of range: {secs}");
        }
        server.shutdown();
    }

    // --- Scenario 3: deadline propagation — a request that cannot be
    // answered inside its timeout is shed as 504, and the shed is
    // counted, not silent.
    {
        let (server, addr) = start(
            registry.clone(),
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                max_batch: 1,
                max_wait_ms: 1,
                workers: 1,
                request_timeout_ms: 80,
                ..ServeConfig::default()
            },
        );
        failpoint::arm(failpoint_sites::WORKER_PARSE, Action::Delay(300));
        let statuses = burst(&addr, &body, 3, 3);
        failpoint::disarm(failpoint_sites::WORKER_PARSE);
        assert!(
            statuses.iter().all(|s| *s == 200 || *s == 504),
            "a 300ms parse against an 80ms deadline yields 504s: {statuses:?}"
        );
        assert!(
            statuses.iter().any(|s| *s == 504),
            "at least one request must be shed: {statuses:?}"
        );
        // Give the worker time to reach the queued-behind jobs and shed
        // them (that is where the counter increments).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if metrics(&addr).jobs_expired >= 1 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(metrics(&addr).jobs_expired >= 1, "sheds must be counted");
        server.shutdown();
    }

    // --- Scenario 4: a worker thread that dies outright is detected —
    // its in-flight request gets "worker failed" (500, NOT a 504: nobody
    // timed out) — and the supervisor restores pool strength.
    {
        let (server, addr) = start(
            registry.clone(),
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                max_batch: 4,
                max_wait_ms: 1,
                workers: 1,
                ..ServeConfig::default()
            },
        );
        failpoint::arm_one_shot(failpoint_sites::WORKER_RECV, Action::Panic, 1);
        let resp = http_request(&addr, "POST", "/parse", &body, CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, 500, "a dead worker is a 500, not a timeout");
        assert!(
            String::from_utf8_lossy(&resp.body).contains("worker failed"),
            "body: {}",
            String::from_utf8_lossy(&resp.body)
        );
        // The supervisor polls every 10ms; wait for the respawn.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let m = metrics(&addr);
            if (m.worker_restarts >= 1 && m.workers_alive == 1) || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let m = metrics(&addr);
        assert!(m.worker_restarts >= 1, "the crash must be respawned");
        assert_eq!(m.workers_alive, 1, "pool back at full strength");
        // And the respawned worker actually serves.
        let resp = http_request(&addr, "POST", "/parse", &body, CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "respawned worker must parse");
        server.shutdown();
    }

    // --- Scenario 5: failing to spawn a connection handler still answers
    // the connection (503) instead of silently dropping the socket.
    {
        let (server, addr) = start(
            registry.clone(),
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                max_batch: 4,
                max_wait_ms: 1,
                workers: 1,
                ..ServeConfig::default()
            },
        );
        failpoint::arm_one_shot(
            failpoint_sites::ACCEPTOR_SPAWN,
            Action::Err("out of threads".to_string()),
            1,
        );
        let resp = http_request(&addr, "GET", "/healthz", &[], CLIENT_TIMEOUT)
            .expect("a failed spawn must still answer the socket");
        assert_eq!(resp.status, 503);
        assert!(
            String::from_utf8_lossy(&resp.body).contains("cannot spawn connection handler"),
            "body: {}",
            String::from_utf8_lossy(&resp.body)
        );
        // The budget is spent; the next connection is served normally.
        let resp = http_request(&addr, "GET", "/healthz", &[], CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }
}
