//! Finite-difference gradient checks for every differentiable op.
//!
//! Each test builds a scalar loss through the op under test and compares the
//! analytic gradient against a central difference. Property-based variants
//! randomise shapes and values.

use proptest::prelude::*;
use resuformer_tensor::check::assert_grads_close;
use resuformer_tensor::init::{seeded_rng, uniform};
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn param(data: Vec<f32>, shape: impl Into<resuformer_tensor::Shape>) -> Tensor {
    Tensor::param(NdArray::from_vec(data, shape))
}

fn rand_param(seed: u64, shape: impl Into<resuformer_tensor::Shape>) -> Tensor {
    Tensor::param(uniform(&mut seeded_rng(seed), shape, 0.9))
}

#[test]
fn grad_add_sub_mul_div() {
    let a = rand_param(1, [2, 3]);
    let b = param(vec![1.5, 0.8, -1.2, 2.0, 0.5, -0.9], [2, 3]);
    assert_grads_close(
        &[a.clone(), b.clone()],
        |p| ops::mean_all(&ops::add(&p[0], &p[1])),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[a.clone(), b.clone()],
        |p| ops::mean_all(&ops::sub(&p[0], &p[1])),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[a.clone(), b.clone()],
        |p| ops::mean_all(&ops::mul(&p[0], &p[1])),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[a, b],
        |p| ops::mean_all(&ops::div(&p[0], &p[1])),
        EPS,
        TOL,
    );
}

#[test]
fn grad_scalar_ops() {
    let a = rand_param(2, [5]);
    assert_grads_close(
        &[a.clone()],
        |p| ops::mean_all(&ops::add_scalar(&p[0], 3.0)),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[a.clone()],
        |p| ops::mean_all(&ops::mul_scalar(&p[0], -2.5)),
        EPS,
        TOL,
    );
    assert_grads_close(&[a], |p| ops::mean_all(&ops::neg(&p[0])), EPS, TOL);
}

#[test]
fn grad_unary_smooth() {
    let a = rand_param(3, [6]);
    assert_grads_close(&[a.clone()], |p| ops::mean_all(&ops::exp(&p[0])), EPS, TOL);
    assert_grads_close(
        &[a.clone()],
        |p| ops::mean_all(&ops::sigmoid(&p[0])),
        EPS,
        TOL,
    );
    assert_grads_close(&[a.clone()], |p| ops::mean_all(&ops::tanh(&p[0])), EPS, TOL);
    assert_grads_close(&[a.clone()], |p| ops::mean_all(&ops::gelu(&p[0])), EPS, TOL);
    assert_grads_close(&[a], |p| ops::mean_all(&ops::square(&p[0])), EPS, TOL);
}

#[test]
fn grad_ln_sqrt_positive_domain() {
    let a = param(vec![0.5, 1.0, 2.5, 4.0], [4]);
    assert_grads_close(&[a.clone()], |p| ops::mean_all(&ops::ln(&p[0])), 1e-3, TOL);
    assert_grads_close(&[a], |p| ops::mean_all(&ops::sqrt(&p[0])), 1e-3, TOL);
}

#[test]
fn grad_relu_away_from_kink() {
    let a = param(vec![0.5, -0.7, 1.2, -2.0], [4]);
    assert_grads_close(&[a], |p| ops::mean_all(&ops::relu(&p[0])), 1e-3, TOL);
}

#[test]
fn grad_matmul_both_sides() {
    let a = rand_param(4, [3, 4]);
    let b = rand_param(5, [4, 2]);
    assert_grads_close(
        &[a, b],
        |p| ops::mean_all(&ops::square(&ops::matmul(&p[0], &p[1]))),
        EPS,
        TOL,
    );
}

#[test]
fn grad_broadcast_ops() {
    let m = rand_param(6, [3, 4]);
    let row = rand_param(7, [4]);
    let col = rand_param(8, [3]);
    assert_grads_close(
        &[m.clone(), row.clone()],
        |p| ops::mean_all(&ops::square(&ops::add_broadcast_row(&p[0], &p[1]))),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m.clone(), col],
        |p| ops::mean_all(&ops::square(&ops::add_broadcast_col(&p[0], &p[1]))),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m, row],
        |p| ops::mean_all(&ops::square(&ops::mul_broadcast_row(&p[0], &p[1]))),
        EPS,
        TOL,
    );
}

#[test]
fn grad_reductions() {
    let m = rand_param(9, [3, 4]);
    assert_grads_close(
        &[m.clone()],
        |p| ops::sum_all(&ops::square(&p[0])),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::square(&p[0])),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::square(&ops::sum_axis(&p[0], 0))),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m],
        |p| ops::mean_all(&ops::square(&ops::sum_axis(&p[0], 1))),
        EPS,
        TOL,
    );
}

#[test]
fn grad_softmax_family() {
    let m = rand_param(10, [3, 5]);
    let weights = Tensor::constant(uniform(&mut seeded_rng(11), [3, 5], 1.0));
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::mul(&ops::softmax_rows(&p[0]), &weights)),
        EPS,
        TOL,
    );
    let weights2 = Tensor::constant(uniform(&mut seeded_rng(12), [3, 5], 1.0));
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::mul(&ops::log_softmax_rows(&p[0]), &weights2)),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::square(&ops::logsumexp_axis(&p[0], 0))),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m],
        |p| ops::mean_all(&ops::square(&ops::logsumexp_axis(&p[0], 1))),
        EPS,
        TOL,
    );
}

#[test]
fn grad_normalisation() {
    let m = rand_param(13, [3, 6]);
    let w = Tensor::constant(uniform(&mut seeded_rng(14), [3, 6], 1.0));
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::mul(&ops::layer_norm_rows(&p[0], 1e-5), &w)),
        EPS,
        5e-2,
    );
    let w2 = Tensor::constant(uniform(&mut seeded_rng(15), [3, 6], 1.0));
    assert_grads_close(
        &[m],
        |p| ops::mean_all(&ops::mul(&ops::l2_normalize_rows(&p[0], 1e-8), &w2)),
        EPS,
        5e-2,
    );
}

#[test]
fn grad_gather_and_structure_ops() {
    let table = rand_param(16, [5, 3]);
    assert_grads_close(
        &[table],
        |p| ops::mean_all(&ops::square(&ops::gather_rows(&p[0], &[0, 3, 3, 1]))),
        EPS,
        TOL,
    );

    let a = rand_param(17, [2, 3]);
    let b = rand_param(18, [2, 2]);
    assert_grads_close(
        &[a.clone(), b],
        |p| {
            ops::mean_all(&ops::square(&ops::concat_cols(&[
                p[0].clone(),
                p[1].clone(),
            ])))
        },
        EPS,
        TOL,
    );
    let c = rand_param(19, [4, 3]);
    assert_grads_close(
        &[a, c],
        |p| {
            ops::mean_all(&ops::square(&ops::concat_rows(&[
                p[0].clone(),
                p[1].clone(),
            ])))
        },
        EPS,
        TOL,
    );

    let r0 = rand_param(20, [4]);
    let r1 = rand_param(21, [4]);
    assert_grads_close(
        &[r0, r1],
        |p| {
            ops::mean_all(&ops::square(&ops::stack_rows(&[
                p[0].clone(),
                p[1].clone(),
            ])))
        },
        EPS,
        TOL,
    );

    let m = rand_param(22, [4, 3]);
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::square(&ops::index_row(&p[0], 2))),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::square(&ops::slice_rows(&p[0], 1, 2))),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::square(&ops::transpose(&p[0]))),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m],
        |p| ops::mean_all(&ops::square(&ops::reshape(&p[0], [2, 6]))),
        EPS,
        TOL,
    );
}

#[test]
fn grad_losses() {
    let logits = rand_param(23, [4, 3]);
    assert_grads_close(
        &[logits.clone()],
        |p| ops::cross_entropy_rows(&p[0], &[0, 2, 1, 1], None),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[logits.clone()],
        |p| ops::cross_entropy_rows(&p[0], &[0, 2, 1, 1], Some(&[1.0, 0.0, 2.0, 0.5])),
        EPS,
        TOL,
    );

    // Soft targets: random distribution rows.
    let mut soft = uniform(&mut seeded_rng(24), [4, 3], 0.5).map(|v| v.abs() + 0.1);
    for i in 0..4 {
        let s: f32 = soft.row(i).iter().sum();
        for j in 0..3 {
            let v = soft.at(&[i, j]) / s;
            soft.set(&[i, j], v);
        }
    }
    let soft2 = soft.clone();
    assert_grads_close(
        &[logits.clone()],
        |p| ops::soft_cross_entropy_rows(&p[0], &soft, None),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[logits.clone()],
        |p| ops::soft_cross_entropy_rows(&p[0], &soft2, Some(&[0.0, 1.0, 1.0, 0.0])),
        EPS,
        TOL,
    );

    let target = Tensor::constant(uniform(&mut seeded_rng(25), [4, 3], 1.0));
    assert_grads_close(&[logits], |p| ops::mse(&p[0], &target), EPS, TOL);
}

#[test]
fn grad_conv_and_pool() {
    let img = rand_param(26, [2, 4, 4]);
    let w = rand_param(27, [3, 2, 3, 3]);
    assert_grads_close(
        &[img.clone(), w.clone()],
        |p| ops::mean_all(&ops::square(&ops::conv2d(&p[0], &p[1], 1, 1))),
        EPS,
        5e-2,
    );
    assert_grads_close(
        &[img.clone(), w],
        |p| ops::mean_all(&ops::square(&ops::conv2d(&p[0], &p[1], 2, 1))),
        EPS,
        5e-2,
    );
    assert_grads_close(
        &[img],
        |p| ops::mean_all(&ops::square(&ops::avg_pool2d(&p[0], 2))),
        EPS,
        TOL,
    );
}

// ---------------------------------------------------------------------------
// Property-based gradient checks on random shapes/values
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_grad_composite_mlp(seed in 0u64..1000, rows in 1usize..4, inner in 1usize..5, out_dim in 1usize..4) {
        let x = Tensor::constant(uniform(&mut seeded_rng(seed), [rows, 3], 1.0));
        let w1 = Tensor::param(uniform(&mut seeded_rng(seed + 1), [3, inner], 0.7));
        let w2 = Tensor::param(uniform(&mut seeded_rng(seed + 2), [inner, out_dim], 0.7));
        assert_grads_close(
            &[w1, w2],
            |p| {
                let h = ops::tanh(&ops::matmul(&x, &p[0]));
                let y = ops::matmul(&h, &p[1]);
                ops::mean_all(&ops::square(&y))
            },
            EPS,
            5e-2,
        );
    }

    #[test]
    fn prop_grad_softmax_ce(seed in 0u64..1000, rows in 1usize..5, classes in 2usize..6) {
        let logits = Tensor::param(uniform(&mut seeded_rng(seed), [rows, classes], 1.5));
        let targets: Vec<usize> = (0..rows).map(|i| (i * 7 + seed as usize) % classes).collect();
        assert_grads_close(
            &[logits],
            |p| ops::cross_entropy_rows(&p[0], &targets, None),
            EPS,
            5e-2,
        );
    }

    #[test]
    fn prop_softmax_rows_is_distribution(seed in 0u64..1000, rows in 1usize..6, cols in 1usize..8) {
        let m = Tensor::constant(uniform(&mut seeded_rng(seed), [rows, cols], 30.0));
        let s = ops::softmax_rows(&m).value();
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn prop_matmul_associative_with_vector(seed in 0u64..1000) {
        // (A B) x == A (B x) for random small matrices.
        let a = uniform(&mut seeded_rng(seed), [4, 5], 1.0);
        let b = uniform(&mut seeded_rng(seed + 1), [5, 3], 1.0);
        let x = uniform(&mut seeded_rng(seed + 2), [3, 1], 1.0);
        let left = ops::matmul_raw(&ops::matmul_raw(&a, &b), &x);
        let right = ops::matmul_raw(&a, &ops::matmul_raw(&b, &x));
        for i in 0..4 {
            prop_assert!((left.at(&[i, 0]) - right.at(&[i, 0])).abs() < 1e-3);
        }
    }
}

#[test]
fn grad_slice_cols_and_gather_elems() {
    let m = rand_param(30, [3, 5]);
    assert_grads_close(
        &[m.clone()],
        |p| ops::mean_all(&ops::square(&ops::slice_cols(&p[0], 1, 3))),
        EPS,
        TOL,
    );
    assert_grads_close(
        &[m],
        |p| {
            ops::mean_all(&ops::square(&ops::gather_elems(
                &p[0],
                &[(0, 0), (2, 4), (2, 4)],
            )))
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_max_pool_routes_to_argmax() {
    // Away from ties, max-pool gradients are exact.
    let img = param(vec![1.0, 5.0, 3.0, 2.0, 0.5, -1.0, 4.0, 0.0], [2, 2, 2]);
    assert_grads_close(
        &[img.clone()],
        |p| ops::mean_all(&ops::square(&ops::max_pool2d(&p[0], 2))),
        1e-3,
        TOL,
    );
    img.zero_grad();
    let y = ops::max_pool2d(&img, 2);
    ops::sum_all(&y).backward();
    let g = img.grad().unwrap();
    assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
}
