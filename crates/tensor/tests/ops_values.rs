//! Forward-value correctness tests for every op in `resuformer_tensor::ops`.

use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

fn t(data: Vec<f32>, shape: impl Into<resuformer_tensor::Shape>) -> Tensor {
    Tensor::constant(NdArray::from_vec(data, shape))
}

fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        assert!((x - y).abs() <= tol, "element {}: {} vs {}", i, x, y);
    }
}

#[test]
fn elementwise_binary_values() {
    let a = t(vec![1.0, 2.0, -3.0], [3]);
    let b = t(vec![4.0, -2.0, 0.5], [3]);
    assert_eq!(ops::add(&a, &b).value().data(), &[5.0, 0.0, -2.5]);
    assert_eq!(ops::sub(&a, &b).value().data(), &[-3.0, 4.0, -3.5]);
    assert_eq!(ops::mul(&a, &b).value().data(), &[4.0, -4.0, -1.5]);
    assert_eq!(ops::div(&a, &b).value().data(), &[0.25, -1.0, -6.0]);
}

#[test]
fn scalar_and_unary_values() {
    let a = t(vec![0.0, 1.0, -1.0], [3]);
    assert_eq!(ops::add_scalar(&a, 2.0).value().data(), &[2.0, 3.0, 1.0]);
    assert_eq!(ops::mul_scalar(&a, -3.0).value().data(), &[0.0, -3.0, 3.0]);
    assert_eq!(ops::neg(&a).value().data(), &[0.0, -1.0, 1.0]);
    assert_eq!(ops::relu(&a).value().data(), &[0.0, 1.0, 0.0]);
    assert_close(
        ops::sigmoid(&a).value().data(),
        &[0.5, 0.731_058_6, 0.268_941_4],
        1e-6,
    );
    assert_close(
        ops::tanh(&a).value().data(),
        &[0.0, 0.761_594_2, -0.761_594_2],
        1e-6,
    );
    assert_close(
        ops::exp(&a).value().data(),
        &[1.0, std::f32::consts::E, 1.0 / std::f32::consts::E],
        1e-6,
    );
    assert_eq!(ops::square(&a).value().data(), &[0.0, 1.0, 1.0]);
}

#[test]
fn gelu_matches_reference_points() {
    // Reference values from the BERT tanh approximation.
    let a = t(vec![0.0, 1.0, -1.0, 2.0], [4]);
    let y = ops::gelu(&a).value();
    assert!((y.data()[0]).abs() < 1e-6);
    assert!((y.data()[1] - 0.841_192).abs() < 1e-3);
    assert!((y.data()[2] + 0.158_808).abs() < 1e-3);
    assert!((y.data()[3] - 1.954_6).abs() < 1e-3);
}

#[test]
fn matmul_matches_hand_computation() {
    let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
    let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
    let c = ops::matmul(&a, &b).value();
    assert_eq!(c.dims(), &[2, 2]);
    assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
}

#[test]
fn matmul_large_matches_naive() {
    // The rayon-parallel blocked kernel must agree with a naive reference.
    let mut rng = resuformer_tensor::init::seeded_rng(3);
    let a = resuformer_tensor::init::uniform(&mut rng, [37, 53], 1.0);
    let b = resuformer_tensor::init::uniform(&mut rng, [53, 29], 1.0);
    let c = ops::matmul_raw(&a, &b);
    for i in 0..37 {
        for j in 0..29 {
            let mut acc = 0.0f32;
            for k in 0..53 {
                acc += a.at(&[i, k]) * b.at(&[k, j]);
            }
            assert!((c.at(&[i, j]) - acc).abs() < 1e-3);
        }
    }
}

#[test]
fn broadcast_ops_values() {
    let m = t(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    let row = t(vec![10.0, 20.0], [2]);
    assert_eq!(
        ops::add_broadcast_row(&m, &row).value().data(),
        &[11.0, 22.0, 13.0, 24.0]
    );
    assert_eq!(
        ops::add_broadcast_col(&m, &row).value().data(),
        &[11.0, 12.0, 23.0, 24.0]
    );
    assert_eq!(
        ops::mul_broadcast_row(&m, &row).value().data(),
        &[10.0, 40.0, 30.0, 80.0]
    );
}

#[test]
fn reductions_values() {
    let m = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
    assert_eq!(ops::sum_all(&m).item(), 21.0);
    assert_eq!(ops::mean_all(&m).item(), 3.5);
    assert_eq!(ops::sum_axis(&m, 0).value().data(), &[5.0, 7.0, 9.0]);
    assert_eq!(ops::sum_axis(&m, 1).value().data(), &[6.0, 15.0]);
}

#[test]
fn softmax_rows_sums_to_one_and_orders() {
    let m = t(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], [2, 3]);
    let s = ops::softmax_rows(&m).value();
    for r in 0..2 {
        let sum: f32 = s.row(r).iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
    assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    assert_close(s.row(1), &[1.0 / 3.0; 3], 1e-6);
}

#[test]
fn softmax_is_shift_invariant_and_stable() {
    let m1 = t(vec![1000.0, 1001.0, 1002.0], [1, 3]);
    let m2 = t(vec![0.0, 1.0, 2.0], [1, 3]);
    let s1 = ops::softmax_rows(&m1).value();
    let s2 = ops::softmax_rows(&m2).value();
    assert_close(s1.data(), s2.data(), 1e-6);
    assert!(s1.all_finite());
}

#[test]
fn log_softmax_consistent_with_softmax() {
    let m = t(vec![0.3, -1.2, 2.0, 0.0], [2, 2]);
    let ls = ops::log_softmax_rows(&m).value();
    let s = ops::softmax_rows(&m).value();
    for i in 0..4 {
        assert!((ls.data()[i].exp() - s.data()[i]).abs() < 1e-6);
    }
}

#[test]
fn logsumexp_axis_values() {
    let m = t(vec![0.0, 0.0, 1.0, 1.0], [2, 2]);
    let l1 = ops::logsumexp_axis(&m, 1).value();
    assert!((l1.data()[0] - (2.0f32).ln()).abs() < 1e-6);
    assert!((l1.data()[1] - (1.0 + (2.0f32).ln())).abs() < 1e-6);
    let l0 = ops::logsumexp_axis(&m, 0).value();
    // col: logsumexp(0,1) = ln(1+e)
    let expect = (1.0 + std::f32::consts::E).ln();
    assert!((l0.data()[0] - expect).abs() < 1e-6);
}

#[test]
fn logsumexp_handles_neg_infinity_mask() {
    let m = t(vec![f32::NEG_INFINITY, 0.0], [1, 2]);
    let l = ops::logsumexp_axis(&m, 1).value();
    assert!((l.data()[0] - 0.0).abs() < 1e-6);
}

#[test]
fn layer_norm_rows_zero_mean_unit_var() {
    let m = t(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], [2, 4]);
    let y = ops::layer_norm_rows(&m, 1e-5).value();
    for r in 0..2 {
        let row = y.row(r);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }
}

#[test]
fn l2_normalize_rows_unit_norm() {
    let m = t(vec![3.0, 4.0, 0.0, 5.0], [2, 2]);
    let y = ops::l2_normalize_rows(&m, 1e-8).value();
    assert_close(y.row(0), &[0.6, 0.8], 1e-6);
    assert_close(y.row(1), &[0.0, 1.0], 1e-6);
}

#[test]
fn gather_concat_stack_slice_values() {
    let table = t(vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0], [3, 2]);
    let g = ops::gather_rows(&table, &[2, 0, 2]);
    assert_eq!(g.value().data(), &[20.0, 21.0, 0.0, 1.0, 20.0, 21.0]);

    let a = t(vec![1.0, 2.0], [1, 2]);
    let b = t(vec![3.0], [1, 1]);
    assert_eq!(
        ops::concat_cols(&[a.clone(), b]).value().data(),
        &[1.0, 2.0, 3.0]
    );

    let c = t(vec![5.0, 6.0], [1, 2]);
    let cat = ops::concat_rows(&[a, c]);
    assert_eq!(cat.value().dims(), &[2, 2]);
    assert_eq!(cat.value().data(), &[1.0, 2.0, 5.0, 6.0]);

    let r0 = t(vec![1.0, 2.0], [2]);
    let r1 = t(vec![3.0, 4.0], [2]);
    let st = ops::stack_rows(&[r0, r1]);
    assert_eq!(st.value().dims(), &[2, 2]);

    assert_eq!(ops::index_row(&st, 1).value().data(), &[3.0, 4.0]);
    assert_eq!(ops::slice_rows(&st, 1, 1).value().data(), &[3.0, 4.0]);
}

#[test]
fn cross_entropy_matches_hand_computation() {
    // Uniform logits over 4 classes: loss = ln(4).
    let logits = t(vec![0.0; 8], [2, 4]);
    let loss = ops::cross_entropy_rows(&logits, &[1, 3], None);
    assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
}

#[test]
fn cross_entropy_weights_select_rows() {
    let logits = t(vec![10.0, 0.0, 0.0, 10.0], [2, 2]);
    // Row 0 is correct (target 0), row 1 wrong (target 0). Weight selects row 0.
    let l_sel = ops::cross_entropy_rows(&logits, &[0, 0], Some(&[1.0, 0.0]));
    assert!(l_sel.item() < 1e-3);
    let l_all = ops::cross_entropy_rows(&logits, &[0, 0], None);
    assert!(l_all.item() > 1.0);
}

#[test]
fn soft_cross_entropy_reduces_to_hard_on_onehot() {
    let logits = t(vec![0.2, -0.3, 1.0, 0.5, 0.1, -0.7], [2, 3]);
    let hard = ops::cross_entropy_rows(&logits, &[2, 0], None);
    let soft = NdArray::from_vec(vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0], [2, 3]);
    let soft_loss = ops::soft_cross_entropy_rows(&logits, &soft, None);
    assert!((hard.item() - soft_loss.item()).abs() < 1e-5);
}

#[test]
fn mse_value() {
    let a = t(vec![1.0, 2.0], [2]);
    let b = t(vec![0.0, 4.0], [2]);
    assert!((ops::mse(&a, &b).item() - 2.5).abs() < 1e-6);
}

#[test]
fn conv2d_identity_kernel() {
    // 1x1 kernel with weight 1 reproduces the input.
    let img = t(vec![1.0, 2.0, 3.0, 4.0], [1, 2, 2]);
    let w = t(vec![1.0], [1, 1, 1, 1]);
    let y = ops::conv2d(&img, &w, 1, 0).value();
    assert_eq!(y.dims(), &[1, 2, 2]);
    assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn conv2d_sum_kernel_with_padding() {
    // 3x3 all-ones kernel with pad 1: centre output = sum of all 4 pixels.
    let img = t(vec![1.0, 2.0, 3.0, 4.0], [1, 2, 2]);
    let w = t(vec![1.0; 9], [1, 1, 3, 3]);
    let y = ops::conv2d(&img, &w, 1, 1).value();
    assert_eq!(y.dims(), &[1, 2, 2]);
    // Every output sees all four pixels (the rest is zero padding).
    assert_eq!(y.data(), &[10.0, 10.0, 10.0, 10.0]);
}

#[test]
fn conv2d_stride_shrinks_output() {
    let img = t(vec![0.0; 16], [1, 4, 4]);
    let w = t(vec![1.0; 4], [1, 1, 2, 2]);
    let y = ops::conv2d(&img, &w, 2, 0).value();
    assert_eq!(y.dims(), &[1, 2, 2]);
}

#[test]
fn avg_pool_values() {
    let img = t(vec![1.0, 2.0, 3.0, 4.0], [1, 2, 2]);
    let y = ops::avg_pool2d(&img, 2).value();
    assert_eq!(y.dims(), &[1, 1, 1]);
    assert_eq!(y.data(), &[2.5]);
}

#[test]
fn reshape_and_flatten() {
    let a = t(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    let r = ops::reshape(&a, [4]);
    assert_eq!(r.value().dims(), &[4]);
    let f = ops::flatten(&a);
    assert_eq!(f.value().dims(), &[4]);
    assert_eq!(f.value().data(), a.value().data());
}

#[test]
fn transpose_value() {
    let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
    let tt = ops::transpose(&a).value();
    assert_eq!(tt.dims(), &[3, 2]);
    assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
}

#[test]
fn slice_cols_and_gather_elems_values() {
    let m = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
    let s = ops::slice_cols(&m, 1, 2);
    assert_eq!(s.value().dims(), &[2, 2]);
    assert_eq!(s.value().data(), &[2.0, 3.0, 5.0, 6.0]);
    let g = ops::gather_elems(&m, &[(0, 2), (1, 0)]);
    assert_eq!(g.value().data(), &[3.0, 4.0]);
}

#[test]
fn max_pool_values() {
    let img = t(vec![1.0, 5.0, 3.0, 2.0], [1, 2, 2]);
    let y = ops::max_pool2d(&img, 2).value();
    assert_eq!(y.dims(), &[1, 1, 1]);
    assert_eq!(y.data(), &[5.0]);
}

#[test]
fn gather_rows_empty_index_list() {
    let table = t(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    let g = ops::gather_rows(&table, &[]);
    assert_eq!(g.value().dims(), &[0, 2]);
    assert_eq!(g.value().numel(), 0);
}

#[test]
fn concat_rows_single_part_is_identity() {
    let a = t(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    let c = ops::concat_rows(std::slice::from_ref(&a));
    assert_eq!(c.value().data(), a.value().data());
}

#[test]
#[should_panic(expected = "inner dims")]
fn matmul_rejects_mismatched_inner_dims() {
    let a = t(vec![1.0; 6], [2, 3]);
    let b = t(vec![1.0; 8], [4, 2]);
    ops::matmul(&a, &b);
}
