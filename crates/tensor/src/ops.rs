//! Differentiable tensor operations.
//!
//! Every function takes [`Tensor`]s, computes the forward value eagerly and
//! registers a backward closure. Shapes are validated eagerly with panics
//! (model-construction bugs should fail loudly at the call site, not deep in
//! a backward sweep).
//!
//! Conventions used throughout the workspace:
//! * rank-2 tensors are `[rows, cols]`, row-major;
//! * "rows" ops treat the last axis as the feature axis;
//! * batching is expressed by the caller (documents iterate over sentences).

use rayon::prelude::*;

use crate::array::NdArray;
use crate::autograd::Tensor;

// ---------------------------------------------------------------------------
// Elementwise binary ops (identical shapes)
// ---------------------------------------------------------------------------

/// Elementwise `a + b` (identical shapes).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    let out = a.value().zip(&b.value(), |x, y| x + y);
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(|g, _out, parents| {
            parents[0].accumulate_grad(g);
            parents[1].accumulate_grad(g);
        }),
    )
}

/// Elementwise `a - b` (identical shapes).
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    let out = a.value().zip(&b.value(), |x, y| x - y);
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(|g, _out, parents| {
            parents[0].accumulate_grad(g);
            parents[1].accumulate_grad(&g.map(|v| -v));
        }),
    )
}

/// Elementwise `a * b` (identical shapes).
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    let (av, bv) = (a.value(), b.value());
    let out = av.zip(&bv, |x, y| x * y);
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(move |g, _out, parents| {
            parents[0].accumulate_grad(&g.zip(&bv, |gv, y| gv * y));
            parents[1].accumulate_grad(&g.zip(&av, |gv, x| gv * x));
        }),
    )
}

/// Elementwise `a / b` (identical shapes).
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    let (av, bv) = (a.value(), b.value());
    let out = av.zip(&bv, |x, y| x / y);
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(move |g, _out, parents| {
            parents[0].accumulate_grad(&g.zip(&bv, |gv, y| gv / y));
            let da = g.zip(&av, |gv, x| gv * x);
            parents[1].accumulate_grad(&da.zip(&bv, |v, y| -v / (y * y)));
        }),
    )
}

// ---------------------------------------------------------------------------
// Scalar ops
// ---------------------------------------------------------------------------

/// `a + s` for a Rust-side scalar `s`.
pub fn add_scalar(a: &Tensor, s: f32) -> Tensor {
    let out = a.value().map(|x| x + s);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(|g, _out, parents| parents[0].accumulate_grad(g)),
    )
}

/// `a * s` for a Rust-side scalar `s`.
pub fn mul_scalar(a: &Tensor, s: f32) -> Tensor {
    let out = a.value().map(|x| x * s);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| parents[0].accumulate_grad(&g.map(|v| v * s))),
    )
}

/// Elementwise negation.
pub fn neg(a: &Tensor) -> Tensor {
    mul_scalar(a, -1.0)
}

// ---------------------------------------------------------------------------
// Elementwise unary ops
// ---------------------------------------------------------------------------

/// Elementwise exponential.
pub fn exp(a: &Tensor) -> Tensor {
    let out = a.value().map(f32::exp);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(|g, out, parents| parents[0].accumulate_grad(&g.zip(out, |gv, y| gv * y))),
    )
}

/// Elementwise natural logarithm.
pub fn ln(a: &Tensor) -> Tensor {
    let av = a.value();
    let out = av.map(f32::ln);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| parents[0].accumulate_grad(&g.zip(&av, |gv, x| gv / x))),
    )
}

/// Elementwise square root.
pub fn sqrt(a: &Tensor) -> Tensor {
    let out = a.value().map(f32::sqrt);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(|g, out, parents| parents[0].accumulate_grad(&g.zip(out, |gv, y| gv * 0.5 / y))),
    )
}

/// Elementwise square.
pub fn square(a: &Tensor) -> Tensor {
    let av = a.value();
    let out = av.map(|x| x * x);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            parents[0].accumulate_grad(&g.zip(&av, |gv, x| gv * 2.0 * x))
        }),
    )
}

/// Elementwise ReLU.
pub fn relu(a: &Tensor) -> Tensor {
    let av = a.value();
    let out = av.map(|x| x.max(0.0));
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            parents[0].accumulate_grad(&g.zip(&av, |gv, x| if x > 0.0 { gv } else { 0.0 }))
        }),
    )
}

/// Elementwise logistic sigmoid.
pub fn sigmoid(a: &Tensor) -> Tensor {
    let out = a.value().map(|x| 1.0 / (1.0 + (-x).exp()));
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(|g, out, parents| {
            parents[0].accumulate_grad(&g.zip(out, |gv, y| gv * y * (1.0 - y)))
        }),
    )
}

/// Elementwise tanh.
pub fn tanh(a: &Tensor) -> Tensor {
    let out = a.value().map(f32::tanh);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(|g, out, parents| {
            parents[0].accumulate_grad(&g.zip(out, |gv, y| gv * (1.0 - y * y)))
        }),
    )
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

/// Elementwise GELU (tanh approximation, as in BERT).
pub fn gelu(a: &Tensor) -> Tensor {
    let av = a.value();
    let out = av.map(|x| 0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh()));
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            let dx = av.map(|x| {
                let u = GELU_C * (x + GELU_A * x * x * x);
                let t = u.tanh();
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
            });
            parents[0].accumulate_grad(&g.zip(&dx, |gv, d| gv * d));
        }),
    )
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

/// Reshape to a new shape with the same element count.
pub fn reshape(a: &Tensor, shape: impl Into<crate::array::Shape>) -> Tensor {
    let old = a.value().shape().clone();
    let out = a.value().reshape(shape);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            parents[0].accumulate_grad(&g.reshape(old.clone()));
        }),
    )
}

/// Transpose a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    let out = a.value().transpose2();
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(|g, _out, parents| parents[0].accumulate_grad(&g.transpose2())),
    )
}

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

/// Raw matmul kernel on arrays: `[m,k] x [k,n] -> [m,n]`.
///
/// Rows are parallelised with rayon above a work threshold; the inner loop is
/// written as an axpy over `b` rows, which vectorises well and is cache
/// friendly for row-major data.
pub fn matmul_raw(a: &NdArray, b: &NdArray) -> NdArray {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul: inner dims {} vs {}", k, k2);

    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];

    let row_work = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    };

    if m * n * k >= 32_768 && m > 1 {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, orow)| row_work(i, orow));
    } else {
        for (i, orow) in out.chunks_mut(n).enumerate() {
            row_work(i, orow);
        }
    }
    NdArray::from_vec(out, [m, n])
}

/// Differentiable matmul: `[m,k] x [k,n] -> [m,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (av, bv) = (a.value(), b.value());
    let out = matmul_raw(&av, &bv);
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(move |g, _out, parents| {
            // dA = g . B^T ; dB = A^T . g
            parents[0].accumulate_grad(&matmul_raw(g, &bv.transpose2()));
            parents[1].accumulate_grad(&matmul_raw(&av.transpose2(), g));
        }),
    )
}

// ---------------------------------------------------------------------------
// Broadcast ops for rank-2
// ---------------------------------------------------------------------------

/// Add a `[c]` vector to every row of a `[r,c]` matrix (bias add).
pub fn add_broadcast_row(m: &Tensor, v: &Tensor) -> Tensor {
    let mv = m.value();
    let vv = v.value();
    assert_eq!(mv.shape().rank(), 2, "add_broadcast_row lhs must be rank-2");
    assert_eq!(
        vv.dims(),
        &[mv.dims()[1]],
        "add_broadcast_row: vector {:?} vs matrix {:?}",
        vv.dims(),
        mv.dims()
    );
    let (r, c) = (mv.dims()[0], mv.dims()[1]);
    let mut out = mv.clone();
    {
        let od = out.data_mut();
        let vd = vv.data();
        for row in od.chunks_mut(c) {
            for (o, &b) in row.iter_mut().zip(vd.iter()) {
                *o += b;
            }
        }
    }
    Tensor::from_op(
        out,
        vec![m.clone(), v.clone()],
        Box::new(move |g, _out, parents| {
            parents[0].accumulate_grad(g);
            let mut dv = vec![0.0f32; c];
            for row in g.data().chunks(c) {
                for (d, &gv) in dv.iter_mut().zip(row.iter()) {
                    *d += gv;
                }
            }
            let _ = r;
            parents[1].accumulate_grad(&NdArray::from_vec(dv, [c]));
        }),
    )
}

/// Add `v[i]` to every element of row `i`: `[r,c] + [r] -> [r,c]`.
pub fn add_broadcast_col(m: &Tensor, v: &Tensor) -> Tensor {
    let mv = m.value();
    let vv = v.value();
    assert_eq!(mv.shape().rank(), 2, "add_broadcast_col lhs must be rank-2");
    assert_eq!(
        vv.dims(),
        &[mv.dims()[0]],
        "add_broadcast_col: vector {:?} vs matrix {:?}",
        vv.dims(),
        mv.dims()
    );
    let (r, c) = (mv.dims()[0], mv.dims()[1]);
    let mut out = mv.clone();
    {
        let od = out.data_mut();
        let vd = vv.data();
        for (i, row) in od.chunks_mut(c).enumerate() {
            let b = vd[i];
            for o in row.iter_mut() {
                *o += b;
            }
        }
    }
    Tensor::from_op(
        out,
        vec![m.clone(), v.clone()],
        Box::new(move |g, _out, parents| {
            parents[0].accumulate_grad(g);
            let mut dv = vec![0.0f32; r];
            for (i, row) in g.data().chunks(c).enumerate() {
                dv[i] = row.iter().sum();
            }
            parents[1].accumulate_grad(&NdArray::from_vec(dv, [r]));
        }),
    )
}

/// Multiply every row of `[r,c]` elementwise by a `[c]` vector.
pub fn mul_broadcast_row(m: &Tensor, v: &Tensor) -> Tensor {
    let mv = m.value();
    let vv = v.value();
    assert_eq!(
        vv.dims(),
        &[mv.dims()[1]],
        "mul_broadcast_row shape mismatch"
    );
    let c = mv.dims()[1];
    let mut out = mv.clone();
    {
        let od = out.data_mut();
        for row in od.chunks_mut(c) {
            for (o, &b) in row.iter_mut().zip(vv.data().iter()) {
                *o *= b;
            }
        }
    }
    Tensor::from_op(
        out,
        vec![m.clone(), v.clone()],
        Box::new(move |g, _out, parents| {
            let mut dm = g.clone();
            {
                let dd = dm.data_mut();
                for row in dd.chunks_mut(c) {
                    for (o, &b) in row.iter_mut().zip(vv.data().iter()) {
                        *o *= b;
                    }
                }
            }
            parents[0].accumulate_grad(&dm);
            let mut dv = vec![0.0f32; c];
            for (grow, mrow) in g.data().chunks(c).zip(mv.data().chunks(c)) {
                for ((d, &gv), &x) in dv.iter_mut().zip(grow.iter()).zip(mrow.iter()) {
                    *d += gv * x;
                }
            }
            parents[1].accumulate_grad(&NdArray::from_vec(dv, [c]));
        }),
    )
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sum of all elements → scalar.
pub fn sum_all(a: &Tensor) -> Tensor {
    let shape = a.value().shape().clone();
    let out = NdArray::scalar(a.value().sum_all());
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            parents[0].accumulate_grad(&NdArray::full(shape.clone(), g.item()));
        }),
    )
}

/// Mean of all elements → scalar.
pub fn mean_all(a: &Tensor) -> Tensor {
    let n = a.value().numel() as f32;
    mul_scalar(&sum_all(a), 1.0 / n)
}

/// Sum a `[r,c]` matrix along an axis: axis 0 → `[c]`, axis 1 → `[r]`.
pub fn sum_axis(a: &Tensor, axis: usize) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "sum_axis requires rank-2");
    let (r, c) = (av.dims()[0], av.dims()[1]);
    assert!(axis < 2, "axis must be 0 or 1");
    let out = if axis == 0 {
        let mut v = vec![0.0f32; c];
        for row in av.data().chunks(c) {
            for (d, &x) in v.iter_mut().zip(row.iter()) {
                *d += x;
            }
        }
        NdArray::from_vec(v, [c])
    } else {
        let mut v = vec![0.0f32; r];
        for (i, row) in av.data().chunks(c).enumerate() {
            v[i] = row.iter().sum();
        }
        NdArray::from_vec(v, [r])
    };
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            let mut dm = vec![0.0f32; r * c];
            if axis == 0 {
                for row in dm.chunks_mut(c) {
                    for (d, &gv) in row.iter_mut().zip(g.data().iter()) {
                        *d = gv;
                    }
                }
            } else {
                for (i, row) in dm.chunks_mut(c).enumerate() {
                    for d in row.iter_mut() {
                        *d = g.data()[i];
                    }
                }
            }
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

// ---------------------------------------------------------------------------
// Softmax family (rank-2, numerically stable)
// ---------------------------------------------------------------------------

fn softmax_rows_raw(av: &NdArray) -> NdArray {
    let (r, c) = (av.dims()[0], av.dims()[1]);
    let mut out = vec![0.0f32; r * c];
    for (orow, arow) in out.chunks_mut(c).zip(av.data().chunks(c)) {
        let mx = arow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for (o, &x) in orow.iter_mut().zip(arow.iter()) {
            *o = (x - mx).exp();
            z += *o;
        }
        for o in orow.iter_mut() {
            *o /= z;
        }
    }
    NdArray::from_vec(out, [r, c])
}

/// Row-wise softmax of a `[r,c]` matrix.
pub fn softmax_rows(a: &Tensor) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "softmax_rows requires rank-2");
    let c = av.dims()[1];
    let out = softmax_rows_raw(&av);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, out, parents| {
            // dx = y * (g - sum(g*y) per row)
            let mut dm = g.zip(out, |gv, y| gv * y);
            {
                let dd = dm.data_mut();
                for (drow, yrow) in dd.chunks_mut(c).zip(out.data().chunks(c)) {
                    let s: f32 = drow.iter().sum();
                    for (d, &y) in drow.iter_mut().zip(yrow.iter()) {
                        *d -= s * y;
                    }
                }
            }
            parents[0].accumulate_grad(&dm);
        }),
    )
}

/// Row-wise log-softmax of a `[r,c]` matrix.
pub fn log_softmax_rows(a: &Tensor) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "log_softmax_rows requires rank-2");
    let (r, c) = (av.dims()[0], av.dims()[1]);
    let mut out = vec![0.0f32; r * c];
    for (orow, arow) in out.chunks_mut(c).zip(av.data().chunks(c)) {
        let mx = arow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = mx + arow.iter().map(|&x| (x - mx).exp()).sum::<f32>().ln();
        for (o, &x) in orow.iter_mut().zip(arow.iter()) {
            *o = x - lse;
        }
    }
    let out = NdArray::from_vec(out, [r, c]);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, out, parents| {
            // dx = g - softmax * rowsum(g)
            let mut dm = g.clone();
            {
                let dd = dm.data_mut();
                for (drow, lrow) in dd.chunks_mut(c).zip(out.data().chunks(c)) {
                    let s: f32 = drow.iter().sum();
                    for (d, &lp) in drow.iter_mut().zip(lrow.iter()) {
                        *d -= s * lp.exp();
                    }
                }
            }
            parents[0].accumulate_grad(&dm);
        }),
    )
}

/// Log-sum-exp of a `[r,c]` matrix along an axis: axis 0 → `[c]`, axis 1 → `[r]`.
pub fn logsumexp_axis(a: &Tensor, axis: usize) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "logsumexp_axis requires rank-2");
    assert!(axis < 2);
    let (r, c) = (av.dims()[0], av.dims()[1]);
    let work = if axis == 1 {
        av.clone()
    } else {
        av.transpose2()
    };
    let (n, k) = (work.dims()[0], work.dims()[1]);
    let mut out = vec![0.0f32; n];
    for (i, row) in work.data().chunks(k).enumerate() {
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        out[i] = if mx == f32::NEG_INFINITY {
            f32::NEG_INFINITY
        } else {
            mx + row.iter().map(|&x| (x - mx).exp()).sum::<f32>().ln()
        };
    }
    let out = NdArray::from_vec(out, [n]);
    let av2 = av.clone();
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, out, parents| {
            // d a_ij = g_(reduced idx) * softmax along the axis
            let mut dm = vec![0.0f32; r * c];
            for i in 0..r {
                for j in 0..c {
                    let (ridx, x) = if axis == 1 {
                        (i, av2.at(&[i, j]))
                    } else {
                        (j, av2.at(&[i, j]))
                    };
                    let lse = out.data()[ridx];
                    let p = if lse.is_finite() {
                        (x - lse).exp()
                    } else {
                        0.0
                    };
                    dm[i * c + j] = g.data()[ridx] * p;
                }
            }
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

// ---------------------------------------------------------------------------
// Normalisation
// ---------------------------------------------------------------------------

/// Row-wise layer normalisation (no affine): `y = (x - mean) / sqrt(var + eps)`.
pub fn layer_norm_rows(a: &Tensor, eps: f32) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "layer_norm_rows requires rank-2");
    let (r, c) = (av.dims()[0], av.dims()[1]);
    let cf = c as f32;
    let mut out = vec![0.0f32; r * c];
    let mut inv_std = vec![0.0f32; r];
    for (i, (orow, arow)) in out.chunks_mut(c).zip(av.data().chunks(c)).enumerate() {
        let mean: f32 = arow.iter().sum::<f32>() / cf;
        let var: f32 = arow.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / cf;
        let is = 1.0 / (var + eps).sqrt();
        inv_std[i] = is;
        for (o, &x) in orow.iter_mut().zip(arow.iter()) {
            *o = (x - mean) * is;
        }
    }
    let out = NdArray::from_vec(out, [r, c]);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, out, parents| {
            // dx = inv_std * (g - mean(g) - y * mean(g*y)) per row
            let mut dm = vec![0.0f32; r * c];
            for i in 0..r {
                let grow = &g.data()[i * c..(i + 1) * c];
                let yrow = &out.data()[i * c..(i + 1) * c];
                let gmean: f32 = grow.iter().sum::<f32>() / cf;
                let gymean: f32 = grow
                    .iter()
                    .zip(yrow.iter())
                    .map(|(&gv, &y)| gv * y)
                    .sum::<f32>()
                    / cf;
                for j in 0..c {
                    dm[i * c + j] = inv_std[i] * (grow[j] - gmean - yrow[j] * gymean);
                }
            }
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

/// Row-wise L2 normalisation: `y = x / max(||x||, eps)`.
pub fn l2_normalize_rows(a: &Tensor, eps: f32) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "l2_normalize_rows requires rank-2");
    let (r, c) = (av.dims()[0], av.dims()[1]);
    let mut out = vec![0.0f32; r * c];
    let mut norms = vec![0.0f32; r];
    for (i, (orow, arow)) in out.chunks_mut(c).zip(av.data().chunks(c)).enumerate() {
        let n = arow.iter().map(|&x| x * x).sum::<f32>().sqrt().max(eps);
        norms[i] = n;
        for (o, &x) in orow.iter_mut().zip(arow.iter()) {
            *o = x / n;
        }
    }
    let out = NdArray::from_vec(out, [r, c]);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, out, parents| {
            // dx = (g - y * (g . y)) / ||x|| per row
            let mut dm = vec![0.0f32; r * c];
            for i in 0..r {
                let grow = &g.data()[i * c..(i + 1) * c];
                let yrow = &out.data()[i * c..(i + 1) * c];
                let dot: f32 = grow.iter().zip(yrow.iter()).map(|(&gv, &y)| gv * y).sum();
                for j in 0..c {
                    dm[i * c + j] = (grow[j] - yrow[j] * dot) / norms[i];
                }
            }
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

// ---------------------------------------------------------------------------
// Gather / concat / slicing
// ---------------------------------------------------------------------------

/// Gather rows of a `[v,d]` table by index: `table[idx] -> [n,d]`.
///
/// This is the embedding lookup; backward scatter-adds into the table.
pub fn gather_rows(table: &Tensor, idx: &[usize]) -> Tensor {
    let tv = table.value();
    assert_eq!(tv.shape().rank(), 2, "gather_rows requires rank-2 table");
    let (v, d) = (tv.dims()[0], tv.dims()[1]);
    let n = idx.len();
    let mut out = vec![0.0f32; n * d];
    for (orow, &i) in out.chunks_mut(d).zip(idx.iter()) {
        assert!(i < v, "gather_rows: index {} out of bounds ({} rows)", i, v);
        orow.copy_from_slice(&tv.data()[i * d..(i + 1) * d]);
    }
    let out = NdArray::from_vec(out, [n, d]);
    let idx = idx.to_vec();
    Tensor::from_op(
        out,
        vec![table.clone()],
        Box::new(move |g, _out, parents| {
            let mut dt = vec![0.0f32; v * d];
            for (grow, &i) in g.data().chunks(d).zip(idx.iter()) {
                for (t, &gv) in dt[i * d..(i + 1) * d].iter_mut().zip(grow.iter()) {
                    *t += gv;
                }
            }
            parents[0].accumulate_grad(&NdArray::from_vec(dt, [v, d]));
        }),
    )
}

/// Concatenate rank-2 tensors along axis 1 (columns). All rows must match.
pub fn concat_cols(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_cols of zero tensors");
    let values: Vec<NdArray> = parts.iter().map(|t| t.value()).collect();
    let r = values[0].dims()[0];
    for v in &values {
        assert_eq!(v.shape().rank(), 2, "concat_cols requires rank-2");
        assert_eq!(v.dims()[0], r, "concat_cols: row mismatch");
    }
    let widths: Vec<usize> = values.iter().map(|v| v.dims()[1]).collect();
    let total: usize = widths.iter().sum();
    let mut out = vec![0.0f32; r * total];
    for i in 0..r {
        let mut off = 0;
        for (v, &w) in values.iter().zip(widths.iter()) {
            out[i * total + off..i * total + off + w]
                .copy_from_slice(&v.data()[i * w..(i + 1) * w]);
            off += w;
        }
    }
    let out = NdArray::from_vec(out, [r, total]);
    Tensor::from_op(
        out,
        parts.to_vec(),
        Box::new(move |g, _out, parents| {
            let mut off = 0;
            for (p, &w) in parents.iter().zip(widths.iter()) {
                let mut dp = vec![0.0f32; r * w];
                for i in 0..r {
                    dp[i * w..(i + 1) * w]
                        .copy_from_slice(&g.data()[i * total + off..i * total + off + w]);
                }
                p.accumulate_grad(&NdArray::from_vec(dp, [r, w]));
                off += w;
            }
        }),
    )
}

/// Concatenate rank-2 tensors along axis 0 (rows). All columns must match.
pub fn concat_rows(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_rows of zero tensors");
    let values: Vec<NdArray> = parts.iter().map(|t| t.value()).collect();
    let c = values[0].dims()[1];
    for v in &values {
        assert_eq!(v.shape().rank(), 2, "concat_rows requires rank-2");
        assert_eq!(v.dims()[1], c, "concat_rows: column mismatch");
    }
    let heights: Vec<usize> = values.iter().map(|v| v.dims()[0]).collect();
    let total: usize = heights.iter().sum();
    let mut out = Vec::with_capacity(total * c);
    for v in &values {
        out.extend_from_slice(v.data());
    }
    let out = NdArray::from_vec(out, [total, c]);
    Tensor::from_op(
        out,
        parts.to_vec(),
        Box::new(move |g, _out, parents| {
            let mut off = 0;
            for (p, &h) in parents.iter().zip(heights.iter()) {
                let dp = g.data()[off * c..(off + h) * c].to_vec();
                p.accumulate_grad(&NdArray::from_vec(dp, [h, c]));
                off += h;
            }
        }),
    )
}

/// Stack `n` rank-1 `[d]` tensors into a `[n,d]` matrix.
pub fn stack_rows(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "stack_rows of zero tensors");
    let values: Vec<NdArray> = parts.iter().map(|t| t.value()).collect();
    let d = values[0].numel();
    for v in &values {
        assert_eq!(v.shape().rank(), 1, "stack_rows requires rank-1 parts");
        assert_eq!(v.numel(), d, "stack_rows: width mismatch");
    }
    let n = parts.len();
    let mut out = Vec::with_capacity(n * d);
    for v in &values {
        out.extend_from_slice(v.data());
    }
    let out = NdArray::from_vec(out, [n, d]);
    Tensor::from_op(
        out,
        parts.to_vec(),
        Box::new(move |g, _out, parents| {
            for (i, p) in parents.iter().enumerate() {
                let dp = g.data()[i * d..(i + 1) * d].to_vec();
                p.accumulate_grad(&NdArray::from_vec(dp, [d]));
            }
        }),
    )
}

/// Extract row `i` of a `[r,c]` matrix as a `[c]` vector.
pub fn index_row(a: &Tensor, i: usize) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "index_row requires rank-2");
    let (r, c) = (av.dims()[0], av.dims()[1]);
    assert!(i < r, "index_row: {} out of {} rows", i, r);
    let out = NdArray::from_vec(av.row(i).to_vec(), [c]);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            let mut dm = vec![0.0f32; r * c];
            dm[i * c..(i + 1) * c].copy_from_slice(g.data());
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

/// Contiguous column slice `[start, start+len)` of a `[r,c]` matrix.
pub fn slice_cols(a: &Tensor, start: usize, len: usize) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "slice_cols requires rank-2");
    let (r, c) = (av.dims()[0], av.dims()[1]);
    assert!(start + len <= c, "slice_cols out of bounds");
    let mut out = vec![0.0f32; r * len];
    for i in 0..r {
        out[i * len..(i + 1) * len].copy_from_slice(&av.data()[i * c + start..i * c + start + len]);
    }
    let out = NdArray::from_vec(out, [r, len]);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            let mut dm = vec![0.0f32; r * c];
            for i in 0..r {
                dm[i * c + start..i * c + start + len]
                    .copy_from_slice(&g.data()[i * len..(i + 1) * len]);
            }
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

/// Gather individual elements of a `[r,c]` matrix by `(row, col)` pairs into
/// a `[n]` vector. Backward scatter-adds. Used for CRF gold-path scores.
pub fn gather_elems(a: &Tensor, coords: &[(usize, usize)]) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "gather_elems requires rank-2");
    let (r, c) = (av.dims()[0], av.dims()[1]);
    let out: Vec<f32> = coords
        .iter()
        .map(|&(i, j)| {
            assert!(
                i < r && j < c,
                "gather_elems: ({},{}) out of [{},{}]",
                i,
                j,
                r,
                c
            );
            av.data()[i * c + j]
        })
        .collect();
    let n = coords.len();
    let out = NdArray::from_vec(out, [n]);
    let coords = coords.to_vec();
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            let mut dm = vec![0.0f32; r * c];
            for (k, &(i, j)) in coords.iter().enumerate() {
                dm[i * c + j] += g.data()[k];
            }
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

/// Contiguous row slice `[start, start+len)` of a `[r,c]` matrix.
pub fn slice_rows(a: &Tensor, start: usize, len: usize) -> Tensor {
    let av = a.value();
    assert_eq!(av.shape().rank(), 2, "slice_rows requires rank-2");
    let (r, c) = (av.dims()[0], av.dims()[1]);
    assert!(start + len <= r, "slice_rows out of bounds");
    let out = NdArray::from_vec(av.data()[start * c..(start + len) * c].to_vec(), [len, c]);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            let mut dm = vec![0.0f32; r * c];
            dm[start * c..(start + len) * c].copy_from_slice(g.data());
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

/// Cross-entropy with integer targets over `[r,c]` logits, optionally
/// weighted per row. Returns a scalar: `sum_i w_i * nll_i / sum_i w_i`.
///
/// Used for MLM (weights select masked positions) and plain classification
/// (weights `None` → uniform).
pub fn cross_entropy_rows(logits: &Tensor, targets: &[usize], weights: Option<&[f32]>) -> Tensor {
    let lv = logits.value();
    assert_eq!(lv.shape().rank(), 2, "cross_entropy_rows requires rank-2");
    let (r, c) = (lv.dims()[0], lv.dims()[1]);
    assert_eq!(
        targets.len(),
        r,
        "cross_entropy_rows: targets/rows mismatch"
    );
    let w: Vec<f32> = match weights {
        Some(w) => {
            assert_eq!(w.len(), r, "cross_entropy_rows: weights/rows mismatch");
            w.to_vec()
        }
        None => vec![1.0; r],
    };
    let wsum: f32 = w.iter().sum::<f32>().max(1e-12);

    let probs = softmax_rows_raw(&lv);
    let mut loss = 0.0f32;
    for (i, (&t, prow)) in targets.iter().zip(probs.data().chunks(c)).enumerate() {
        assert!(t < c, "target {} out of {} classes", t, c);
        loss -= w[i] * prow[t].max(1e-30).ln();
    }
    loss /= wsum;

    let targets = targets.to_vec();
    Tensor::from_op(
        NdArray::scalar(loss),
        vec![logits.clone()],
        Box::new(move |g, _out, parents| {
            let gs = g.item();
            let mut dm = probs.clone();
            {
                let dd = dm.data_mut();
                for (i, &t) in targets.iter().enumerate() {
                    dd[i * c + t] -= 1.0;
                    for v in dd[i * c..(i + 1) * c].iter_mut() {
                        *v *= gs * w[i] / wsum;
                    }
                }
            }
            parents[0].accumulate_grad(&dm);
        }),
    )
}

/// Soft-target cross-entropy: `-(1/W) * sum_i w_i * sum_c S_ic log p_ic` for
/// `[r,c]` logits and non-differentiable soft targets `S`.
///
/// This is Eq. (10)/(12) of the paper — the student objective against the
/// teacher's re-weighted soft pseudo-labels, with `weights` implementing
/// high-confidence token selection (weight 0 drops a token).
pub fn soft_cross_entropy_rows(logits: &Tensor, soft: &NdArray, weights: Option<&[f32]>) -> Tensor {
    let lv = logits.value();
    assert_eq!(
        lv.dims(),
        soft.dims(),
        "soft_cross_entropy_rows shape mismatch"
    );
    let (r, c) = (lv.dims()[0], lv.dims()[1]);
    let w: Vec<f32> = match weights {
        Some(w) => {
            assert_eq!(w.len(), r);
            w.to_vec()
        }
        None => vec![1.0; r],
    };
    let wsum: f32 = w.iter().sum::<f32>().max(1e-12);

    let probs = softmax_rows_raw(&lv);
    let mut loss = 0.0f32;
    for i in 0..r {
        let prow = &probs.data()[i * c..(i + 1) * c];
        let srow = &soft.data()[i * c..(i + 1) * c];
        let nll: f32 = srow
            .iter()
            .zip(prow.iter())
            .map(|(&s, &p)| -s * p.max(1e-30).ln())
            .sum();
        loss += w[i] * nll;
    }
    loss /= wsum;

    let soft = soft.clone();
    Tensor::from_op(
        NdArray::scalar(loss),
        vec![logits.clone()],
        Box::new(move |g, _out, parents| {
            // d/dlogit = p * sum_c(S) - S, row-weighted.
            let gs = g.item();
            let mut dm = vec![0.0f32; r * c];
            for i in 0..r {
                let prow = &probs.data()[i * c..(i + 1) * c];
                let srow = &soft.data()[i * c..(i + 1) * c];
                let ssum: f32 = srow.iter().sum();
                for j in 0..c {
                    dm[i * c + j] = gs * w[i] / wsum * (prow[j] * ssum - srow[j]);
                }
            }
            parents[0].accumulate_grad(&NdArray::from_vec(dm, [r, c]));
        }),
    )
}

/// Mean squared error between two same-shape tensors → scalar.
pub fn mse(a: &Tensor, b: &Tensor) -> Tensor {
    let d = sub(a, b);
    mean_all(&square(&d))
}

// ---------------------------------------------------------------------------
// Convolution (small CNN for visual region features)
// ---------------------------------------------------------------------------

/// 2-D convolution: input `[ci,h,w]`, weight `[co,ci,kh,kw]`, stride `s`,
/// zero padding `p` → `[co,h',w']`.
pub fn conv2d(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
    let iv = input.value();
    let wv = weight.value();
    assert_eq!(iv.shape().rank(), 3, "conv2d input must be [ci,h,w]");
    assert_eq!(wv.shape().rank(), 4, "conv2d weight must be [co,ci,kh,kw]");
    let (ci, h, w) = (iv.dims()[0], iv.dims()[1], iv.dims()[2]);
    let (co, ci2, kh, kw) = (wv.dims()[0], wv.dims()[1], wv.dims()[2], wv.dims()[3]);
    assert_eq!(ci, ci2, "conv2d channel mismatch");
    assert!(stride >= 1);
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;

    let at_in = |c: usize, y: isize, x: isize| -> f32 {
        if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
            0.0
        } else {
            iv.data()[c * h * w + y as usize * w + x as usize]
        }
    };

    let mut out = vec![0.0f32; co * oh * ow];
    for o in 0..co {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for c in 0..ci {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let y = (oy * stride + ky) as isize - pad as isize;
                            let x = (ox * stride + kx) as isize - pad as isize;
                            acc += at_in(c, y, x) * wv.data()[((o * ci + c) * kh + ky) * kw + kx];
                        }
                    }
                }
                out[(o * oh + oy) * ow + ox] = acc;
            }
        }
    }
    let out = NdArray::from_vec(out, [co, oh, ow]);
    Tensor::from_op(
        out,
        vec![input.clone(), weight.clone()],
        Box::new(move |g, _out, parents| {
            let mut di = vec![0.0f32; ci * h * w];
            let mut dw = vec![0.0f32; co * ci * kh * kw];
            for o in 0..co {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = g.data()[(o * oh + oy) * ow + ox];
                        if gv == 0.0 {
                            continue;
                        }
                        for c in 0..ci {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let y = (oy * stride + ky) as isize - pad as isize;
                                    let x = (ox * stride + kx) as isize - pad as isize;
                                    if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
                                        continue;
                                    }
                                    let (yu, xu) = (y as usize, x as usize);
                                    let widx = ((o * ci + c) * kh + ky) * kw + kx;
                                    di[c * h * w + yu * w + xu] += gv * wv.data()[widx];
                                    dw[widx] += gv * iv.data()[c * h * w + yu * w + xu];
                                }
                            }
                        }
                    }
                }
            }
            parents[0].accumulate_grad(&NdArray::from_vec(di, [ci, h, w]));
            parents[1].accumulate_grad(&NdArray::from_vec(dw, [co, ci, kh, kw]));
        }),
    )
}

/// Non-overlapping average pooling of a `[c,h,w]` tensor by `k × k` windows.
/// `h` and `w` must be divisible by `k`.
pub fn avg_pool2d(input: &Tensor, k: usize) -> Tensor {
    let iv = input.value();
    assert_eq!(iv.shape().rank(), 3, "avg_pool2d input must be [c,h,w]");
    let (c, h, w) = (iv.dims()[0], iv.dims()[1], iv.dims()[2]);
    assert!(
        h % k == 0 && w % k == 0,
        "avg_pool2d: dims not divisible by k"
    );
    let (oh, ow) = (h / k, w / k);
    let kk = (k * k) as f32;
    let mut out = vec![0.0f32; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..k {
                    for kx in 0..k {
                        acc += iv.data()[ch * h * w + (oy * k + ky) * w + ox * k + kx];
                    }
                }
                out[(ch * oh + oy) * ow + ox] = acc / kk;
            }
        }
    }
    let out = NdArray::from_vec(out, [c, oh, ow]);
    Tensor::from_op(
        out,
        vec![input.clone()],
        Box::new(move |g, _out, parents| {
            let mut di = vec![0.0f32; c * h * w];
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = g.data()[(ch * oh + oy) * ow + ox] / kk;
                        for ky in 0..k {
                            for kx in 0..k {
                                di[ch * h * w + (oy * k + ky) * w + ox * k + kx] += gv;
                            }
                        }
                    }
                }
            }
            parents[0].accumulate_grad(&NdArray::from_vec(di, [c, h, w]));
        }),
    )
}

/// Flatten any tensor into rank-1.
pub fn flatten(a: &Tensor) -> Tensor {
    let n = a.value().numel();
    reshape(a, [n])
}

/// Non-overlapping max pooling of a `[c,h,w]` tensor by `k × k` windows.
/// `h` and `w` must be divisible by `k`.
pub fn max_pool2d(input: &Tensor, k: usize) -> Tensor {
    let iv = input.value();
    assert_eq!(iv.shape().rank(), 3, "max_pool2d input must be [c,h,w]");
    let (c, h, w) = (iv.dims()[0], iv.dims()[1], iv.dims()[2]);
    assert!(
        h % k == 0 && w % k == 0,
        "max_pool2d: dims not divisible by k"
    );
    let (oh, ow) = (h / k, w / k);
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    let mut argmax = vec![0usize; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let oi = (ch * oh + oy) * ow + ox;
                for ky in 0..k {
                    for kx in 0..k {
                        let ii = ch * h * w + (oy * k + ky) * w + ox * k + kx;
                        if iv.data()[ii] > out[oi] {
                            out[oi] = iv.data()[ii];
                            argmax[oi] = ii;
                        }
                    }
                }
            }
        }
    }
    let out = NdArray::from_vec(out, [c, oh, ow]);
    Tensor::from_op(
        out,
        vec![input.clone()],
        Box::new(move |g, _out, parents| {
            let mut di = vec![0.0f32; c * h * w];
            for (oi, &src) in argmax.iter().enumerate() {
                di[src] += g.data()[oi];
            }
            parents[0].accumulate_grad(&NdArray::from_vec(di, [c, h, w]));
        }),
    )
}
