//! Dense row-major `f32` n-dimensional arrays with copy-on-write storage.
//!
//! [`NdArray`] is the value type flowing through the autograd graph. Storage
//! is an `Arc<Vec<f32>>`: clones are O(1) and mutation goes through
//! [`NdArray::data_mut`], which clones the buffer only when shared.

use std::fmt;
use std::sync::Arc;

/// The shape of an [`NdArray`]: a small vector of dimension sizes.
///
/// Rank 0 (scalar) is represented by an empty dims list and one element.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Shape of a scalar.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension size at `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1usize;
        for (s, &d) in strides.iter_mut().zip(self.0.iter()).rev() {
            *s = acc;
            acc *= d;
        }
        strides
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

/// A dense row-major `f32` n-dimensional array.
///
/// Cloning is O(1); the underlying buffer is shared until mutated.
#[derive(Clone)]
pub struct NdArray {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl NdArray {
    /// Create an array from a flat buffer and shape. Panics if sizes differ.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "NdArray::from_vec: buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        NdArray {
            shape,
            data: Arc::new(data),
        }
    }

    /// A scalar array.
    pub fn scalar(v: f32) -> Self {
        NdArray::from_vec(vec![v], Shape::scalar())
    }

    /// All-zeros array of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        NdArray {
            shape,
            data: Arc::new(vec![0.0; n]),
        }
    }

    /// All-ones array of the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        NdArray::full(shape, 1.0)
    }

    /// Constant-filled array of the given shape.
    pub fn full(shape: impl Into<Shape>, v: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        NdArray {
            shape,
            data: Arc::new(vec![v; n]),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.shape.0
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Read-only view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer (copy-on-write).
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// The single value of a scalar or one-element array.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on array with {} elements",
            self.numel()
        );
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Set element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], v: f32) {
        let i = self.flat_index(idx);
        self.data_mut()[i] = v;
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.rank(), "index rank mismatch");
        let strides = self.shape.strides();
        idx.iter()
            .zip(strides.iter())
            .zip(self.shape.0.iter())
            .map(|((&i, &s), &d)| {
                assert!(i < d, "index {} out of bounds for dim {}", i, d);
                i * s
            })
            .sum()
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> NdArray {
        let shape = shape.into();
        assert_eq!(
            self.numel(),
            shape.numel(),
            "reshape: {} elements to shape {:?}",
            self.numel(),
            shape
        );
        NdArray {
            shape,
            data: Arc::clone(&self.data),
        }
    }

    /// Elementwise map into a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> NdArray {
        NdArray::from_vec(
            self.data.iter().map(|&x| f(x)).collect(),
            self.shape.clone(),
        )
    }

    /// Elementwise combine with another array of identical shape.
    pub fn zip(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        assert_eq!(
            self.dims(),
            other.dims(),
            "zip: shape mismatch {:?} vs {:?}",
            self.shape,
            other.shape
        );
        NdArray::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape.clone(),
        )
    }

    /// `self += other` (identical shapes, copy-on-write).
    pub fn add_assign(&mut self, other: &NdArray) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "add_assign: shape mismatch {:?} vs {:?}",
            self.shape,
            other.shape
        );
        let dst = self.data_mut();
        for (d, &s) in dst.iter_mut().zip(other.data.iter()) {
            *d += s;
        }
    }

    /// `self += alpha * other` (identical shapes).
    pub fn axpy(&mut self, alpha: f32, other: &NdArray) {
        assert_eq!(self.dims(), other.dims(), "axpy: shape mismatch");
        let dst = self.data_mut();
        for (d, &s) in dst.iter_mut().zip(other.data.iter()) {
            *d += alpha * s;
        }
    }

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element (NaN-propagating max over finite data).
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in the flat buffer.
    pub fn argmax_flat(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Row `r` of a rank-2 array as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires rank-2");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Transpose of a rank-2 array.
    pub fn transpose2(&self) -> NdArray {
        assert_eq!(self.shape.rank(), 2, "transpose2 requires rank-2");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        NdArray::from_vec(out, [c, r])
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Frobenius / L2 norm of the flat buffer.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Debug for NdArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NdArray{:?} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", &self.data[..])
        } else {
            write!(
                f,
                "[{:?}, ... ({} elements)]",
                &self.data[..8],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_strides_row_major() {
        let s = Shape(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(NdArray::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn indexing_round_trip() {
        let mut a = NdArray::zeros([2, 3]);
        a.set(&[1, 2], 7.0);
        assert_eq!(a.at(&[1, 2]), 7.0);
        assert_eq!(a.at(&[0, 0]), 0.0);
        assert_eq!(a.data()[5], 7.0);
    }

    #[test]
    fn copy_on_write_preserves_clone() {
        let a = NdArray::ones([4]);
        let mut b = a.clone();
        b.data_mut()[0] = 9.0;
        assert_eq!(a.data()[0], 1.0);
        assert_eq!(b.data()[0], 9.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = NdArray::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]);
        let t = a.transpose2();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        let tt = t.transpose2();
        assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn zip_and_map() {
        let a = NdArray::from_vec(vec![1.0, 2.0], [2]);
        let b = NdArray::from_vec(vec![3.0, 5.0], [2]);
        assert_eq!(a.zip(&b, |x, y| x * y).data(), &[3.0, 10.0]);
        assert_eq!(a.map(|x| x + 1.0).data(), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_size_mismatch_panics() {
        NdArray::from_vec(vec![1.0, 2.0], [3]);
    }

    #[test]
    fn argmax_and_norms() {
        let a = NdArray::from_vec(vec![1.0, -4.0, 3.0], [3]);
        assert_eq!(a.argmax_flat(), 2);
        assert_eq!(a.max_all(), 3.0);
        assert!((a.l2_norm() - (26.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(a.sum_all(), 0.0);
    }
}
