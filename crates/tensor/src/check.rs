//! Finite-difference gradient checking.
//!
//! Used by tests throughout the workspace to certify that every
//! differentiable op and layer computes correct gradients: the analytic
//! gradient from [`Tensor::backward`] is compared against a central
//! difference of the loss.

use crate::array::NdArray;
use crate::autograd::Tensor;

/// Result of a gradient check: the largest relative error observed.
#[derive(Debug, Clone, Copy)]
pub struct GradCheck {
    /// Maximum relative error across all checked coordinates.
    pub max_rel_err: f32,
    /// Coordinate (parameter index, flat element index) of the worst error.
    pub worst: (usize, usize),
}

/// Compare analytic vs finite-difference gradients.
///
/// `f` builds a scalar loss from the given parameter tensors. Each call must
/// rebuild the graph (define-by-run). `eps` is the central-difference step;
/// `1e-2` works well in `f32` for smooth losses.
///
/// Relative error uses `|a - n| / max(1, |a| + |n|)`, so tiny gradients are
/// compared absolutely.
pub fn grad_check(params: &[Tensor], f: impl Fn(&[Tensor]) -> Tensor, eps: f32) -> GradCheck {
    // Analytic pass.
    for p in params {
        p.zero_grad();
    }
    let loss = f(params);
    loss.backward();
    let analytic: Vec<NdArray> = params
        .iter()
        .map(|p| {
            p.grad()
                .unwrap_or_else(|| NdArray::zeros(p.value().shape().clone()))
        })
        .collect();

    let mut max_rel_err = 0.0f32;
    let mut worst = (0, 0);
    for (pi, p) in params.iter().enumerate() {
        let base = p.value();
        for ei in 0..base.numel() {
            let mut plus = base.clone();
            plus.data_mut()[ei] += eps;
            p.set_value(plus);
            let lp = f(params).item();

            let mut minus = base.clone();
            minus.data_mut()[ei] -= eps;
            p.set_value(minus);
            let lm = f(params).item();

            p.set_value(base.clone());

            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[pi].data()[ei];
            let rel = (a - numeric).abs() / f32::max(1.0, a.abs() + numeric.abs());
            if rel > max_rel_err {
                max_rel_err = rel;
                worst = (pi, ei);
            }
        }
    }
    GradCheck { max_rel_err, worst }
}

/// Assert that a gradient check passes with tolerance `tol`.
pub fn assert_grads_close(params: &[Tensor], f: impl Fn(&[Tensor]) -> Tensor, eps: f32, tol: f32) {
    let r = grad_check(params, f, eps);
    assert!(
        r.max_rel_err <= tol,
        "gradient check failed: max relative error {} at param {} element {} (tolerance {})",
        r.max_rel_err,
        r.worst.0,
        r.worst.1,
        tol
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn catches_correct_gradient() {
        let a = Tensor::param(NdArray::from_vec(vec![0.5, -0.3, 1.2], [3]));
        assert_grads_close(&[a], |p| ops::mean_all(&ops::square(&p[0])), 1e-2, 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn catches_wrong_gradient() {
        // A deliberately wrong op: forward x^2, backward claims d/dx = x.
        let a = Tensor::param(NdArray::from_vec(vec![1.0, 2.0], [2]));
        let broken = |p: &[Tensor]| {
            let av = p[0].value();
            let out = av.map(|x| x * x);
            let wrong = Tensor::from_op(
                out,
                vec![p[0].clone()],
                Box::new(move |g, _o, parents| {
                    parents[0].accumulate_grad(&g.zip(&av, |gv, x| gv * x))
                }),
            );
            ops::mean_all(&wrong)
        };
        assert_grads_close(&[a], broken, 1e-2, 1e-2);
    }
}
