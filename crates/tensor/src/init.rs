//! Weight initialisation helpers.
//!
//! All randomness in the workspace flows through seeded [`rand_chacha`] RNGs
//! so every experiment is reproducible from its `--seed`.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::array::{NdArray, Shape};

/// A seeded RNG for deterministic experiments.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Uniform init in `[-limit, limit]`.
pub fn uniform(rng: &mut impl Rng, shape: impl Into<Shape>, limit: f32) -> NdArray {
    let shape = shape.into();
    let n = shape.numel();
    let data = (0..n).map(|_| rng.gen_range(-limit..=limit)).collect();
    NdArray::from_vec(data, shape)
}

/// Xavier/Glorot uniform init for a `[fan_in, fan_out]`-shaped weight.
pub fn xavier(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> NdArray {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, [fan_in, fan_out], limit)
}

/// Approximately normal init (Irwin–Hall sum of 12 uniforms), mean 0.
pub fn normal(rng: &mut impl Rng, shape: impl Into<Shape>, std: f32) -> NdArray {
    let shape = shape.into();
    let n = shape.numel();
    let data = (0..n)
        .map(|_| {
            let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() - 6.0;
            s * std
        })
        .collect();
    NdArray::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform(&mut seeded_rng(7), [100], 1.0);
        let b = uniform(&mut seeded_rng(7), [100], 1.0);
        assert_eq!(a.data(), b.data());
        let c = uniform(&mut seeded_rng(8), [100], 1.0);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn xavier_within_limit() {
        let w = xavier(&mut seeded_rng(1), 64, 64);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= limit + 1e-6));
        assert_eq!(w.dims(), &[64, 64]);
    }

    #[test]
    fn normal_statistics_plausible() {
        let w = normal(&mut seeded_rng(2), [10_000], 0.5);
        let mean: f32 = w.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = w
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.02, "mean {}", mean);
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }
}
