//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tensor`] wraps an [`NdArray`] value in a shared graph node. Ops (in
//! [`crate::ops`]) build new tensors whose nodes record their parents and a
//! backward closure. [`Tensor::backward`] topologically sorts the reachable
//! graph and runs the closures in reverse order, accumulating gradients into
//! every node with `requires_grad`.
//!
//! The graph is single-threaded (`Rc`/`RefCell`); heavy kernels parallelise
//! internally over raw buffers with rayon.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::array::NdArray;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Backward closure: `(grad_out, out_value, parents)`.
///
/// Implementations must call [`Tensor::accumulate_grad`] on the parents they
/// differentiate with respect to.
pub type BackwardFn = Box<dyn Fn(&NdArray, &NdArray, &[Tensor])>;

pub(crate) struct Node {
    id: u64,
    value: RefCell<NdArray>,
    grad: RefCell<Option<NdArray>>,
    parents: Vec<Tensor>,
    backward: Option<BackwardFn>,
    requires_grad: bool,
}

/// A node in the autograd graph. Cheap to clone (shared pointer).
///
/// ```
/// use resuformer_tensor::{NdArray, Tensor, ops};
///
/// let w = Tensor::param(NdArray::from_vec(vec![2.0], [1]));
/// let loss = ops::square(&w);            // loss = w²
/// loss.backward();
/// assert_eq!(w.grad().unwrap().item(), 4.0); // d(w²)/dw = 2w
/// ```
#[derive(Clone)]
pub struct Tensor(pub(crate) Rc<Node>);

// Dropping a deep graph (e.g. an LSTM unrolled over hundreds of steps) must
// not recurse through the `parents` chain; this steals parents into an
// explicit worklist so each node drops with no parents left.
impl Drop for Node {
    fn drop(&mut self) {
        let mut stack: Vec<Tensor> = std::mem::take(&mut self.parents);
        while let Some(t) = stack.pop() {
            if let Ok(mut node) = Rc::try_unwrap(t.0) {
                stack.append(&mut node.parents);
            }
        }
    }
}

impl Tensor {
    /// A leaf tensor that participates in gradient computation (a parameter).
    pub fn param(value: NdArray) -> Tensor {
        Tensor(Rc::new(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            parents: Vec::new(),
            backward: None,
            requires_grad: true,
        }))
    }

    /// A leaf tensor excluded from gradient computation (input data).
    pub fn constant(value: NdArray) -> Tensor {
        Tensor(Rc::new(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            parents: Vec::new(),
            backward: None,
            requires_grad: false,
        }))
    }

    /// Scalar constant convenience.
    pub fn scalar(v: f32) -> Tensor {
        Tensor::constant(NdArray::scalar(v))
    }

    /// Internal: build an op output node.
    ///
    /// If no parent requires a gradient the parents and closure are dropped,
    /// pruning the graph for pure-inference passes.
    pub fn from_op(value: NdArray, parents: Vec<Tensor>, backward: BackwardFn) -> Tensor {
        let requires_grad = parents.iter().any(|p| p.0.requires_grad);
        if requires_grad {
            Tensor(Rc::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                parents,
                backward: Some(backward),
                requires_grad: true,
            }))
        } else {
            Tensor::constant(value)
        }
    }

    /// Unique node id (diagnostics).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Snapshot of the current value (O(1): copy-on-write clone).
    pub fn value(&self) -> NdArray {
        self.0.value.borrow().clone()
    }

    /// Dimension sizes of the value.
    pub fn dims(&self) -> Vec<usize> {
        self.0.value.borrow().dims().to_vec()
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        self.0.value.borrow().item()
    }

    /// Whether this node accumulates gradient.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// Replace the stored value (optimizer updates on leaf parameters).
    pub fn set_value(&self, value: NdArray) {
        assert_eq!(
            self.0.value.borrow().dims(),
            value.dims(),
            "set_value: shape mismatch"
        );
        *self.0.value.borrow_mut() = value;
    }

    /// Current gradient, if any has been accumulated.
    pub fn grad(&self) -> Option<NdArray> {
        self.0.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Add `g` into this node's gradient buffer (no-op unless
    /// `requires_grad`).
    pub fn accumulate_grad(&self, g: &NdArray) {
        if !self.0.requires_grad {
            return;
        }
        debug_assert_eq!(
            self.0.value.borrow().dims(),
            g.dims(),
            "accumulate_grad: gradient shape {:?} does not match value shape {:?}",
            g.dims(),
            self.0.value.borrow().dims()
        );
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(acc) => acc.add_assign(g),
            None => *slot = Some(g.clone()),
        }
    }

    /// Run reverse-mode differentiation from this (scalar) tensor.
    ///
    /// Seeds the output gradient with 1.0. Panics if the tensor is not a
    /// scalar; use [`Tensor::backward_with`] to seed arbitrary shapes.
    pub fn backward(&self) {
        assert_eq!(
            self.0.value.borrow().numel(),
            1,
            "backward() requires a scalar loss; got shape {:?}",
            self.dims()
        );
        let seed = NdArray::full(self.0.value.borrow().shape().clone(), 1.0);
        self.backward_with(&seed);
    }

    /// Run reverse-mode differentiation with an explicit output gradient.
    pub fn backward_with(&self, seed: &NdArray) {
        if !self.0.requires_grad {
            return;
        }
        self.accumulate_grad(seed);

        // Iterative post-order topological sort (graphs from LSTMs over long
        // sequences are deep enough to overflow the stack with recursion).
        let order = self.topo_order();
        for node in order.iter().rev() {
            let grad = node.0.grad.borrow().clone();
            let Some(grad) = grad else { continue };
            if let Some(backward) = &node.0.backward {
                let value = node.0.value.borrow().clone();
                backward(&grad, &value, &node.0.parents);
                // Intermediate gradients are transient: only leaves (which
                // have no backward closure) accumulate across backward calls.
                *node.0.grad.borrow_mut() = None;
            }
        }
    }

    /// Post-order topological ordering of the reachable graph.
    fn topo_order(&self) -> Vec<Tensor> {
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // (tensor, children_pushed)
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
                continue;
            }
            if !visited.insert(t.0.id) {
                continue;
            }
            stack.push((t.clone(), true));
            for p in &t.0.parents {
                if p.0.requires_grad && !visited.contains(&p.0.id) {
                    stack.push((p.clone(), false));
                }
            }
        }
        order
    }

    /// Detach: a constant tensor sharing this value (cuts the graph).
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.value())
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor(id={}, {:?}, requires_grad={})",
            self.0.id,
            self.0.value.borrow(),
            self.0.requires_grad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn leaf_flags() {
        let p = Tensor::param(NdArray::scalar(1.0));
        let c = Tensor::constant(NdArray::scalar(1.0));
        assert!(p.requires_grad());
        assert!(!c.requires_grad());
    }

    #[test]
    fn backward_on_constant_graph_is_noop() {
        let a = Tensor::constant(NdArray::scalar(2.0));
        let b = Tensor::constant(NdArray::scalar(3.0));
        let c = ops::mul(&a, &b);
        assert!(!c.requires_grad());
        c.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn simple_chain_gradient() {
        // y = (a * b) + a ; dy/da = b + 1, dy/db = a
        let a = Tensor::param(NdArray::scalar(2.0));
        let b = Tensor::param(NdArray::scalar(3.0));
        let y = ops::add(&ops::mul(&a, &b), &a);
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 4.0);
        assert_eq!(b.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn reused_node_accumulates() {
        // y = a * a ; dy/da = 2a
        let a = Tensor::param(NdArray::scalar(3.0));
        let y = ops::mul(&a, &a);
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 6.0);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let a = Tensor::param(NdArray::scalar(1.0));
        let y = ops::mul(&a, &Tensor::scalar(5.0));
        y.backward();
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 10.0);
        a.zero_grad();
        assert!(a.grad().is_none());
    }

    #[test]
    fn detach_cuts_graph() {
        let a = Tensor::param(NdArray::scalar(2.0));
        let d = ops::mul(&a, &a).detach();
        let y = ops::mul(&d, &d);
        y.backward();
        assert!(a.grad().is_none());
        assert_eq!(d.item(), 4.0);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut x = Tensor::param(NdArray::scalar(1.0));
        for _ in 0..20_000 {
            x = ops::add(&x, &Tensor::scalar(0.0));
        }
        x.backward();
    }
}
