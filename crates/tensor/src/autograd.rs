//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tensor`] wraps an [`NdArray`] value in a shared graph node. Ops (in
//! [`crate::ops`]) build new tensors whose nodes record their parents and a
//! backward closure. [`Tensor::backward`] topologically sorts the reachable
//! graph and runs the closures in reverse order, accumulating gradients into
//! every node with `requires_grad`.
//!
//! The graph is thread-safe (`Arc` + locks): model replicas can move across
//! worker threads, and a read-only model can be shared by many inference
//! threads at once. Each thread builds and differentiates its *own* graphs;
//! the locks make sharing leaf parameters safe, they do not make a single
//! `backward` call parallel. Heavy kernels still parallelise internally over
//! raw buffers with rayon.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::array::NdArray;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Backward closure: `(grad_out, out_value, parents)`.
///
/// Implementations must call [`Tensor::accumulate_grad`] on the parents they
/// differentiate with respect to. Closures capture only plain values
/// (`NdArray`, shapes, indices), so they are `Send + Sync` and whole graphs
/// can cross thread boundaries.
pub type BackwardFn = Box<dyn Fn(&NdArray, &NdArray, &[Tensor]) + Send + Sync>;

pub(crate) struct Node {
    id: u64,
    value: RwLock<NdArray>,
    grad: Mutex<Option<NdArray>>,
    parents: Vec<Tensor>,
    backward: Option<BackwardFn>,
    requires_grad: bool,
}

/// A node in the autograd graph. Cheap to clone (shared pointer).
///
/// ```
/// use resuformer_tensor::{NdArray, Tensor, ops};
///
/// let w = Tensor::param(NdArray::from_vec(vec![2.0], [1]));
/// let loss = ops::square(&w);            // loss = w²
/// loss.backward();
/// assert_eq!(w.grad().unwrap().item(), 4.0); // d(w²)/dw = 2w
/// ```
#[derive(Clone)]
pub struct Tensor(pub(crate) Arc<Node>);

// Dropping a deep graph (e.g. an LSTM unrolled over hundreds of steps) must
// not recurse through the `parents` chain; this steals parents into an
// explicit worklist so each node drops with no parents left. `try_unwrap`
// stops the walk at nodes still referenced elsewhere (e.g. parameters shared
// with another thread), which is exactly where the recursive drop would have
// stopped too.
impl Drop for Node {
    fn drop(&mut self) {
        let mut stack: Vec<Tensor> = std::mem::take(&mut self.parents);
        while let Some(t) = stack.pop() {
            if let Ok(mut node) = Arc::try_unwrap(t.0) {
                stack.append(&mut node.parents);
            }
        }
    }
}

impl Tensor {
    /// A leaf tensor that participates in gradient computation (a parameter).
    pub fn param(value: NdArray) -> Tensor {
        Tensor(Arc::new(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RwLock::new(value),
            grad: Mutex::new(None),
            parents: Vec::new(),
            backward: None,
            requires_grad: true,
        }))
    }

    /// A leaf tensor excluded from gradient computation (input data).
    pub fn constant(value: NdArray) -> Tensor {
        Tensor(Arc::new(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RwLock::new(value),
            grad: Mutex::new(None),
            parents: Vec::new(),
            backward: None,
            requires_grad: false,
        }))
    }

    /// Scalar constant convenience.
    pub fn scalar(v: f32) -> Tensor {
        Tensor::constant(NdArray::scalar(v))
    }

    /// Internal: build an op output node.
    ///
    /// If no parent requires a gradient the parents and closure are dropped,
    /// pruning the graph for pure-inference passes.
    pub fn from_op(value: NdArray, parents: Vec<Tensor>, backward: BackwardFn) -> Tensor {
        let requires_grad = parents.iter().any(|p| p.0.requires_grad);
        if requires_grad {
            Tensor(Arc::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RwLock::new(value),
                grad: Mutex::new(None),
                parents,
                backward: Some(backward),
                requires_grad: true,
            }))
        } else {
            Tensor::constant(value)
        }
    }

    /// Unique node id (diagnostics).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Snapshot of the current value (O(1): copy-on-write clone).
    pub fn value(&self) -> NdArray {
        self.0.value.read().unwrap().clone()
    }

    /// Dimension sizes of the value.
    pub fn dims(&self) -> Vec<usize> {
        self.0.value.read().unwrap().dims().to_vec()
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        self.0.value.read().unwrap().item()
    }

    /// Whether this node accumulates gradient.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// Replace the stored value (optimizer updates on leaf parameters).
    pub fn set_value(&self, value: NdArray) {
        let mut slot = self.0.value.write().unwrap();
        assert_eq!(slot.dims(), value.dims(), "set_value: shape mismatch");
        *slot = value;
    }

    /// Current gradient, if any has been accumulated.
    pub fn grad(&self) -> Option<NdArray> {
        self.0.grad.lock().unwrap().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.lock().unwrap() = None;
    }

    /// Add `g` into this node's gradient buffer (no-op unless
    /// `requires_grad`).
    pub fn accumulate_grad(&self, g: &NdArray) {
        if !self.0.requires_grad {
            return;
        }
        debug_assert_eq!(
            self.0.value.read().unwrap().dims(),
            g.dims(),
            "accumulate_grad: gradient shape {:?} does not match value shape {:?}",
            g.dims(),
            self.0.value.read().unwrap().dims()
        );
        let mut slot = self.0.grad.lock().unwrap();
        match slot.as_mut() {
            Some(acc) => acc.add_assign(g),
            None => *slot = Some(g.clone()),
        }
    }

    /// Run reverse-mode differentiation from this (scalar) tensor.
    ///
    /// Seeds the output gradient with 1.0. Panics if the tensor is not a
    /// scalar; use [`Tensor::backward_with`] to seed arbitrary shapes.
    pub fn backward(&self) {
        let seed = {
            let value = self.0.value.read().unwrap();
            assert_eq!(
                value.numel(),
                1,
                "backward() requires a scalar loss; got shape {:?}",
                value.dims()
            );
            NdArray::full(value.shape().clone(), 1.0)
        };
        self.backward_with(&seed);
    }

    /// Run reverse-mode differentiation with an explicit output gradient.
    pub fn backward_with(&self, seed: &NdArray) {
        if !self.0.requires_grad {
            return;
        }
        self.accumulate_grad(seed);

        // Iterative post-order topological sort (graphs from LSTMs over long
        // sequences are deep enough to overflow the stack with recursion).
        let order = self.topo_order();
        for node in order.iter().rev() {
            // Snapshot grad and value and release the locks before running
            // the closure: the closure takes parent locks, and a reused node
            // (`mul(&a, &a)`) may even be its own parent.
            let grad = node.0.grad.lock().unwrap().clone();
            let Some(grad) = grad else { continue };
            if let Some(backward) = &node.0.backward {
                let value = node.0.value.read().unwrap().clone();
                backward(&grad, &value, &node.0.parents);
                // Intermediate gradients are transient: only leaves (which
                // have no backward closure) accumulate across backward calls.
                *node.0.grad.lock().unwrap() = None;
            }
        }
    }

    /// Post-order topological ordering of the reachable graph.
    fn topo_order(&self) -> Vec<Tensor> {
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // (tensor, children_pushed)
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
                continue;
            }
            if !visited.insert(t.0.id) {
                continue;
            }
            stack.push((t.clone(), true));
            for p in &t.0.parents {
                if p.0.requires_grad && !visited.contains(&p.0.id) {
                    stack.push((p.clone(), false));
                }
            }
        }
        order
    }

    /// Detach: a constant tensor sharing this value (cuts the graph).
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.value())
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor(id={}, {:?}, requires_grad={})",
            self.0.id,
            self.0.value.read().unwrap(),
            self.0.requires_grad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn leaf_flags() {
        let p = Tensor::param(NdArray::scalar(1.0));
        let c = Tensor::constant(NdArray::scalar(1.0));
        assert!(p.requires_grad());
        assert!(!c.requires_grad());
    }

    #[test]
    fn backward_on_constant_graph_is_noop() {
        let a = Tensor::constant(NdArray::scalar(2.0));
        let b = Tensor::constant(NdArray::scalar(3.0));
        let c = ops::mul(&a, &b);
        assert!(!c.requires_grad());
        c.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn simple_chain_gradient() {
        // y = (a * b) + a ; dy/da = b + 1, dy/db = a
        let a = Tensor::param(NdArray::scalar(2.0));
        let b = Tensor::param(NdArray::scalar(3.0));
        let y = ops::add(&ops::mul(&a, &b), &a);
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 4.0);
        assert_eq!(b.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn reused_node_accumulates() {
        // y = a * a ; dy/da = 2a
        let a = Tensor::param(NdArray::scalar(3.0));
        let y = ops::mul(&a, &a);
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 6.0);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let a = Tensor::param(NdArray::scalar(1.0));
        let y = ops::mul(&a, &Tensor::scalar(5.0));
        y.backward();
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 10.0);
        a.zero_grad();
        assert!(a.grad().is_none());
    }

    #[test]
    fn detach_cuts_graph() {
        let a = Tensor::param(NdArray::scalar(2.0));
        let d = ops::mul(&a, &a).detach();
        let y = ops::mul(&d, &d);
        y.backward();
        assert!(a.grad().is_none());
        assert_eq!(d.item(), 4.0);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut x = Tensor::param(NdArray::scalar(1.0));
        for _ in 0..20_000 {
            x = ops::add(&x, &Tensor::scalar(0.0));
        }
        x.backward();
    }

    #[test]
    fn tensor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
        assert_send_sync::<NdArray>();
    }

    #[test]
    fn graph_crosses_thread_boundary() {
        // Build a graph on one thread, backprop it on another: the whole
        // point of the Arc-based refactor.
        let a = Tensor::param(NdArray::scalar(2.0));
        let y = ops::mul(&a, &a);
        let a2 = a.clone();
        std::thread::spawn(move || y.backward()).join().unwrap();
        assert_eq!(a2.grad().unwrap().item(), 4.0);
    }

    #[test]
    fn shared_param_trains_from_worker_threads() {
        // Two workers each compute grads on graphs over the SAME leaf;
        // accumulation is serialized by the grad mutex.
        let a = Tensor::param(NdArray::scalar(1.0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let a = a.clone();
                std::thread::spawn(move || ops::mul(&a, &Tensor::scalar(3.0)).backward())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.grad().unwrap().item(), 6.0);
    }
}
