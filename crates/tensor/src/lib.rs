//! # resuformer-tensor
//!
//! A from-scratch, CPU-only, reverse-mode automatic-differentiation tensor
//! engine. This crate is the deep-learning substrate for the ResuFormer
//! reproduction: every model in the workspace — the hierarchical multi-modal
//! encoder, the BiLSTM+CRF heads, and all baselines — trains end-to-end
//! through this engine.
//!
//! Design:
//!
//! * [`NdArray`] is a dense row-major `f32` n-dimensional array with
//!   copy-on-write storage (`Arc<Vec<f32>>`), so capturing an array in a
//!   backward closure is O(1).
//! * [`Tensor`] is a node in a dynamically-built computation graph
//!   (define-by-run). Each differentiable op records a backward closure that
//!   accumulates gradients into its parents. Calling [`Tensor::backward`]
//!   runs a topological sweep.
//! * Matrix multiplication is blocked and parallelised with rayon; it is the
//!   kernel that dominates training throughput here.
//! * The graph is `Send + Sync` (`Arc` + locks): data-parallel trainers move
//!   replicas across worker threads, and the serving stack shares a single
//!   read-only model between all of its workers.
//!
//! The engine is intentionally small but complete: it supports everything a
//! Transformer encoder, an LSTM, a CRF (via `logsumexp` compositions) and a
//! small CNN need, and every op has a finite-difference gradient test.

#![warn(missing_docs)]

pub mod array;
pub mod autograd;
pub mod check;
pub mod init;
pub mod ops;

pub use array::{NdArray, Shape};
pub use autograd::Tensor;
