//! Checkpoint/resume correctness: a run killed at epoch k and resumed from
//! its checkpoint must match the uninterrupted seeded run bit-for-bit.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::config::{ModelConfig, PretrainConfig};
use resuformer::data::{build_tokenizer, prepare_document, DocumentInput};
use resuformer::model_io;
use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
use resuformer_nn::Module;
use resuformer_text::WordPiece;
use resuformer_train::{SyncMode, TrainConfig, Trainer};

const INIT_SEED: u64 = 42;
const BASE_SEED: u64 = 7;

fn corpus(n_docs: usize) -> (WordPiece, ModelConfig, Vec<DocumentInput>) {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let resumes: Vec<_> = (0..n_docs)
        .map(|_| generate_resume(&mut rng, &GeneratorConfig::smoke()))
        .collect();
    let wp = build_tokenizer(
        resumes
            .iter()
            .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
        1,
    );
    let config = ModelConfig::tiny(wp.vocab.len());
    let docs = resumes
        .iter()
        .map(|r| prepare_document(&r.doc, &wp, &config).0)
        .collect();
    (wp, config, docs)
}

fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("resuformer_train_resume");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

fn param_values(
    enc_pt: &(
        resuformer::HierarchicalEncoder,
        resuformer::pretrain::Pretrainer,
    ),
) -> Vec<Vec<f32>> {
    let mut params = enc_pt.0.parameters();
    params.extend(enc_pt.1.parameters());
    params.iter().map(|p| p.value().data().to_vec()).collect()
}

#[test]
fn killed_and_resumed_run_matches_uninterrupted_bit_for_bit() {
    let (wp, config, docs) = corpus(4);
    let workers = 2;

    // Uninterrupted reference: 4 epochs straight through.
    let mut full = Trainer::new(
        wp.clone(),
        config,
        PretrainConfig::default(),
        INIT_SEED,
        BASE_SEED,
    );
    let full_trace = full
        .train(
            &docs,
            &TrainConfig {
                workers,
                epochs: 4,
                sync_every: 1,
                ..TrainConfig::default()
            },
            |_| {},
        )
        .unwrap();

    // "Killed" run: identical seeds, stopped after epoch 2 with a
    // checkpoint on disk. Epochs are seeded independently of the target
    // epoch count, so training 0..2 here is exactly the prefix of the
    // 4-epoch run above.
    let ckpt_path = temp_path("killed.ckpt");
    let mut killed = Trainer::new(
        wp.clone(),
        config,
        PretrainConfig::default(),
        INIT_SEED,
        BASE_SEED,
    );
    killed
        .train(
            &docs,
            &TrainConfig {
                workers,
                epochs: 2,
                sync_every: 1,
                checkpoint_path: Some(ckpt_path.clone()),
                ..TrainConfig::default()
            },
            |_| {},
        )
        .unwrap();

    // Resume from the checkpoint and finish epochs 2..4.
    let ckpt = model_io::load_checkpoint(&ckpt_path).unwrap();
    assert_eq!(ckpt.meta.next_epoch, 2);
    assert_eq!(ckpt.meta.workers, workers);
    let mut resumed = Trainer::from_checkpoint(ckpt);
    assert_eq!(resumed.next_epoch(), 2);
    let resumed_trace = resumed
        .train(
            &docs,
            &TrainConfig {
                workers,
                epochs: 4,
                sync_every: 1,
                ..TrainConfig::default()
            },
            |_| {},
        )
        .unwrap();

    // Per-epoch losses for epochs 2 and 3 must agree exactly...
    assert_eq!(resumed_trace.len(), 2);
    for (r, f) in resumed_trace.iter().zip(&full_trace[2..]) {
        assert_eq!(r.epoch, f.epoch);
        assert_eq!(r.total, f.total, "epoch {} loss diverged", r.epoch);
        assert_eq!(r.wp, f.wp);
        assert_eq!(r.cl, f.cl);
        assert_eq!(r.ns, f.ns);
        assert_eq!(r.docs, f.docs);
        assert_eq!(r.tokens, f.tokens);
    }

    // ...and so must every final parameter, bit for bit.
    let full_params = param_values(&full.into_model());
    let resumed_params = param_values(&resumed.into_model());
    assert_eq!(full_params.len(), resumed_params.len());
    for (a, b) in full_params.iter().zip(resumed_params.iter()) {
        assert_eq!(a, b, "resumed parameters diverged from uninterrupted run");
    }

    std::fs::remove_file(&ckpt_path).ok();
}

#[test]
fn stale_killed_and_resumed_matches_uninterrupted_bit_for_bit() {
    let (wp, config, docs) = corpus(4);
    let sync = SyncMode::Stale { max_lag: 2 };
    let tc = |epochs: usize, checkpoint_path: Option<String>| TrainConfig {
        workers: 2,
        epochs,
        sync_every: 1,
        sync,
        checkpoint_path,
        ..TrainConfig::default()
    };

    // Uninterrupted reference: 4 epochs straight through, with the final
    // checkpoint on disk for the byte-level comparison.
    let full_path = temp_path("stale_full.ckpt");
    let mut full = Trainer::new(
        wp.clone(),
        config,
        PretrainConfig::default(),
        INIT_SEED,
        BASE_SEED,
    );
    let full_trace = full
        .train(&docs, &tc(4, Some(full_path.clone())), |_| {})
        .unwrap();
    assert_eq!(full_trace.len(), 4);

    // Killed after epoch 2, resumed to 4 (same seeds; epoch seeding is
    // independent of the target epoch count).
    let killed_path = temp_path("stale_killed.ckpt");
    let mut killed = Trainer::new(
        wp.clone(),
        config,
        PretrainConfig::default(),
        INIT_SEED,
        BASE_SEED,
    );
    killed
        .train(&docs, &tc(2, Some(killed_path.clone())), |_| {})
        .unwrap();

    let ckpt = model_io::load_checkpoint(&killed_path).unwrap();
    assert_eq!(ckpt.meta.sync, sync, "checkpoint carries the sync mode");
    assert!(ckpt.meta.rounds_folded > 0, "staleness cursor recorded");
    let mut resumed = Trainer::from_checkpoint(ckpt);
    assert_eq!(resumed.required_sync(), Some(sync));
    let resumed_trace = resumed
        .train(&docs, &tc(4, Some(killed_path.clone())), |_| {})
        .unwrap();

    assert_eq!(resumed_trace.len(), 2);
    for (r, f) in resumed_trace.iter().zip(&full_trace[2..]) {
        assert_eq!(r.total, f.total, "epoch {} loss diverged", r.epoch);
        assert_eq!(r.docs, f.docs);
        assert_eq!(r.tokens, f.tokens);
    }
    let full_params = param_values(&full.into_model());
    let resumed_params = param_values(&resumed.into_model());
    for (a, b) in full_params.iter().zip(resumed_params.iter()) {
        assert_eq!(a, b, "stale-mode resume diverged from uninterrupted run");
    }
    // The resumed run's final checkpoint must be byte-identical to the
    // uninterrupted run's (same weights, optimizer states and cursors).
    let full_bytes = std::fs::read(&full_path).unwrap();
    let resumed_bytes = std::fs::read(&killed_path).unwrap();
    assert_eq!(full_bytes, resumed_bytes, "checkpoint bytes diverged");

    std::fs::remove_file(&full_path).ok();
    std::fs::remove_file(&killed_path).ok();
}

#[test]
fn stale_mode_two_runs_are_byte_identical() {
    let (wp, config, docs) = corpus(4);
    let paths = [temp_path("det_a.ckpt"), temp_path("det_b.ckpt")];
    for path in &paths {
        let mut t = Trainer::new(
            wp.clone(),
            config,
            PretrainConfig::default(),
            INIT_SEED,
            BASE_SEED,
        );
        t.train(
            &docs,
            &TrainConfig {
                workers: 3,
                epochs: 2,
                sync_every: 1,
                sync: SyncMode::Stale { max_lag: 4 },
                checkpoint_path: Some(path.clone()),
                ..TrainConfig::default()
            },
            |_| {},
        )
        .unwrap();
    }
    let a = std::fs::read(&paths[0]).unwrap();
    let b = std::fs::read(&paths[1]).unwrap();
    assert_eq!(a, b, "same config must give byte-identical checkpoints");
    for path in &paths {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn stale_zero_lag_matches_barrier_bit_for_bit() {
    let (wp, config, docs) = corpus(4);
    let run = |sync: SyncMode| {
        let mut t = Trainer::new(
            wp.clone(),
            config,
            PretrainConfig::default(),
            INIT_SEED,
            BASE_SEED,
        );
        let trace = t
            .train(
                &docs,
                &TrainConfig {
                    workers: 2,
                    epochs: 2,
                    sync_every: 1,
                    sync,
                    ..TrainConfig::default()
                },
                |_| {},
            )
            .unwrap();
        (trace, param_values(&t.into_model()))
    };
    let (barrier_trace, barrier_params) = run(SyncMode::Barrier);
    let (stale_trace, stale_params) = run(SyncMode::Stale { max_lag: 0 });
    for (b, s) in barrier_trace.iter().zip(&stale_trace) {
        assert_eq!(b.total, s.total, "epoch {} loss diverged", b.epoch);
    }
    for (a, b) in barrier_params.iter().zip(stale_params.iter()) {
        assert_eq!(a, b, "stale:0 must degenerate to the barrier schedule");
    }
}

#[test]
fn resume_rejects_mismatched_sync_mode() {
    let (wp, config, docs) = corpus(2);
    let ckpt_path = temp_path("syncmode.ckpt");
    let mut t = Trainer::new(wp, config, PretrainConfig::default(), 1, 2);
    t.train(
        &docs,
        &TrainConfig {
            workers: 2,
            epochs: 1,
            sync_every: 1,
            sync: SyncMode::Stale { max_lag: 1 },
            checkpoint_path: Some(ckpt_path.clone()),
            ..TrainConfig::default()
        },
        |_| {},
    )
    .unwrap();

    let ckpt = model_io::load_checkpoint(&ckpt_path).unwrap();
    let mut resumed = Trainer::from_checkpoint(ckpt);
    assert_eq!(
        resumed.required_sync(),
        Some(SyncMode::Stale { max_lag: 1 })
    );
    let err = resumed
        .train(
            &docs,
            &TrainConfig {
                workers: 2,
                epochs: 2,
                sync_every: 1,
                sync: SyncMode::Barrier,
                ..TrainConfig::default()
            },
            |_| {},
        )
        .unwrap_err();
    assert!(err.contains("sync"), "{err}");
    std::fs::remove_file(&ckpt_path).ok();
}

#[test]
fn resume_rejects_mismatched_worker_count() {
    let (wp, config, docs) = corpus(2);
    let ckpt_path = temp_path("workers.ckpt");
    let mut t = Trainer::new(wp, config, PretrainConfig::default(), 1, 2);
    t.train(
        &docs,
        &TrainConfig {
            workers: 2,
            epochs: 1,
            sync_every: 1,
            checkpoint_path: Some(ckpt_path.clone()),
            ..TrainConfig::default()
        },
        |_| {},
    )
    .unwrap();

    let ckpt = model_io::load_checkpoint(&ckpt_path).unwrap();
    let mut resumed = Trainer::from_checkpoint(ckpt);
    assert_eq!(resumed.required_workers(), Some(2));
    let err = resumed
        .train(
            &docs,
            &TrainConfig {
                workers: 3,
                epochs: 2,
                sync_every: 1,
                ..TrainConfig::default()
            },
            |_| {},
        )
        .unwrap_err();
    assert!(err.contains("workers"), "{err}");
    std::fs::remove_file(&ckpt_path).ok();
}

#[test]
fn multi_worker_training_reduces_loss_and_reports_throughput() {
    let (wp, config, docs) = corpus(4);
    let mut t = Trainer::new(wp, config, PretrainConfig::default(), 5, 6);
    let trace = t
        .train(
            &docs,
            &TrainConfig {
                workers: 2,
                epochs: 6,
                sync_every: 1,
                ..TrainConfig::default()
            },
            |_| {},
        )
        .unwrap();
    let first = trace.first().unwrap();
    let last = trace.last().unwrap();
    assert!(
        last.total < first.total * 0.95,
        "data-parallel pre-training loss did not decrease: {} -> {}",
        first.total,
        last.total
    );
    assert!(first.tokens > 0);
    assert!(first.tokens_per_sec > 0.0);
    assert!(first.utilization > 0.0 && first.utilization <= 1.0);
    assert_eq!(first.docs, 4);
}
