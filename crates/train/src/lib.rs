//! # resuformer-train
//!
//! Multi-worker data-parallel pre-training for the ResuFormer encoder.
//!
//! The paper's three-objective pre-training (Eq. 7) is the most expensive
//! stage of the reproduction; this crate turns the single-threaded
//! [`resuformer::pretrain::pretrain`] reference loop into an operational
//! subsystem:
//!
//! * **Data parallelism.** Each epoch's shuffled document order is cut into
//!   rounds; within a round every worker thread trains its own model
//!   replica on its shard, then the coordinator averages the replicas'
//!   parameters (weighted by documents processed) and broadcasts the result
//!   — local SGD with periodic parameter averaging. Workers are persistent
//!   threads talking over crossbeam channels, the same idiom as
//!   `resuformer-serve`'s worker pool, enabled by the `Arc`-based
//!   (`Send + Sync`) autograd graph in `resuformer-tensor`.
//! * **Determinism.** The shuffle is seeded per `(base_seed, epoch)` and
//!   every worker's objective sampling per `(base_seed, epoch, round,
//!   worker)`, so a run is a pure function of its seeds, worker count and
//!   sync cadence and sync mode. That includes [`SyncMode::Stale`]:
//!   bounded-staleness runs fold round results in (round, worker) order
//!   against pinned broadcast bases, never in arrival order, so the
//!   asynchrony buys utilization without sacrificing reproducibility.
//! * **Durability.** At a configurable epoch cadence the coordinator writes
//!   a v3 checkpoint through [`resuformer::model_io`]: model weights,
//!   per-worker Adam states, RNG seeds and the epoch cursor. A killed run
//!   resumed from the checkpoint continues *bit-identically* with the
//!   uninterrupted run (with the paper-default dynamic masking).
//! * **Observability.** Every epoch yields an [`EpochMetrics`] row: loss
//!   per objective, tokens/sec and worker utilization. The engine also
//!   records `resuformer-telemetry` spans around each pipeline phase
//!   (`train.forward`, `train.backward`, `train.averaging`,
//!   `train.broadcast`, `train.checkpoint`, plus `train.wait_stale` and
//!   `train.fold` under bounded staleness); [`PhaseBreakdown`] turns the
//!   aggregated span tree into a per-phase wall-time table, and with
//!   trace capture on the run can be opened in `chrome://tracing`.

#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
mod stale;
mod worker;

pub use engine::{TrainConfig, Trainer};
pub use metrics::{EpochMetrics, PhaseBreakdown, PhaseTotal, TRAIN_PHASES};
pub use resuformer::config::SyncMode;
