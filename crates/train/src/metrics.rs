//! Per-epoch training metrics and the per-phase wall-time breakdown.

use resuformer_telemetry::SpanTree;

/// The span names the training engine records, in pipeline order. Worker
/// threads record `train.forward` / `train.backward` (and the receive half
/// of `train.broadcast`); the coordinator records `train.averaging`,
/// the send half of `train.broadcast`, and `train.checkpoint`. The last
/// two phases only appear under `SyncMode::Stale`: `train.wait_stale` is
/// worker time blocked on the staleness window, `train.fold` is the
/// coordinator folding a round's results into the global parameters.
pub const TRAIN_PHASES: [&str; 7] = [
    "train.forward",
    "train.backward",
    "train.averaging",
    "train.broadcast",
    "train.checkpoint",
    "train.wait_stale",
    "train.fold",
];

/// Total time spent in one training phase, summed across every thread
/// that recorded it (so with N busy workers a phase can accumulate up to
/// N seconds per wall-clock second).
#[derive(Clone, Debug)]
pub struct PhaseTotal {
    /// Span name (one of [`TRAIN_PHASES`]).
    pub name: &'static str,
    /// Accumulated seconds across all threads.
    pub seconds: f64,
    /// Times the span was entered.
    pub calls: u64,
}

/// Per-phase wall-time totals for a training run, extracted from the
/// telemetry span tree.
#[derive(Clone, Debug)]
pub struct PhaseBreakdown {
    /// One row per phase in [`TRAIN_PHASES`] order (zero rows included).
    pub phases: Vec<PhaseTotal>,
}

impl PhaseBreakdown {
    /// Extract the training phases from an aggregated span tree.
    pub fn from_tree(tree: &SpanTree) -> Self {
        PhaseBreakdown {
            phases: TRAIN_PHASES
                .iter()
                .map(|&name| {
                    let (seconds, calls) = tree.total(name);
                    PhaseTotal {
                        name,
                        seconds,
                        calls,
                    }
                })
                .collect(),
        }
    }

    /// Snapshot the global span state and extract the training phases.
    pub fn capture() -> Self {
        PhaseBreakdown::from_tree(&resuformer_telemetry::span::snapshot())
    }

    /// Seconds accounted to any phase (the denominator for shares).
    pub fn accounted_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Aligned table: phase, calls, total thread-seconds, mean ms/call,
    /// and share of the accounted time.
    pub fn render_table(&self) -> String {
        let accounted = self.accounted_seconds();
        let mut out = format!(
            "{:<18} | {:>8} | {:>10} | {:>9} | {:>7}\n",
            "phase", "calls", "thread s", "mean ms", "share"
        );
        out.push_str(&"-".repeat(64));
        out.push('\n');
        for p in &self.phases {
            let mean_ms = if p.calls == 0 {
                0.0
            } else {
                p.seconds * 1e3 / p.calls as f64
            };
            let share = if accounted > 0.0 {
                100.0 * p.seconds / accounted
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<18} | {:>8} | {:>10.3} | {:>9.3} | {:>6.1}%\n",
                p.name, p.calls, p.seconds, mean_ms, share
            ));
        }
        out
    }
}

/// One epoch of the pre-training log: per-objective losses (averaged over
/// documents), throughput and worker utilization.
#[derive(Clone, Copy, Debug)]
pub struct EpochMetrics {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean masked layout-language loss.
    pub wp: f32,
    /// Mean contrastive loss.
    pub cl: f32,
    /// Mean next-sentence loss.
    pub ns: f32,
    /// Mean weighted total loss (Eq. 7).
    pub total: f32,
    /// Non-empty documents trained on this epoch.
    pub docs: usize,
    /// Input tokens consumed this epoch.
    pub tokens: u64,
    /// Wall-clock duration of the epoch in seconds.
    pub wall_seconds: f64,
    /// Throughput: `tokens / wall_seconds`.
    pub tokens_per_sec: f64,
    /// Fraction of `workers × wall` the workers spent training (1.0 = no
    /// idle time at round barriers).
    pub utilization: f64,
}

impl EpochMetrics {
    /// One-line human-readable rendering for the training log.
    pub fn render(&self) -> String {
        format!(
            "epoch {:>3} | loss {:.4} (wp {:.4} cl {:.4} ns {:.4}) | {} docs | {:>8.0} tok/s | util {:>5.1}%",
            self.epoch,
            self.total,
            self.wp,
            self.cl,
            self.ns,
            self.docs,
            self.tokens_per_sec,
            self.utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_breakdown_extracts_named_totals_from_a_tree() {
        use resuformer_telemetry::span::SpanTreeNode;
        let tree = SpanTree {
            roots: vec![
                SpanTreeNode {
                    name: "train.forward".to_string(),
                    total_seconds: 6.0,
                    count: 30,
                    children: Vec::new(),
                },
                SpanTreeNode {
                    name: "train.backward".to_string(),
                    total_seconds: 3.0,
                    count: 30,
                    children: Vec::new(),
                },
                SpanTreeNode {
                    name: "train.averaging".to_string(),
                    total_seconds: 1.0,
                    count: 5,
                    children: Vec::new(),
                },
            ],
        };
        let b = PhaseBreakdown::from_tree(&tree);
        assert_eq!(b.phases.len(), TRAIN_PHASES.len());
        assert_eq!(b.phases[0].name, "train.forward");
        assert_eq!(b.phases[0].calls, 30);
        assert!((b.accounted_seconds() - 10.0).abs() < 1e-9);
        // Unrecorded phases still render as zero rows.
        assert_eq!(b.phases[4].name, "train.checkpoint");
        assert_eq!(b.phases[4].calls, 0);
        let table = b.render_table();
        assert!(table.contains("train.forward"), "{table}");
        assert!(table.contains("60.0%"), "forward is 6/10: {table}");
        assert!(table.contains("train.checkpoint"), "{table}");
    }

    #[test]
    fn render_mentions_every_headline_number() {
        let m = EpochMetrics {
            epoch: 4,
            wp: 1.25,
            cl: 2.5,
            ns: 0.75,
            total: 4.5,
            docs: 16,
            tokens: 12_000,
            wall_seconds: 2.0,
            tokens_per_sec: 6_000.0,
            utilization: 0.875,
        };
        let line = m.render();
        assert!(line.contains("epoch   4"), "{line}");
        assert!(line.contains("4.5"), "{line}");
        assert!(line.contains("6000 tok/s"), "{line}");
        assert!(line.contains("87.5%"), "{line}");
    }
}
