//! Per-epoch training metrics.

/// One epoch of the pre-training log: per-objective losses (averaged over
/// documents), throughput and worker utilization.
#[derive(Clone, Copy, Debug)]
pub struct EpochMetrics {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean masked layout-language loss.
    pub wp: f32,
    /// Mean contrastive loss.
    pub cl: f32,
    /// Mean next-sentence loss.
    pub ns: f32,
    /// Mean weighted total loss (Eq. 7).
    pub total: f32,
    /// Non-empty documents trained on this epoch.
    pub docs: usize,
    /// Input tokens consumed this epoch.
    pub tokens: u64,
    /// Wall-clock duration of the epoch in seconds.
    pub wall_seconds: f64,
    /// Throughput: `tokens / wall_seconds`.
    pub tokens_per_sec: f64,
    /// Fraction of `workers × wall` the workers spent training (1.0 = no
    /// idle time at round barriers).
    pub utilization: f64,
}

impl EpochMetrics {
    /// One-line human-readable rendering for the training log.
    pub fn render(&self) -> String {
        format!(
            "epoch {:>3} | loss {:.4} (wp {:.4} cl {:.4} ns {:.4}) | {} docs | {:>8.0} tok/s | util {:>5.1}%",
            self.epoch,
            self.total,
            self.wp,
            self.cl,
            self.ns,
            self.docs,
            self.tokens_per_sec,
            self.utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_every_headline_number() {
        let m = EpochMetrics {
            epoch: 4,
            wp: 1.25,
            cl: 2.5,
            ns: 0.75,
            total: 4.5,
            docs: 16,
            tokens: 12_000,
            wall_seconds: 2.0,
            tokens_per_sec: 6_000.0,
            utilization: 0.875,
        };
        let line = m.render();
        assert!(line.contains("epoch   4"), "{line}");
        assert!(line.contains("4.5"), "{line}");
        assert!(line.contains("6000 tok/s"), "{line}");
        assert!(line.contains("87.5%"), "{line}");
    }
}
