//! The coordinator: epoch sharding, parameter averaging, checkpointing.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::unbounded;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::config::{ModelConfig, PretrainConfig, SyncMode};
use resuformer::data::DocumentInput;
use resuformer::model_io::{self, CheckpointMeta, TrainCheckpoint};
use resuformer::pretrain::{build_pretrain_model, PretrainMetrics, Pretrainer};
use resuformer::HierarchicalEncoder;
use resuformer_nn::Module;
use resuformer_tensor::{NdArray, Tensor};
use resuformer_text::WordPiece;

use crate::metrics::EpochMetrics;
use crate::stale::StaleScheduler;
use crate::worker::{epoch_seed, worker_loop, FromWorker, RoundResult, ToWorker, WorkerSpec};

/// How a training run is executed (the model itself lives in [`Trainer`]).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Worker threads. A resumed run must use the checkpoint's count.
    pub workers: usize,
    /// Train until this many epochs have completed (total, not additional:
    /// resuming an interrupted 8-epoch run passes 8 again).
    pub epochs: usize,
    /// Documents each worker processes between parameter averagings.
    pub sync_every: usize,
    /// Write a checkpoint every K completed epochs (0 = only the final
    /// one). Requires `checkpoint_path`.
    pub checkpoint_every: usize,
    /// Where checkpoints (periodic and final) are written.
    pub checkpoint_path: Option<String>,
    /// How workers synchronise parameters each round. A resumed run must
    /// use the checkpoint's mode (it changes the arithmetic, so it is part
    /// of a run's identity like the seeds).
    pub sync: SyncMode,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            workers: 1,
            epochs: 8,
            sync_every: 8,
            checkpoint_every: 0,
            checkpoint_path: None,
            sync: SyncMode::Barrier,
        }
    }
}

/// A pre-training run: the model being trained plus the cursor state needed
/// to continue or checkpoint it.
pub struct Trainer {
    encoder: HierarchicalEncoder,
    pretrainer: Pretrainer,
    wordpiece: WordPiece,
    config: ModelConfig,
    init_seed: u64,
    base_seed: u64,
    next_epoch: usize,
    /// Per-worker Adam blobs carried across `train` calls / checkpoints.
    optimizer_states: Vec<Vec<u8>>,
    /// Set once optimizer state exists: later runs must match this count.
    resume_workers: Option<usize>,
    /// Set once training has run: later runs must match this sync mode.
    resume_sync: Option<SyncMode>,
    /// Staleness cursor: total rounds folded into the global parameters
    /// over the run's lifetime (carried through checkpoints).
    rounds_folded: u64,
}

impl Trainer {
    /// A fresh run: architecture initialised from `init_seed`, data order
    /// and objective sampling driven by `base_seed`.
    pub fn new(
        wordpiece: WordPiece,
        config: ModelConfig,
        pretrain: PretrainConfig,
        init_seed: u64,
        base_seed: u64,
    ) -> Self {
        let (encoder, pretrainer) = build_pretrain_model(init_seed, &config, pretrain);
        Trainer {
            encoder,
            pretrainer,
            wordpiece,
            config,
            init_seed,
            base_seed,
            next_epoch: 0,
            optimizer_states: Vec::new(),
            resume_workers: None,
            resume_sync: None,
            rounds_folded: 0,
        }
    }

    /// Continue a run restored from a v3 checkpoint.
    pub fn from_checkpoint(ckpt: TrainCheckpoint) -> Self {
        Trainer {
            encoder: ckpt.encoder,
            pretrainer: ckpt.pretrainer,
            wordpiece: ckpt.wordpiece,
            config: ckpt.config,
            init_seed: ckpt.meta.init_seed,
            base_seed: ckpt.meta.base_seed,
            next_epoch: ckpt.meta.next_epoch,
            resume_workers: Some(ckpt.meta.workers),
            resume_sync: Some(ckpt.meta.sync),
            rounds_folded: ckpt.meta.rounds_folded,
            optimizer_states: ckpt.optimizer_states,
        }
    }

    /// The tokenizer documents must be prepared with.
    pub fn wordpiece(&self) -> &WordPiece {
        &self.wordpiece
    }

    /// The model architecture.
    pub fn model_config(&self) -> &ModelConfig {
        &self.config
    }

    /// First epoch the next `train` call will execute.
    pub fn next_epoch(&self) -> usize {
        self.next_epoch
    }

    /// Worker count this run is locked to (set after training or resume).
    pub fn required_workers(&self) -> Option<usize> {
        self.resume_workers
    }

    /// Sync mode this run is locked to (set after training or resume).
    pub fn required_sync(&self) -> Option<SyncMode> {
        self.resume_sync
    }

    /// The trained model (e.g. to fine-tune after pre-training).
    pub fn into_model(self) -> (HierarchicalEncoder, Pretrainer) {
        (self.encoder, self.pretrainer)
    }

    /// Run epochs `next_epoch..tc.epochs`, calling `on_epoch` after each.
    ///
    /// Returns the per-epoch metrics. The run is deterministic in
    /// `(seeds, workers, sync_every, sync)`: interrupting it and resuming
    /// from a checkpoint yields bit-identical parameters (with dynamic
    /// masking, the paper default — static-masking caches are not
    /// checkpointed). This holds for `SyncMode::Stale` too: results fold
    /// in (round, worker) order with pinned broadcast bases, never in
    /// arrival order (see [`crate::stale`]).
    pub fn train(
        &mut self,
        docs: &[DocumentInput],
        tc: &TrainConfig,
        mut on_epoch: impl FnMut(&EpochMetrics),
    ) -> Result<Vec<EpochMetrics>, String> {
        if docs.is_empty() {
            return Err("no documents to pre-train on".to_string());
        }
        let workers = tc.workers.max(1);
        if let Some(rw) = self.resume_workers {
            if workers != rw {
                return Err(format!(
                    "optimizer state is per-worker: run has {rw} workers, got {workers}"
                ));
            }
        }
        if let Some(rs) = self.resume_sync {
            if tc.sync != rs {
                return Err(format!(
                    "sync mode changes the arithmetic: run uses {rs}, got {}",
                    tc.sync
                ));
            }
        }

        // ---- Spawn the worker pool -------------------------------------
        let docs_arc = Arc::new(docs.to_vec());
        let (from_tx, from_rx) = unbounded::<FromWorker>();
        let mut to_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (tx, rx) = unbounded::<ToWorker>();
            to_txs.push(tx);
            let spec = WorkerSpec {
                worker,
                init_seed: self.init_seed,
                base_seed: self.base_seed,
                config: self.config,
                pretrain: self.pretrainer.config,
                switches: self.pretrainer.switches,
                dynamic_masking: self.pretrainer.dynamic_masking,
                docs: docs_arc.clone(),
                stale: matches!(tc.sync, SyncMode::Stale { .. }),
            };
            let from_tx = from_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("resuformer-train-{worker}"))
                .spawn(move || worker_loop(spec, rx, from_tx))
                .map_err(|e| format!("spawning worker {worker}: {e}"))?;
            handles.push(handle);
        }
        drop(from_tx);

        let run = self.run_epochs(docs.len(), workers, tc, &to_txs, &from_rx, &mut on_epoch);

        // Tear down: closing the senders ends the worker loops.
        drop(to_txs);
        for h in handles {
            let _ = h.join();
        }
        run
    }

    #[allow(clippy::too_many_arguments)]
    fn run_epochs(
        &mut self,
        n_docs: usize,
        workers: usize,
        tc: &TrainConfig,
        to_txs: &[crossbeam::channel::Sender<ToWorker>],
        from_rx: &crossbeam::channel::Receiver<FromWorker>,
        on_epoch: &mut impl FnMut(&EpochMetrics),
    ) -> Result<Vec<EpochMetrics>, String> {
        // Restore per-worker optimizer state from a prior run/checkpoint.
        if !self.optimizer_states.is_empty() {
            for (w, blob) in self.optimizer_states.iter().enumerate() {
                to_txs[w]
                    .send(ToWorker::LoadState(blob.clone()))
                    .map_err(|_| format!("worker {w} died"))?;
            }
            for _ in 0..workers {
                match from_rx.recv() {
                    Ok(FromWorker::StateLoaded { worker, result }) => {
                        result.map_err(|e| format!("worker {worker} optimizer state: {e}"))?
                    }
                    Ok(_) => return Err("unexpected worker message".to_string()),
                    Err(_) => return Err("worker pool died during state restore".to_string()),
                }
            }
        }

        let mut global = self.encoder.parameters();
        global.extend(self.pretrainer.parameters());

        let mut trace = Vec::new();
        for epoch in self.next_epoch..tc.epochs {
            let t0 = Instant::now();
            let mut order: Vec<usize> = (0..n_docs).collect();
            let mut erng = ChaCha8Rng::seed_from_u64(epoch_seed(self.base_seed, epoch));
            order.shuffle(&mut erng);

            let round_size = tc.sync_every.max(1) * workers;
            // Per-round, per-worker shards, fixed before any round runs:
            // round-robin within a round so a short tail still spreads
            // evenly, identical regardless of sync mode.
            let shards: Vec<Vec<Vec<usize>>> = order
                .chunks(round_size)
                .map(|slice| {
                    let mut s: Vec<Vec<usize>> = vec![Vec::new(); workers];
                    for (i, &di) in slice.iter().enumerate() {
                        s[i % workers].push(di);
                    }
                    s
                })
                .collect();

            let mut acc = PretrainMetrics::default();
            let mut docs_done = 0usize;
            let mut tokens = 0u64;
            let mut busy = 0.0f64;
            let mut tally = |results: &[RoundResult]| {
                for r in results {
                    acc.wp += r.metrics.wp;
                    acc.cl += r.metrics.cl;
                    acc.ns += r.metrics.ns;
                    acc.total += r.metrics.total;
                    docs_done += r.docs;
                    tokens += r.tokens;
                    busy += r.busy_seconds;
                }
            };
            // Broadcast one round with the *current* global values.
            let broadcast = |round: usize, send_delta: bool| -> Result<(), String> {
                let _g = resuformer_telemetry::span("train.broadcast");
                let values: Vec<NdArray> = global.iter().map(|p| p.value()).collect();
                for (w, shard) in shards[round].iter().enumerate() {
                    to_txs[w]
                        .send(ToWorker::Round {
                            epoch,
                            round,
                            doc_ids: shard.clone(),
                            params: values.clone(),
                            send_delta,
                        })
                        .map_err(|_| format!("worker {w} died"))?;
                }
                Ok(())
            };

            match tc.sync {
                SyncMode::Barrier => {
                    for round in 0..shards.len() {
                        broadcast(round, false)?;
                        let mut results: Vec<Option<RoundResult>> =
                            (0..workers).map(|_| None).collect();
                        for _ in 0..workers {
                            match from_rx.recv() {
                                Ok(FromWorker::Round(r)) => results[r.worker] = Some(r),
                                Ok(_) => return Err("unexpected worker message".to_string()),
                                Err(_) => return Err("worker pool died mid-round".to_string()),
                            }
                        }
                        let results: Vec<RoundResult> = results
                            .into_iter()
                            .map(|r| r.ok_or_else(|| "duplicate worker round result".to_string()))
                            .collect::<Result<_, _>>()?;

                        resuformer_telemetry::span::time("train.averaging", || {
                            average_into(&global, &results)
                        });
                        self.rounds_folded += 1;
                        tally(&results);
                    }
                }
                SyncMode::Stale { max_lag } => {
                    let mut sched: StaleScheduler<RoundResult> =
                        StaleScheduler::new(workers, shards.len(), max_lag);
                    loop {
                        // Dispatch eagerly after every fold so each round's
                        // broadcast base is exactly its pinned snapshot.
                        for round in sched.take_dispatches() {
                            broadcast(round, sched.uses_delta(round))?;
                        }
                        if sched.done() {
                            break;
                        }
                        // Fold one round, then loop to re-dispatch before
                        // folding the next — base pinning depends on it.
                        if let Some((round, results)) = sched.pop_foldable() {
                            resuformer_telemetry::span::time("train.fold", || {
                                if sched.uses_delta(round) {
                                    fold_deltas(&global, &results);
                                } else {
                                    average_into(&global, &results);
                                }
                            });
                            self.rounds_folded += 1;
                            tally(&results);
                            continue;
                        }
                        match from_rx.recv() {
                            Ok(FromWorker::Round(r)) => sched.record(r.round, r.worker, r)?,
                            Ok(_) => return Err("unexpected worker message".to_string()),
                            Err(_) => return Err("worker pool died mid-round".to_string()),
                        }
                    }
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            let n = docs_done.max(1) as f32;
            let m = EpochMetrics {
                epoch,
                wp: acc.wp / n,
                cl: acc.cl / n,
                ns: acc.ns / n,
                total: acc.total / n,
                docs: docs_done,
                tokens,
                wall_seconds: wall,
                tokens_per_sec: tokens as f64 / wall.max(1e-9),
                utilization: (busy / (wall.max(1e-9) * workers as f64)).min(1.0),
            };
            on_epoch(&m);
            trace.push(m);

            let completed = epoch + 1;
            self.next_epoch = completed;
            let periodic = tc.checkpoint_every > 0 && completed % tc.checkpoint_every == 0;
            if let Some(path) = &tc.checkpoint_path {
                if periodic && completed < tc.epochs {
                    let _g = resuformer_telemetry::span("train.checkpoint");
                    self.optimizer_states = collect_states(to_txs, from_rx, workers)?;
                    self.resume_workers = Some(workers);
                    self.resume_sync = Some(tc.sync);
                    self.write_checkpoint(path, workers, tc.epochs)?;
                }
            }
        }

        // Pull final optimizer state so a later `train` call (or the final
        // checkpoint) continues exactly where this run stopped.
        {
            let _g = resuformer_telemetry::span("train.checkpoint");
            self.optimizer_states = collect_states(to_txs, from_rx, workers)?;
            self.resume_workers = Some(workers);
            self.resume_sync = Some(tc.sync);
            if let Some(path) = &tc.checkpoint_path {
                self.write_checkpoint(path, workers, tc.epochs)?;
            }
        }
        Ok(trace)
    }

    fn write_checkpoint(
        &self,
        path: &str,
        workers: usize,
        total_epochs: usize,
    ) -> Result<(), String> {
        let meta = CheckpointMeta {
            init_seed: self.init_seed,
            base_seed: self.base_seed,
            next_epoch: self.next_epoch,
            total_epochs,
            workers,
            sync: self.resume_sync.unwrap_or_default(),
            rounds_folded: self.rounds_folded,
        };
        model_io::save_checkpoint(
            path,
            &self.encoder,
            &self.pretrainer,
            &self.wordpiece,
            &self.config,
            &meta,
            &self.optimizer_states,
        )
    }
}

/// Deterministic weighted parameter average: fixed worker order, weights
/// proportional to documents processed. A round with no non-empty documents
/// leaves the global parameters unchanged.
fn average_into(global: &[Tensor], results: &[RoundResult]) {
    let total_docs: usize = results.iter().map(|r| r.docs).sum();
    if total_docs == 0 {
        return;
    }
    for (pi, p) in global.iter().enumerate() {
        let mut sum: Option<NdArray> = None;
        for r in results {
            if r.docs == 0 {
                continue;
            }
            let w = r.docs as f32 / total_docs as f32;
            match &mut sum {
                None => {
                    let mut a = r.params[pi].clone();
                    for x in a.data_mut() {
                        *x *= w;
                    }
                    sum = Some(a);
                }
                Some(a) => a.axpy(w, &r.params[pi]),
            }
        }
        if let Some(avg) = sum {
            p.set_value(avg);
        }
    }
}

/// Stale-mode fold: add the document-weighted average of the workers'
/// *deltas* (local progress relative to each round's pinned broadcast base)
/// onto the current global parameters. Deterministic for the same reasons
/// as [`average_into`]: fixed worker order, weights from document counts.
fn fold_deltas(global: &[Tensor], results: &[RoundResult]) {
    let total_docs: usize = results.iter().map(|r| r.docs).sum();
    if total_docs == 0 {
        return;
    }
    for (pi, p) in global.iter().enumerate() {
        let mut v = p.value();
        for r in results {
            if r.docs == 0 {
                continue;
            }
            let w = r.docs as f32 / total_docs as f32;
            v.axpy(w, &r.params[pi]);
        }
        p.set_value(v);
    }
}

fn collect_states(
    to_txs: &[crossbeam::channel::Sender<ToWorker>],
    from_rx: &crossbeam::channel::Receiver<FromWorker>,
    workers: usize,
) -> Result<Vec<Vec<u8>>, String> {
    for (w, tx) in to_txs.iter().enumerate() {
        tx.send(ToWorker::SaveState)
            .map_err(|_| format!("worker {w} died"))?;
    }
    let mut states: Vec<Option<Vec<u8>>> = (0..workers).map(|_| None).collect();
    for _ in 0..workers {
        match from_rx.recv() {
            Ok(FromWorker::State { worker, bytes }) => states[worker] = Some(bytes),
            Ok(_) => return Err("unexpected worker message".to_string()),
            Err(_) => return Err("worker pool died during state save".to_string()),
        }
    }
    states
        .into_iter()
        .map(|s| s.ok_or_else(|| "missing worker state".to_string()))
        .collect()
}
