//! Bounded-staleness round scheduling (the deterministic core of
//! [`crate::engine`]'s `SyncMode::Stale`).
//!
//! The scheduler is a pure state machine over round indices — it owns no
//! channels, threads or tensors, which keeps every scheduling invariant
//! unit-testable without spinning up a worker pool (this file is std-only
//! and compiles standalone with `rustc --edition 2021 --test`).
//!
//! Invariants it enforces:
//!
//! * **Pinned bases.** Round `r` is *eligible for dispatch* exactly when
//!   round `r - 1 - max_lag` has been folded (rounds `0..=max_lag` are
//!   eligible immediately). Because the engine dispatches eagerly after
//!   every single fold, the broadcast base for round `r` is always the
//!   global parameter state `G_{max(r-1-max_lag, -1)}` — a pure function
//!   of the configuration, never of arrival timing.
//! * **Bounded lag.** The fold cursor advances only when the *slowest*
//!   worker has returned a round, so no worker can ever start a round more
//!   than `max_lag` ahead of the slowest peer.
//! * **Deterministic fold order.** Rounds fold strictly in index order and
//!   each round's results are released in worker-index order, regardless
//!   of arrival order.
//! * **Degeneracy.** With `max_lag = 0` the schedule *is* the barrier
//!   schedule: one round in flight, folded from raw parameters
//!   ([`StaleScheduler::uses_delta`] is false for every round), so the
//!   arithmetic matches barrier mode bit for bit.

use std::collections::VecDeque;

/// Schedules rounds of one epoch under a bounded-staleness window.
///
/// Generic over the per-worker result payload `R` so the state machine can
/// be tested with plain integers.
pub(crate) struct StaleScheduler<R> {
    workers: usize,
    n_rounds: usize,
    max_lag: usize,
    /// First round not yet handed out by [`take_dispatches`].
    next_dispatch: usize,
    /// Highest folded round (`-1` = none yet).
    folded: i64,
    /// Arrived-but-unfolded results for rounds `folded+1 ..`, one slot per
    /// worker. Front = round `folded + 1`.
    pending: VecDeque<Vec<Option<R>>>,
}

impl<R> StaleScheduler<R> {
    pub(crate) fn new(workers: usize, n_rounds: usize, max_lag: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        StaleScheduler {
            workers,
            n_rounds,
            max_lag,
            next_dispatch: 0,
            folded: -1,
            pending: VecDeque::new(),
        }
    }

    /// Rounds that became eligible since the last call, in order. The
    /// caller must broadcast each with the *current* global parameters:
    /// eligibility is granted exactly when the round's pinned base is the
    /// freshest folded state.
    pub(crate) fn take_dispatches(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        while self.next_dispatch < self.n_rounds
            && self.next_dispatch as i64 <= self.folded + 1 + self.max_lag as i64
        {
            out.push(self.next_dispatch);
            self.next_dispatch += 1;
        }
        out
    }

    /// Whether round `round`'s results are deltas against their pinned
    /// base (`true`) or raw parameters to average directly (`false`; only
    /// round 0 and every round of a `max_lag = 0` schedule, where the
    /// pinned base *is* the fold predecessor).
    pub(crate) fn uses_delta(&self, round: usize) -> bool {
        round > 0 && self.max_lag > 0
    }

    /// Record worker `worker`'s result for `round`. Errors on duplicate or
    /// out-of-window results (a protocol bug, not a data condition).
    pub(crate) fn record(&mut self, round: usize, worker: usize, result: R) -> Result<(), String> {
        if worker >= self.workers {
            return Err(format!("round result from unknown worker {worker}"));
        }
        if round >= self.next_dispatch || (round as i64) <= self.folded {
            return Err(format!("round {round} result outside the staleness window"));
        }
        let idx = (round as i64 - self.folded - 1) as usize;
        while self.pending.len() <= idx {
            self.pending
                .push_back((0..self.workers).map(|_| None).collect());
        }
        let slot = &mut self.pending[idx][worker];
        if slot.is_some() {
            return Err(format!(
                "duplicate result for round {round} worker {worker}"
            ));
        }
        *slot = Some(result);
        Ok(())
    }

    /// If the next round in fold order is complete, advance the cursor and
    /// return `(round, results in worker order)`. Folds are released one
    /// at a time so the caller can re-dispatch (pinning the next round's
    /// base) between folds.
    pub(crate) fn pop_foldable(&mut self) -> Option<(usize, Vec<R>)> {
        let front = self.pending.front()?;
        if front.iter().any(|r| r.is_none()) {
            return None;
        }
        let results = self
            .pending
            .pop_front()
            .expect("front exists")
            .into_iter()
            .map(|r| r.expect("checked complete"))
            .collect();
        self.folded += 1;
        Some((self.folded as usize, results))
    }

    /// Whether every round has been folded.
    pub(crate) fn done(&self) -> bool {
        self.folded + 1 >= self.n_rounds as i64
    }

    /// Rounds folded so far.
    pub(crate) fn rounds_folded(&self) -> u64 {
        (self.folded + 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a schedule to completion with a given per-worker completion
    /// order, returning the fold order observed.
    fn drive(
        workers: usize,
        n_rounds: usize,
        max_lag: usize,
        reversed_arrival: bool,
    ) -> Vec<usize> {
        let mut s: StaleScheduler<(usize, usize)> = StaleScheduler::new(workers, n_rounds, max_lag);
        let mut folds = Vec::new();
        let mut inbox: Vec<(usize, usize)> = Vec::new();
        loop {
            for r in s.take_dispatches() {
                for w in 0..workers {
                    inbox.push((r, w));
                }
            }
            if s.done() {
                break;
            }
            if let Some((round, results)) = s.pop_foldable() {
                assert_eq!(results.len(), workers);
                for (w, (rr, rw)) in results.iter().enumerate() {
                    assert_eq!((*rr, *rw), (round, w), "results in worker order");
                }
                folds.push(round);
                continue;
            }
            // Deliver one outstanding result; adversarial arrival order
            // must not change the fold order.
            let i = if reversed_arrival { inbox.len() - 1 } else { 0 };
            let (r, w) = inbox.remove(i);
            s.record(r, w, (r, w)).unwrap();
        }
        folds
    }

    #[test]
    fn folds_in_round_order_regardless_of_arrival() {
        for &lag in &[0usize, 1, 2, 4, 100] {
            let want: Vec<usize> = (0..7).collect();
            assert_eq!(drive(3, 7, lag, false), want, "lag {lag} fifo");
            assert_eq!(drive(3, 7, lag, true), want, "lag {lag} lifo");
        }
    }

    #[test]
    fn zero_lag_is_the_barrier_schedule() {
        let mut s: StaleScheduler<u32> = StaleScheduler::new(2, 3, 0);
        assert_eq!(s.take_dispatches(), vec![0], "one round in flight");
        assert_eq!(s.take_dispatches(), Vec::<usize>::new());
        s.record(0, 0, 1).unwrap();
        assert!(s.pop_foldable().is_none(), "waits for the slow worker");
        s.record(0, 1, 2).unwrap();
        assert_eq!(s.pop_foldable(), Some((0, vec![1, 2])));
        assert_eq!(s.take_dispatches(), vec![1], "next round only after fold");
        for r in 0..3 {
            assert!(!s.uses_delta(r), "zero lag always folds raw parameters");
        }
    }

    #[test]
    fn lag_bounds_how_far_ahead_dispatch_runs() {
        let mut s: StaleScheduler<u32> = StaleScheduler::new(2, 10, 2);
        // Rounds 0..=max_lag are eligible immediately.
        assert_eq!(s.take_dispatches(), vec![0, 1, 2]);
        // A fast worker finishing rounds 0..=2 unlocks nothing by itself:
        // the fold cursor waits on the slowest peer.
        for r in 0..3 {
            s.record(r, 0, 0).unwrap();
        }
        assert!(s.pop_foldable().is_none());
        assert_eq!(s.take_dispatches(), Vec::<usize>::new());
        // The slow worker returning round 0 folds it and unlocks round 3.
        s.record(0, 1, 0).unwrap();
        assert_eq!(s.pop_foldable(), Some((0, vec![0, 0])));
        assert_eq!(s.take_dispatches(), vec![3]);
        assert_eq!(s.rounds_folded(), 1);
    }

    #[test]
    fn delta_folding_skips_round_zero_only() {
        let s: StaleScheduler<u32> = StaleScheduler::new(2, 5, 3);
        assert!(!s.uses_delta(0), "round 0's base is the initial state");
        for r in 1..5 {
            assert!(s.uses_delta(r), "round {r} folds deltas");
        }
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut s: StaleScheduler<u32> = StaleScheduler::new(2, 4, 1);
        let _ = s.take_dispatches();
        s.record(0, 0, 7).unwrap();
        assert!(s.record(0, 0, 7).is_err(), "duplicate result");
        assert!(s.record(0, 9, 7).is_err(), "unknown worker");
        assert!(s.record(3, 0, 7).is_err(), "undispatched round");
        s.record(0, 1, 7).unwrap();
        let _ = s.pop_foldable();
        assert!(s.record(0, 1, 7).is_err(), "already-folded round");
    }

    #[test]
    fn empty_epoch_is_immediately_done() {
        let mut s: StaleScheduler<u32> = StaleScheduler::new(3, 0, 2);
        assert!(s.done());
        assert_eq!(s.take_dispatches(), Vec::<usize>::new());
        assert_eq!(s.rounds_folded(), 0);
    }
}
