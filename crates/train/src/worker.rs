//! Worker threads: each owns a model replica + local Adam state and trains
//! on the document shards the coordinator sends it.

use crossbeam::channel::{Receiver, Sender};

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::config::{ModelConfig, PretrainConfig};
use resuformer::data::DocumentInput;
use resuformer::pretrain::{build_pretrain_model, ObjectiveSwitches, PretrainMetrics};
use resuformer_nn::{Adam, Module};
use resuformer_tensor::NdArray;
use std::sync::Arc;
use std::time::Instant;

/// Deterministic per-epoch shuffle seed.
pub(crate) fn epoch_seed(base_seed: u64, epoch: usize) -> u64 {
    base_seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Deterministic per-(epoch, round, worker) objective-sampling seed.
pub(crate) fn round_seed(base_seed: u64, epoch: usize, round: usize, worker: usize) -> u64 {
    base_seed
        ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (round as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ (worker as u64 + 1).wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// Coordinator → worker messages.
pub(crate) enum ToWorker {
    /// Overwrite the replica with `params` and train on `doc_ids`.
    Round {
        epoch: usize,
        round: usize,
        doc_ids: Vec<usize>,
        params: Vec<NdArray>,
        /// Stale mode: return `trained − params` deltas instead of raw
        /// parameters, so the coordinator can fold local progress onto a
        /// global state that has advanced since this broadcast.
        send_delta: bool,
    },
    /// Reply with the serialized local Adam state.
    SaveState,
    /// Restore the local Adam state from a checkpoint blob.
    LoadState(Vec<u8>),
}

/// One worker's result for one round.
pub(crate) struct RoundResult {
    pub worker: usize,
    /// Which round this result answers (barrier mode has exactly one in
    /// flight; stale mode routes by this index).
    pub round: usize,
    /// Replica parameter values after the local updates, or deltas against
    /// the broadcast base when the round asked for `send_delta`.
    pub params: Vec<NdArray>,
    /// Losses summed over the documents this worker processed.
    pub metrics: PretrainMetrics,
    /// Non-empty documents processed.
    pub docs: usize,
    /// Input tokens consumed.
    pub tokens: u64,
    /// Time spent inside the round (for utilization accounting).
    pub busy_seconds: f64,
}

/// Worker → coordinator messages.
pub(crate) enum FromWorker {
    Round(RoundResult),
    State {
        worker: usize,
        bytes: Vec<u8>,
    },
    StateLoaded {
        worker: usize,
        result: Result<(), String>,
    },
}

/// Immutable description a worker needs to build its replica.
pub(crate) struct WorkerSpec {
    pub worker: usize,
    pub init_seed: u64,
    pub base_seed: u64,
    pub config: ModelConfig,
    pub pretrain: PretrainConfig,
    pub switches: ObjectiveSwitches,
    pub dynamic_masking: bool,
    pub docs: Arc<Vec<DocumentInput>>,
    /// Stale mode: time between sending a result and the next instruction
    /// is the bounded-staleness wait, recorded as `train.wait_stale`.
    pub stale: bool,
}

/// The persistent worker loop. Exits when the coordinator drops its sender.
pub(crate) fn worker_loop(spec: WorkerSpec, rx: Receiver<ToWorker>, tx: Sender<FromWorker>) {
    let (enc, mut pt) = build_pretrain_model(spec.init_seed, &spec.config, spec.pretrain);
    pt.switches = spec.switches;
    pt.dynamic_masking = spec.dynamic_masking;
    let mut params = enc.parameters();
    params.extend(pt.parameters());
    let mut opt = Adam::new(params.clone(), spec.pretrain.lr, spec.pretrain.weight_decay);

    // Stale mode: open between sending a result and receiving the next
    // instruction, so per-phase tables show time blocked on the staleness
    // window rather than burying it in idle.
    let mut wait: Option<resuformer_telemetry::SpanGuard> = None;
    while let Ok(msg) = rx.recv() {
        drop(wait.take());
        match msg {
            ToWorker::Round {
                epoch,
                round,
                doc_ids,
                params: new_values,
                send_delta,
            } => {
                let t0 = Instant::now();
                let base: Option<Vec<NdArray>> = {
                    // Applying the averaged parameters is the receive half
                    // of the broadcast phase.
                    let _g = resuformer_telemetry::span("train.broadcast");
                    if send_delta {
                        for (p, v) in params.iter().zip(new_values.iter()) {
                            p.set_value(v.clone());
                        }
                        Some(new_values)
                    } else {
                        for (p, v) in params.iter().zip(new_values) {
                            p.set_value(v);
                        }
                        None
                    }
                };
                let mut rng = ChaCha8Rng::seed_from_u64(round_seed(
                    spec.base_seed,
                    epoch,
                    round,
                    spec.worker,
                ));
                let mut acc = PretrainMetrics::default();
                let mut docs_done = 0usize;
                let mut tokens = 0u64;
                for &di in &doc_ids {
                    let doc = &spec.docs[di];
                    if doc.is_empty() {
                        continue;
                    }
                    opt.zero_grad();
                    let (loss, m) = resuformer_telemetry::span::time("train.forward", || {
                        pt.loss(&enc, doc, di, &mut rng)
                    });
                    resuformer_telemetry::span::time("train.backward", || {
                        loss.backward();
                        opt.clip_grad_norm(5.0);
                        opt.step();
                    });
                    acc.wp += m.wp;
                    acc.cl += m.cl;
                    acc.ns += m.ns;
                    acc.total += m.total;
                    docs_done += 1;
                    tokens += doc
                        .sentences
                        .iter()
                        .map(|s| s.token_ids.len() as u64)
                        .sum::<u64>();
                }
                let out: Vec<NdArray> = match &base {
                    Some(base) => params
                        .iter()
                        .zip(base)
                        .map(|(p, b)| {
                            let mut d = p.value();
                            for (x, y) in d.data_mut().iter_mut().zip(b.data()) {
                                *x -= *y;
                            }
                            d
                        })
                        .collect(),
                    None => params.iter().map(|p| p.value()).collect(),
                };
                let sent = tx.send(FromWorker::Round(RoundResult {
                    worker: spec.worker,
                    round,
                    params: out,
                    metrics: acc,
                    docs: docs_done,
                    tokens,
                    busy_seconds: t0.elapsed().as_secs_f64(),
                }));
                if sent.is_err() {
                    break;
                }
                if spec.stale {
                    wait = Some(resuformer_telemetry::span("train.wait_stale"));
                }
            }
            ToWorker::SaveState => {
                let sent = tx.send(FromWorker::State {
                    worker: spec.worker,
                    bytes: opt.save_state_bytes(),
                });
                if sent.is_err() {
                    break;
                }
            }
            ToWorker::LoadState(bytes) => {
                let result = opt.load_state_bytes(&bytes);
                let sent = tx.send(FromWorker::StateLoaded {
                    worker: spec.worker,
                    result,
                });
                if sent.is_err() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_across_axes() {
        let s = round_seed(7, 1, 2, 3);
        assert_ne!(s, round_seed(7, 2, 2, 3), "epoch must matter");
        assert_ne!(s, round_seed(7, 1, 3, 3), "round must matter");
        assert_ne!(s, round_seed(7, 1, 2, 4), "worker must matter");
        assert_ne!(s, round_seed(8, 1, 2, 3), "base seed must matter");
        assert_ne!(epoch_seed(7, 0), epoch_seed(7, 1));
    }
}
