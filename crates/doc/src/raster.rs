//! Sentence-crop rasterisation for visual region features.
//!
//! The paper segments the page image by each sentence's box and feeds the
//! crop to a frozen Faster R-CNN. Our generator has no pixel source, so we
//! rasterise the *style geometry* of the crop instead: each member token is
//! drawn as a filled box whose height encodes font size, whose intensity
//! encodes weight (bold), and whose horizontal placement encodes indentation
//! and extent relative to the page. These are precisely the cues the paper
//! says the visual modality contributes ("a section title usually has
//! different font color or a larger font size").

use crate::sentence::Sentence;
use crate::token::{Document, Page};

/// Patch height in pixels.
pub const PATCH_H: usize = 16;
/// Patch width in pixels.
pub const PATCH_W: usize = 48;
/// Font size (points) that maps to the full patch height.
pub const MAX_FONT: f32 = 24.0;

/// Rasterise a sentence into a `PATCH_H × PATCH_W` grayscale patch
/// (row-major, values in `[0, 1]`), in the coordinate frame of the whole
/// page width so indentation is visible.
pub fn rasterize_sentence(doc: &Document, sentence: &Sentence, page: &Page) -> Vec<f32> {
    let mut patch = vec![0.0f32; PATCH_H * PATCH_W];
    let sx = PATCH_W as f32 / page.width;

    for &ti in &sentence.token_indices {
        let tok = &doc.tokens[ti];
        // Horizontal extent across the page.
        let px0 = (tok.bbox.x0 * sx).floor().max(0.0) as usize;
        let px1 = ((tok.bbox.x1 * sx).ceil() as usize).clamp(px0 + 1, PATCH_W);
        // Vertical extent encodes font size: larger fonts fill more rows,
        // centred vertically.
        let frac = (tok.font_size / MAX_FONT).clamp(0.1, 1.0);
        let rows = ((PATCH_H as f32) * frac).round().max(1.0) as usize;
        let top = (PATCH_H - rows.min(PATCH_H)) / 2;
        let intensity = if tok.bold { 1.0 } else { 0.6 };
        for y in top..(top + rows).min(PATCH_H) {
            for x in px0..px1.min(PATCH_W) {
                patch[y * PATCH_W + x] = intensity;
            }
        }
    }
    patch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentence::{concat_sentences, SentenceConfig};
    use crate::token::{BBox, Token};

    fn make_doc(font_size: f32, bold: bool, x0: f32) -> (Document, Sentence, Page) {
        let page = Page::a4();
        let doc = Document {
            tokens: vec![Token {
                text: "Education".into(),
                bbox: BBox::new(x0, 100.0, x0 + 80.0, 100.0 + font_size),
                page: 0,
                font_size,
                bold,
            }],
            pages: vec![page],
        };
        let s = concat_sentences(&doc, &SentenceConfig::default())
            .into_iter()
            .next()
            .unwrap();
        (doc, s, page)
    }

    #[test]
    fn patch_dimensions_and_range() {
        let (doc, s, page) = make_doc(10.0, false, 50.0);
        let p = rasterize_sentence(&doc, &s, &page);
        assert_eq!(p.len(), PATCH_H * PATCH_W);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(p.iter().any(|&v| v > 0.0), "patch must not be blank");
    }

    #[test]
    fn larger_font_fills_more_rows() {
        let coverage = |fs: f32| {
            let (doc, s, page) = make_doc(fs, false, 50.0);
            rasterize_sentence(&doc, &s, &page)
                .iter()
                .filter(|&&v| v > 0.0)
                .count()
        };
        assert!(coverage(20.0) > coverage(8.0));
    }

    #[test]
    fn bold_is_brighter() {
        let (d1, s1, p1) = make_doc(10.0, true, 50.0);
        let (d2, s2, p2) = make_doc(10.0, false, 50.0);
        let b = rasterize_sentence(&d1, &s1, &p1);
        let n = rasterize_sentence(&d2, &s2, &p2);
        assert!(
            b.iter().cloned().fold(0.0f32, f32::max) > n.iter().cloned().fold(0.0f32, f32::max)
        );
    }

    #[test]
    fn indentation_shifts_pixels_right() {
        let first_col = |x0: f32| {
            let (doc, s, page) = make_doc(10.0, false, x0);
            let p = rasterize_sentence(&doc, &s, &page);
            (0..PATCH_W)
                .find(|&x| (0..PATCH_H).any(|y| p[y * PATCH_W + x] > 0.0))
                .unwrap()
        };
        assert!(first_col(300.0) > first_col(20.0));
    }

    #[test]
    fn rasterisation_is_deterministic() {
        let (doc, s, page) = make_doc(12.0, true, 100.0);
        assert_eq!(
            rasterize_sentence(&doc, &s, &page),
            rasterize_sentence(&doc, &s, &page)
        );
    }
}
