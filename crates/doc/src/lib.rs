//! # resuformer-doc
//!
//! The document/layout substrate: what the paper obtains from PyMuPDF, we
//! model directly. A [`Document`] is a reading-ordered stream of [`Token`]s,
//! each carrying its text, bounding box, page index and font style, plus the
//! page geometry.
//!
//! * [`sentence`] concatenates adjacent tokens into the paper's "sentences"
//!   (§III-A): visually-adjacent same-row token runs with merged boxes;
//! * [`norm`] normalises coordinates into `[0, 1000]` and builds the
//!   seven-tuple `(x_min, y_min, x_max, y_max, width, height, page)` of
//!   Eq. (2);
//! * [`raster`] renders a sentence's glyph boxes into a small grayscale
//!   patch — the input to the visual region-feature CNN that substitutes
//!   for the paper's frozen Faster R-CNN (DESIGN.md §2).

#![warn(missing_docs)]

pub mod norm;
pub mod raster;
pub mod sentence;
pub mod token;

pub use norm::{normalize_bbox, LayoutTuple, COORD_RANGE};
pub use raster::rasterize_sentence;
pub use sentence::{concat_sentences, Sentence, SentenceConfig};
pub use token::{BBox, Document, Page, Token};
