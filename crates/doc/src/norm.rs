//! Coordinate normalisation and the layout seven-tuple of Eq. (2).
//!
//! Following LayoutLMv2 (and §IV-A1), "all coordinates are normalized and
//! discretized to integers in the range \[0, 1000\]". The layout embedding
//! consumes `(x_min, y_min, x_max, y_max, width, height, page)`.

use crate::token::{BBox, Page};

/// Upper bound of the normalised coordinate range.
pub const COORD_RANGE: usize = 1000;

/// The discretised layout tuple of Eq. (2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutTuple {
    /// Left edge in `[0, 1000]`.
    pub x_min: usize,
    /// Top edge in `[0, 1000]`.
    pub y_min: usize,
    /// Right edge in `[0, 1000]`.
    pub x_max: usize,
    /// Bottom edge in `[0, 1000]`.
    pub y_max: usize,
    /// Width in `[0, 1000]`.
    pub width: usize,
    /// Height in `[0, 1000]`.
    pub height: usize,
    /// Zero-based page index.
    pub page: usize,
}

/// Normalise a bounding box against its page into the layout tuple.
pub fn normalize_bbox(bbox: &BBox, page_geom: &Page, page: usize) -> LayoutTuple {
    let clamp = |v: f32| -> usize { (v.max(0.0).min(COORD_RANGE as f32)).round() as usize };
    let sx = COORD_RANGE as f32 / page_geom.width;
    let sy = COORD_RANGE as f32 / page_geom.height;
    let x_min = clamp(bbox.x0 * sx);
    let y_min = clamp(bbox.y0 * sy);
    let x_max = clamp(bbox.x1 * sx);
    let y_max = clamp(bbox.y1 * sy);
    LayoutTuple {
        x_min,
        y_min,
        x_max,
        y_max,
        width: x_max - x_min,
        height: y_max - y_min,
        page,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_page_box_maps_to_full_range() {
        let p = Page {
            width: 600.0,
            height: 800.0,
        };
        let t = normalize_bbox(&BBox::new(0.0, 0.0, 600.0, 800.0), &p, 1);
        assert_eq!(
            t,
            LayoutTuple {
                x_min: 0,
                y_min: 0,
                x_max: 1000,
                y_max: 1000,
                width: 1000,
                height: 1000,
                page: 1,
            }
        );
    }

    #[test]
    fn mid_page_box_scales_proportionally() {
        let p = Page {
            width: 1000.0,
            height: 2000.0,
        };
        let t = normalize_bbox(&BBox::new(250.0, 500.0, 750.0, 1500.0), &p, 0);
        assert_eq!((t.x_min, t.y_min, t.x_max, t.y_max), (250, 250, 750, 750));
        assert_eq!((t.width, t.height), (500, 500));
    }

    #[test]
    fn out_of_page_coordinates_clamp() {
        let p = Page {
            width: 100.0,
            height: 100.0,
        };
        let t = normalize_bbox(&BBox::new(0.0, 0.0, 150.0, 50.0), &p, 0);
        assert_eq!(t.x_max, 1000);
        assert_eq!(t.y_max, 500);
    }

    proptest! {
        #[test]
        fn prop_always_within_range(
            x0 in 0.0f32..500.0, y0 in 0.0f32..700.0,
            w in 0.0f32..95.0, h in 0.0f32..140.0,
        ) {
            let p = Page { width: 595.0, height: 842.0 };
            let t = normalize_bbox(&BBox::new(x0, y0, x0 + w, y0 + h), &p, 0);
            prop_assert!(t.x_max <= COORD_RANGE && t.y_max <= COORD_RANGE);
            prop_assert!(t.x_min <= t.x_max && t.y_min <= t.y_max);
            prop_assert_eq!(t.width, t.x_max - t.x_min);
            prop_assert_eq!(t.height, t.y_max - t.y_min);
        }
    }
}
