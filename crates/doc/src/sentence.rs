//! Token → "sentence" concatenation (§III-A).
//!
//! The paper concatenates adjacent tokens into sentences when "the two
//! tokens are closely spaced and in a row in the document", merging the
//! leftmost/rightmost token coordinates into the sentence box. The sentence
//! is *not* a linguistic sentence — just a visually contiguous token run —
//! and its length is capped (the paper uses 55 tokens).

use serde::{Deserialize, Serialize};

use crate::token::{BBox, Document};

/// Tunables for sentence concatenation.
#[derive(Clone, Copy, Debug)]
pub struct SentenceConfig {
    /// Maximum horizontal gap between adjacent tokens, as a multiple of the
    /// left token's font size.
    pub max_gap_em: f32,
    /// Hard cap on tokens per sentence (the paper's 55).
    pub max_tokens: usize,
}

impl Default for SentenceConfig {
    fn default() -> Self {
        SentenceConfig {
            max_gap_em: 1.5,
            max_tokens: 55,
        }
    }
}

/// A visually contiguous token run with a merged bounding box.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sentence {
    /// Indices into the owning document's token vector, in order.
    pub token_indices: Vec<usize>,
    /// Merged bounding box.
    pub bbox: BBox,
    /// Page index.
    pub page: usize,
    /// Maximum font size among member tokens (visual cue).
    pub font_size: f32,
    /// Whether any member token is bold (visual cue).
    pub bold: bool,
}

impl Sentence {
    /// Member words, borrowed from the document.
    pub fn words<'d>(&self, doc: &'d Document) -> Vec<&'d str> {
        self.token_indices
            .iter()
            .map(|&i| doc.tokens[i].text.as_str())
            .collect()
    }

    /// Member words joined with spaces.
    pub fn text(&self, doc: &Document) -> String {
        self.words(doc).join(" ")
    }

    /// Number of member tokens.
    pub fn len(&self) -> usize {
        self.token_indices.len()
    }

    /// Sentences are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Concatenate a document's tokens into sentences.
///
/// Tokens are assumed to be in reading order (as the parser/generator
/// emits them). A sentence breaks when the page changes, the row changes,
/// the horizontal gap exceeds `max_gap_em` font sizes, or the length cap is
/// reached.
pub fn concat_sentences(doc: &Document, config: &SentenceConfig) -> Vec<Sentence> {
    let mut sentences: Vec<Sentence> = Vec::new();
    let mut current: Option<Sentence> = None;

    for (i, tok) in doc.tokens.iter().enumerate() {
        let extend = match &current {
            None => false,
            Some(s) => {
                let last = &doc.tokens[*s.token_indices.last().expect("non-empty")];
                tok.page == s.page
                    && last.bbox.same_row(&tok.bbox)
                    && tok.bbox.x0 >= last.bbox.x0 // still moving right-ish
                    && (tok.bbox.x0 - last.bbox.x1) <= config.max_gap_em * last.font_size
                    && s.token_indices.len() < config.max_tokens
            }
        };
        if extend {
            let s = current.as_mut().expect("checked above");
            s.token_indices.push(i);
            s.bbox = s.bbox.union(&tok.bbox);
            s.font_size = s.font_size.max(tok.font_size);
            s.bold |= tok.bold;
        } else {
            if let Some(s) = current.take() {
                sentences.push(s);
            }
            current = Some(Sentence {
                token_indices: vec![i],
                bbox: tok.bbox,
                page: tok.page,
                font_size: tok.font_size,
                bold: tok.bold,
            });
        }
    }
    if let Some(s) = current {
        sentences.push(s);
    }
    sentences
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Page, Token};

    fn tok(text: &str, x0: f32, y0: f32, w: f32, page: usize) -> Token {
        Token {
            text: text.into(),
            bbox: BBox::new(x0, y0, x0 + w, y0 + 10.0),
            page,
            font_size: 10.0,
            bold: false,
        }
    }

    fn doc(tokens: Vec<Token>) -> Document {
        let pages = tokens.iter().map(|t| t.page).max().unwrap_or(0) + 1;
        Document {
            tokens,
            pages: vec![Page::a4(); pages],
        }
    }

    #[test]
    fn adjacent_same_row_tokens_merge() {
        let d = doc(vec![
            tok("Software", 50.0, 100.0, 60.0, 0),
            tok("Engineer", 115.0, 100.0, 60.0, 0),
        ]);
        let s = concat_sentences(&d, &SentenceConfig::default());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text(&d), "Software Engineer");
        assert_eq!(s[0].bbox.x0, 50.0);
        assert_eq!(s[0].bbox.x1, 175.0);
    }

    #[test]
    fn large_gap_breaks_sentence() {
        // Two columns on the same row: gap 200pt >> 1.5em.
        let d = doc(vec![
            tok("Email:", 50.0, 100.0, 40.0, 0),
            tok("a@b.com", 95.0, 100.0, 50.0, 0),
            tok("Phone:", 350.0, 100.0, 40.0, 0),
        ]);
        let s = concat_sentences(&d, &SentenceConfig::default());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].text(&d), "Email: a@b.com");
        assert_eq!(s[1].text(&d), "Phone:");
    }

    #[test]
    fn row_change_breaks_sentence() {
        let d = doc(vec![
            tok("line", 50.0, 100.0, 30.0, 0),
            tok("one", 85.0, 100.0, 30.0, 0),
            tok("line", 50.0, 120.0, 30.0, 0),
            tok("two", 85.0, 120.0, 30.0, 0),
        ]);
        let s = concat_sentences(&d, &SentenceConfig::default());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].text(&d), "line one");
        assert_eq!(s[1].text(&d), "line two");
    }

    #[test]
    fn page_change_breaks_sentence() {
        let d = doc(vec![
            tok("end", 50.0, 800.0, 30.0, 0),
            tok("start", 50.0, 800.0, 30.0, 1),
        ]);
        let s = concat_sentences(&d, &SentenceConfig::default());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].page, 0);
        assert_eq!(s[1].page, 1);
    }

    #[test]
    fn token_cap_breaks_sentence() {
        let tokens: Vec<Token> = (0..10)
            .map(|i| tok("w", 50.0 + 12.0 * i as f32, 100.0, 10.0, 0))
            .collect();
        let d = doc(tokens);
        let cfg = SentenceConfig {
            max_gap_em: 1.5,
            max_tokens: 4,
        };
        let s = concat_sentences(&d, &cfg);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].len(), 4);
        assert_eq!(s[1].len(), 4);
        assert_eq!(s[2].len(), 2);
    }

    #[test]
    fn style_cues_aggregate() {
        let mut t1 = tok("BIG", 50.0, 100.0, 30.0, 0);
        t1.font_size = 16.0;
        let mut t2 = tok("bold", 85.0, 102.0, 30.0, 0);
        t2.bold = true;
        // Keep them on the same visual row despite size difference.
        t2.bbox = BBox::new(85.0, 100.0, 115.0, 116.0);
        t1.bbox = BBox::new(50.0, 100.0, 80.0, 116.0);
        let d = doc(vec![t1, t2]);
        let s = concat_sentences(&d, &SentenceConfig::default());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].font_size, 16.0);
        assert!(s[0].bold);
    }

    #[test]
    fn empty_document_yields_no_sentences() {
        let d = Document::default();
        assert!(concat_sentences(&d, &SentenceConfig::default()).is_empty());
    }

    #[test]
    fn every_token_appears_exactly_once() {
        let d = doc(vec![
            tok("a", 50.0, 100.0, 10.0, 0),
            tok("b", 65.0, 100.0, 10.0, 0),
            tok("c", 400.0, 100.0, 10.0, 0),
            tok("d", 50.0, 130.0, 10.0, 0),
        ]);
        let s = concat_sentences(&d, &SentenceConfig::default());
        let mut all: Vec<usize> = s.iter().flat_map(|x| x.token_indices.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }
}
