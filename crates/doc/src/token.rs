//! Tokens, bounding boxes, pages and documents.

use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in page coordinates (points; origin
/// top-left, `y` grows downward, as in PDF viewers).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x0: f32,
    /// Top edge.
    pub y0: f32,
    /// Right edge.
    pub x1: f32,
    /// Bottom edge.
    pub y1: f32,
}

impl BBox {
    /// New box; panics on inverted edges.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        assert!(
            x1 >= x0 && y1 >= y0,
            "inverted bbox ({x0},{y0})-({x1},{y1})"
        );
        BBox { x0, y0, x1, y1 }
    }

    /// Box width.
    pub fn width(&self) -> f32 {
        self.x1 - self.x0
    }

    /// Box height.
    pub fn height(&self) -> f32 {
        self.y1 - self.y0
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Vertical centre.
    pub fn y_center(&self) -> f32 {
        (self.y0 + self.y1) * 0.5
    }

    /// Smallest box covering both.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Intersection area (0 when disjoint).
    pub fn intersection_area(&self, other: &BBox) -> f32 {
        let w = (self.x1.min(other.x1) - self.x0.max(other.x0)).max(0.0);
        let h = (self.y1.min(other.y1) - self.y0.max(other.y0)).max(0.0);
        w * h
    }

    /// Whether the boxes share the same text row: vertical-centre distance
    /// below half the max height.
    pub fn same_row(&self, other: &BBox) -> bool {
        let tol = self.height().max(other.height()) * 0.5;
        (self.y_center() - other.y_center()).abs() <= tol
    }
}

/// A word token extracted from a resume document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Token {
    /// Surface text (one word; no internal whitespace).
    pub text: String,
    /// Bounding box in page coordinates.
    pub bbox: BBox,
    /// Zero-based page index.
    pub page: usize,
    /// Font size in points (visual cue: titles are larger).
    pub font_size: f32,
    /// Bold flag (visual cue: headers are often bold).
    pub bold: bool,
}

/// Page geometry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Page {
    /// Page width in points.
    pub width: f32,
    /// Page height in points.
    pub height: f32,
}

impl Page {
    /// US-letter-ish default used by the generator.
    pub fn a4() -> Self {
        Page {
            width: 595.0,
            height: 842.0,
        }
    }
}

/// A parsed document: tokens in reading order plus page geometry.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Document {
    /// Tokens in reading order (page, then top-to-bottom, left-to-right).
    pub tokens: Vec<Token>,
    /// Pages, indexed by [`Token::page`].
    pub pages: Vec<Page>,
}

impl Document {
    /// Number of tokens.
    pub fn num_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Validate internal consistency (used by tests and the generator).
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.tokens.iter().enumerate() {
            if t.page >= self.pages.len() {
                return Err(format!(
                    "token {i} on page {} of {}",
                    t.page,
                    self.pages.len()
                ));
            }
            let p = self.pages[t.page];
            if t.bbox.x1 > p.width + 1e-3
                || t.bbox.y1 > p.height + 1e-3
                || t.bbox.x0 < -1e-3
                || t.bbox.y0 < -1e-3
            {
                return Err(format!("token {i} bbox {:?} outside page", t.bbox));
            }
            if t.text.is_empty() || t.text.contains(char::is_whitespace) {
                return Err(format!("token {i} has invalid text {:?}", t.text));
            }
            if t.font_size <= 0.0 {
                return Err(format!("token {i} has non-positive font size"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_geometry() {
        let b = BBox::new(10.0, 20.0, 30.0, 25.0);
        assert_eq!(b.width(), 20.0);
        assert_eq!(b.height(), 5.0);
        assert_eq!(b.area(), 100.0);
        assert_eq!(b.y_center(), 22.5);
    }

    #[test]
    fn union_and_intersection() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(5.0, 5.0, 15.0, 15.0);
        let u = a.union(&b);
        assert_eq!((u.x0, u.y0, u.x1, u.y1), (0.0, 0.0, 15.0, 15.0));
        assert_eq!(a.intersection_area(&b), 25.0);
        let c = BBox::new(20.0, 20.0, 30.0, 30.0);
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn same_row_tolerance() {
        let a = BBox::new(0.0, 100.0, 50.0, 110.0);
        let b = BBox::new(60.0, 102.0, 90.0, 112.0);
        assert!(a.same_row(&b));
        let c = BBox::new(60.0, 120.0, 90.0, 130.0);
        assert!(!a.same_row(&c));
    }

    #[test]
    fn document_validation_catches_bad_tokens() {
        let mut doc = Document {
            tokens: vec![Token {
                text: "hello".into(),
                bbox: BBox::new(0.0, 0.0, 50.0, 12.0),
                page: 0,
                font_size: 10.0,
                bold: false,
            }],
            pages: vec![Page::a4()],
        };
        assert!(doc.validate().is_ok());
        doc.tokens[0].page = 3;
        assert!(doc.validate().is_err());
        doc.tokens[0].page = 0;
        doc.tokens[0].text = "two words".into();
        assert!(doc.validate().is_err());
        doc.tokens[0].text = "ok".into();
        doc.tokens[0].bbox = BBox::new(0.0, 0.0, 9999.0, 12.0);
        assert!(doc.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "inverted bbox")]
    fn bbox_rejects_inversion() {
        BBox::new(10.0, 0.0, 5.0, 10.0);
    }
}
