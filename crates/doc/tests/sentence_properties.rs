//! Property-based tests of sentence concatenation invariants (§III-A).

use proptest::prelude::*;
use resuformer_doc::{concat_sentences, BBox, Document, Page, SentenceConfig, Token};

fn arb_token() -> impl Strategy<Value = Token> {
    (
        "[a-z]{1,10}",
        0.0f32..500.0,
        0.0f32..800.0,
        5.0f32..80.0,
        8.0f32..20.0,
        0usize..3,
        any::<bool>(),
    )
        .prop_map(|(text, x0, y0, w, font, page, bold)| Token {
            text,
            bbox: BBox::new(x0, y0, (x0 + w).min(595.0), (y0 + font).min(842.0)),
            page,
            font_size: font,
            bold,
        })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    proptest::collection::vec(arb_token(), 0..60).prop_map(|mut tokens| {
        // Reading order: sort by (page, y, x) like a parser would emit.
        tokens.sort_by(|a, b| {
            (a.page, a.bbox.y0 as i64, a.bbox.x0 as i64).cmp(&(
                b.page,
                b.bbox.y0 as i64,
                b.bbox.x0 as i64,
            ))
        });
        Document {
            tokens,
            pages: vec![Page::a4(); 3],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_token_in_exactly_one_sentence(doc in arb_doc()) {
        let sentences = concat_sentences(&doc, &SentenceConfig::default());
        let mut seen = vec![0usize; doc.num_tokens()];
        for s in &sentences {
            for &ti in &s.token_indices {
                seen[ti] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "coverage {:?}", seen);
    }

    #[test]
    fn sentence_boxes_cover_member_tokens(doc in arb_doc()) {
        let sentences = concat_sentences(&doc, &SentenceConfig::default());
        for s in &sentences {
            for &ti in &s.token_indices {
                let t = &doc.tokens[ti];
                prop_assert!(s.bbox.x0 <= t.bbox.x0 + 1e-3);
                prop_assert!(s.bbox.x1 >= t.bbox.x1 - 1e-3);
                prop_assert!(s.bbox.y0 <= t.bbox.y0 + 1e-3);
                prop_assert!(s.bbox.y1 >= t.bbox.y1 - 1e-3);
                prop_assert_eq!(t.page, s.page);
            }
        }
    }

    #[test]
    fn token_order_preserved_within_sentences(doc in arb_doc()) {
        let sentences = concat_sentences(&doc, &SentenceConfig::default());
        let flattened: Vec<usize> = sentences
            .iter()
            .flat_map(|s| s.token_indices.iter().copied())
            .collect();
        let mut sorted = flattened.clone();
        sorted.sort_unstable();
        prop_assert_eq!(flattened, sorted, "reading order must be preserved");
    }

    #[test]
    fn max_tokens_cap_is_respected(doc in arb_doc(), cap in 1usize..10) {
        let cfg = SentenceConfig { max_tokens: cap, ..SentenceConfig::default() };
        let sentences = concat_sentences(&doc, &cfg);
        for s in &sentences {
            prop_assert!(s.len() <= cap);
        }
    }

    #[test]
    fn style_cues_aggregate_max_and_any(doc in arb_doc()) {
        let sentences = concat_sentences(&doc, &SentenceConfig::default());
        for s in &sentences {
            let max_font = s
                .token_indices
                .iter()
                .map(|&i| doc.tokens[i].font_size)
                .fold(0.0f32, f32::max);
            let any_bold = s.token_indices.iter().any(|&i| doc.tokens[i].bold);
            prop_assert!((s.font_size - max_font).abs() < 1e-5);
            prop_assert_eq!(s.bold, any_bold);
        }
    }
}
