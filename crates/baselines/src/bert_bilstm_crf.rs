//! BERT+BiLSTM+CRF and BERT+BiLSTM+FCRF NER baselines (Table IV).
//!
//! Both share the BERT+BiLSTM feature stack of
//! [`resuformer::ner::NerModel`]'s architecture family with a chain decoder
//! on top:
//!
//! * [`BertBilstmCrf`] trains a standard CRF on the distant *hard* labels —
//!   the paper notes this is "more suitable for the fully-supervised
//!   scenario" and suffers under distant noise;
//! * [`BertBilstmFcrf`] trains a fuzzy CRF whose numerator marginalises
//!   over all paths consistent with the partial annotation: distantly
//!   *matched* tokens are constrained to their label; *unmatched* tokens
//!   may take any label.

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer::annotate::AnnotatedBlock;
use resuformer::config::ModelConfig;
use resuformer::data::entity_tag_scheme;
use resuformer::embeddings::TextEmbedding;
use resuformer::ner::NerConfig;
use resuformer_nn::linear::Activation;
use resuformer_nn::{Adam, BiLstm, Crf, FuzzyCrf, Mlp, Module, TransformerEncoder};
use resuformer_tensor::{ops, Tensor};
use resuformer_text::TagScheme;

/// The shared BERT+BiLSTM feature stack.
struct FeatureStack {
    embed: TextEmbedding,
    encoder: TransformerEncoder,
    bilstm: BiLstm,
    proj: Mlp,
    max_len: usize,
}

impl FeatureStack {
    fn new(rng: &mut impl Rng, config: NerConfig, out_dim: usize) -> Self {
        let model_cfg = ModelConfig {
            vocab_size: config.vocab_size,
            hidden: config.hidden,
            sent_layers: config.layers,
            doc_layers: 1,
            heads: config.heads,
            ff: config.ff,
            dropout: 0.0,
            max_sent_tokens: config.max_len,
            max_doc_sentences: 2,
            visual_dim: 8,
            coord_buckets: 8,
            max_pages: 2,
        };
        FeatureStack {
            embed: TextEmbedding::new(rng, &model_cfg, config.max_len),
            encoder: TransformerEncoder::new(
                rng,
                config.layers,
                config.hidden,
                config.heads,
                config.ff,
                0.0,
            ),
            bilstm: BiLstm::new(rng, config.hidden, config.lstm_hidden),
            proj: Mlp::new(
                rng,
                &[2 * config.lstm_hidden, out_dim],
                Activation::Identity,
            ),
            max_len: config.max_len,
        }
    }

    fn emissions(&self, ids: &[usize], train: bool, rng: &mut impl Rng) -> Tensor {
        let ids = &ids[..ids.len().min(self.max_len)];
        let x = self.embed.forward(ids);
        let h = self.encoder.forward(&x, None, train, rng);
        self.proj.forward(&self.bilstm.forward(&h))
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.embed.parameters();
        p.extend(self.encoder.parameters());
        p.extend(self.bilstm.parameters());
        p.extend(self.proj.parameters());
        p
    }
}

fn train_loop<L>(
    params: Vec<Tensor>,
    data: &[AnnotatedBlock],
    epochs: usize,
    lr: f32,
    rng: &mut impl Rng,
    loss_fn: L,
) -> Vec<f32>
where
    L: Fn(&AnnotatedBlock, &mut rand_chacha::ChaCha8Rng) -> Tensor,
{
    use rand_chacha::rand_core::SeedableRng;
    let mut opt = Adam::new(params, lr, 0.01);
    let mut trace = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(rng);
        let mut acc = 0.0f32;
        for &i in &order {
            let block = &data[i];
            if block.token_ids.is_empty() {
                continue;
            }
            let mut frng = rand_chacha::ChaCha8Rng::seed_from_u64(rng.gen());
            opt.zero_grad();
            let loss = loss_fn(block, &mut frng);
            acc += loss.item();
            loss.backward();
            opt.clip_grad_norm(5.0);
            opt.step();
        }
        trace.push(acc / data.len().max(1) as f32);
    }
    trace
}

/// BERT+BiLSTM+CRF over distant hard labels.
pub struct BertBilstmCrf {
    stack: FeatureStack,
    crf: Crf,
    scheme: TagScheme,
}

impl BertBilstmCrf {
    /// New model.
    pub fn new(rng: &mut impl Rng, config: NerConfig) -> Self {
        let scheme = entity_tag_scheme();
        BertBilstmCrf {
            stack: FeatureStack::new(rng, config, scheme.num_labels()),
            crf: Crf::new(rng, scheme.num_labels()),
            scheme,
        }
    }

    /// The tag scheme.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    /// Train on the distant hard labels.
    pub fn train(
        &self,
        data: &[AnnotatedBlock],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        train_loop(self.parameters(), data, epochs, lr, rng, |block, frng| {
            let n = block.token_ids.len().min(self.stack.max_len);
            let e = self.stack.emissions(&block.token_ids, true, frng);
            self.crf.neg_log_likelihood(&e, &block.distant_labels[..n])
        })
    }

    /// Viterbi-decoded labels (O-padded beyond `max_len`).
    pub fn predict(&self, token_ids: &[usize], rng: &mut impl Rng) -> Vec<usize> {
        if token_ids.is_empty() {
            return Vec::new();
        }
        let e = self.stack.emissions(token_ids, false, rng);
        let mut labels = self.crf.viterbi(&e.value()).0;
        labels.resize(token_ids.len(), self.scheme.outside());
        labels
    }
}

impl Module for BertBilstmCrf {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.stack.parameters();
        p.extend(self.crf.parameters());
        p
    }
}

/// BERT+BiLSTM+FCRF: the fuzzy-CRF variant for partial annotations.
pub struct BertBilstmFcrf {
    stack: FeatureStack,
    fcrf: FuzzyCrf,
    scheme: TagScheme,
}

impl BertBilstmFcrf {
    /// New model.
    pub fn new(rng: &mut impl Rng, config: NerConfig) -> Self {
        let scheme = entity_tag_scheme();
        BertBilstmFcrf {
            stack: FeatureStack::new(rng, config, scheme.num_labels()),
            fcrf: FuzzyCrf::new(rng, scheme.num_labels()),
            scheme,
        }
    }

    /// The tag scheme.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    /// Allowed label sets from a distant annotation, following the fuzzy
    /// CRF of Shang et al.: matched tokens are pinned to their label;
    /// unmatched tokens that *look like* entity mentions (capitalised or
    /// digit-bearing — candidate phrases) are free; everything else is
    /// pinned to `O`. Without the last rule the free mass degenerates
    /// (everything gets labeled an entity).
    pub fn allowed_sets(&self, tokens: &[String], distant: &[usize]) -> Vec<Vec<usize>> {
        let all: Vec<usize> = (0..self.scheme.num_labels()).collect();
        let candidate = |t: &str| {
            t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                || t.chars().any(|c| c.is_ascii_digit())
        };
        tokens
            .iter()
            .zip(distant.iter())
            .map(|(t, &l)| {
                if l != self.scheme.outside() {
                    vec![l]
                } else if candidate(t) {
                    all.clone()
                } else {
                    vec![self.scheme.outside()]
                }
            })
            .collect()
    }

    /// Train with the fuzzy-CRF objective.
    pub fn train(
        &self,
        data: &[AnnotatedBlock],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        train_loop(self.parameters(), data, epochs, lr, rng, |block, frng| {
            let n = block.token_ids.len().min(self.stack.max_len);
            let e = self.stack.emissions(&block.token_ids, true, frng);
            let allowed = self.allowed_sets(&block.tokens[..n], &block.distant_labels[..n]);
            let fuzzy = self.fcrf.loss(&e, &allowed);
            // Mild supervised anchor on matched tokens keeps the free
            // positions from drifting to arbitrary labels.
            let weights: Vec<f32> = block.distant_labels[..n]
                .iter()
                .map(|&l| if l == self.scheme.outside() { 0.0 } else { 1.0 })
                .collect();
            if weights.iter().any(|&w| w > 0.0) {
                let anchor =
                    ops::cross_entropy_rows(&e, &block.distant_labels[..n], Some(&weights));
                ops::add(&fuzzy, &ops::mul_scalar(&anchor, 0.5))
            } else {
                fuzzy
            }
        })
    }

    /// Viterbi-decoded labels (O-padded beyond `max_len`).
    pub fn predict(&self, token_ids: &[usize], rng: &mut impl Rng) -> Vec<usize> {
        if token_ids.is_empty() {
            return Vec::new();
        }
        let e = self.stack.emissions(token_ids, false, rng);
        let mut labels = self.fcrf.viterbi(&e.value()).0;
        labels.resize(token_ids.len(), self.scheme.outside());
        labels
    }
}

impl Module for BertBilstmFcrf {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.stack.parameters();
        p.extend(self.fcrf.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_datagen::BlockType;
    use resuformer_tensor::init::seeded_rng;
    use resuformer_text::iob::{encode_spans, Span};

    fn toy_data(n: usize) -> Vec<AnnotatedBlock> {
        let scheme = entity_tag_scheme();
        (0..n)
            .map(|_| {
                let gold = encode_spans(&scheme, 5, &[Span::new(0, 3, 11), Span::new(3, 5, 5)]);
                AnnotatedBlock {
                    block_type: BlockType::EduExp,
                    tokens: ["2018.09", "-", "2022.06", "Northlake", "University"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    token_ids: vec![6, 7, 8, 9, 10],
                    distant_labels: gold.clone(),
                    gold_labels: gold,
                }
            })
            .collect()
    }

    #[test]
    fn crf_variant_learns_clean_labels() {
        let mut rng = seeded_rng(121);
        let model = BertBilstmCrf::new(&mut rng, NerConfig::tiny(32));
        let data = toy_data(6);
        let trace = model.train(&data, 10, 2e-3, &mut rng);
        assert!(trace.last().unwrap() < &trace[0]);
        let pred = model.predict(&data[0].token_ids, &mut rng);
        assert_eq!(pred, data[0].gold_labels);
    }

    #[test]
    fn fcrf_allowed_sets_pin_matched_and_plain_tokens() {
        let mut rng = seeded_rng(122);
        let model = BertBilstmFcrf::new(&mut rng, NerConfig::tiny(32));
        let scheme = model.scheme();
        let tokens: Vec<String> = ["2018.09", "Northlake", "designed"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let distant = vec![scheme.begin(11), scheme.outside(), scheme.outside()];
        let allowed = model.allowed_sets(&tokens, &distant);
        assert_eq!(allowed[0], vec![scheme.begin(11)], "matched: pinned");
        assert_eq!(allowed[1].len(), scheme.num_labels(), "candidate: free");
        assert_eq!(allowed[2], vec![scheme.outside()], "plain word: O");
    }

    #[test]
    fn fcrf_trains_on_partial_labels() {
        let mut rng = seeded_rng(123);
        let model = BertBilstmFcrf::new(&mut rng, NerConfig::tiny(32));
        let scheme = entity_tag_scheme();
        // Distant labels miss the college (positions 3..5 unmatched).
        let mut data = toy_data(6);
        for block in &mut data {
            block.distant_labels = encode_spans(&scheme, 5, &[Span::new(0, 3, 11)]);
        }
        let trace = model.train(&data, 10, 2e-3, &mut rng);
        assert!(trace.last().unwrap() < &trace[0]);
        let pred = model.predict(&data[0].token_ids, &mut rng);
        // The pinned date tokens must be recovered.
        assert_eq!(&pred[..3], &data[0].gold_labels[..3]);
    }
}
