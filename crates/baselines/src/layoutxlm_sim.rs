//! LayoutXLM-style baseline (Table II) and Algorithm-1 teacher.
//!
//! A token-level multi-modal pre-trained model: text + 2-D layout
//! embeddings per token, plus the region feature of the token's sentence
//! crop (LayoutLMv2-family visual conditioning), MLM-pre-trained, CRF
//! decoded. Like the real LayoutXLM it processes a resume window by
//! window, so context beyond the window is invisible — the mechanism
//! behind the Figure 3 case-study failure.

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer::block_classifier::FinetuneConfig;
use resuformer::config::ModelConfig;
use resuformer::data::block_tag_scheme;
use resuformer::distill::SentenceTeacher;
use resuformer::embeddings::{LayoutEmbedding, TextEmbedding};
use resuformer::visual::VisualExtractor;
use resuformer_doc::{Document, LayoutTuple};
use resuformer_nn::{Adam, Crf, Linear, Module, TransformerEncoder};
use resuformer_tensor::{ops, Tensor};
use resuformer_text::{TagScheme, WordPiece};

use crate::common::{
    expand_to_token_labels, mlm_pretrain, prepare_token_doc, tokens_to_sentence_labels, TokenDoc,
};

/// Token-level multi-modal pre-trained model (LayoutXLM simulator).
pub struct LayoutXlmSim {
    embed: TextEmbedding,
    layout: LayoutEmbedding,
    visual: VisualExtractor,
    vis_proj: Linear,
    encoder: TransformerEncoder,
    emit: Linear,
    crf: Crf,
    scheme: TagScheme,
    window: usize,
    /// Tokenizer + config for labeling raw documents (SentenceTeacher).
    teacher_ctx: Option<(WordPiece, ModelConfig)>,
}

impl LayoutXlmSim {
    /// New model.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig, window: usize) -> Self {
        let scheme = block_tag_scheme();
        LayoutXlmSim {
            embed: TextEmbedding::new(rng, config, window),
            layout: LayoutEmbedding::new(rng, config),
            visual: VisualExtractor::new(rng, config.visual_dim),
            vis_proj: Linear::new(rng, config.visual_dim, config.hidden),
            encoder: TransformerEncoder::new(
                rng,
                config.sent_layers,
                config.hidden,
                config.heads,
                config.ff,
                config.dropout,
            ),
            emit: Linear::new(rng, config.hidden, scheme.num_labels()),
            crf: Crf::new(rng, scheme.num_labels()),
            scheme,
            window,
            teacher_ctx: None,
        }
    }

    /// Attach the tokenizer + config needed to pseudo-label raw documents
    /// (required before using this model as the Algorithm-1 teacher).
    pub fn with_teacher_context(mut self, wp: WordPiece, config: ModelConfig) -> Self {
        self.teacher_ctx = Some((wp, config));
        self
    }

    /// The tag scheme.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    /// MLM pre-training with retained layout (the masked visual-language
    /// modeling analogue).
    pub fn pretrain(
        &self,
        docs: &[TokenDoc],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut params = self.embed.parameters();
        params.extend(self.layout.parameters());
        params.extend(self.encoder.parameters());
        let table = self.embed.word_table().clone();
        mlm_pretrain(
            params,
            table,
            docs,
            epochs,
            lr,
            rng,
            |ids, layouts, frng| {
                let x = ops::add(&self.embed.forward(ids), &self.layout.forward(layouts));
                self.encoder.forward(&x, None, true, frng)
            },
        )
    }

    fn window_emissions(
        &self,
        doc: &TokenDoc,
        start: usize,
        end: usize,
        sent_features: &Tensor,
        train: bool,
        rng: &mut impl Rng,
    ) -> Tensor {
        let ids = &doc.ids[start..end];
        let layouts: &[LayoutTuple] = &doc.layouts[start..end];
        let mut x = ops::add(&self.embed.forward(ids), &self.layout.forward(layouts));
        // Per-token visual conditioning: the token's sentence region
        // feature, projected to model width.
        let sent_idx: Vec<usize> = doc.sentence_of[start..end].to_vec();
        let vis = ops::gather_rows(sent_features, &sent_idx);
        x = ops::add(&x, &self.vis_proj.forward(&vis));
        let h = self.encoder.forward(&x, None, train, rng);
        self.emit.forward(&h)
    }

    fn sentence_features(&self, doc: &TokenDoc) -> Tensor {
        self.visual.extract_batch(&doc.patches)
    }

    /// Mean CRF loss across a document's windows.
    pub fn loss(&self, doc: &TokenDoc, sentence_labels: &[usize], rng: &mut impl Rng) -> Tensor {
        let token_labels = expand_to_token_labels(&self.scheme, sentence_labels, &doc.sentence_of);
        let feats = self.sentence_features(doc);
        let mut losses = Vec::new();
        for (start, end) in doc.windows() {
            let e = self.window_emissions(doc, start, end, &feats, true, rng);
            losses.push(self.crf.neg_log_likelihood(&e, &token_labels[start..end]));
        }
        let n = losses.len() as f32;
        let sum = losses
            .into_iter()
            .reduce(|a, b| ops::add(&a, &b))
            .expect("non-empty");
        ops::mul_scalar(&sum, 1.0 / n)
    }

    /// Predict sentence labels (windowed Viterbi → majority vote).
    pub fn predict_sentences(&self, doc: &TokenDoc, rng: &mut impl Rng) -> Vec<usize> {
        let feats = self.sentence_features(doc);
        let mut token_labels = Vec::with_capacity(doc.len());
        for (start, end) in doc.windows() {
            let e = self.window_emissions(doc, start, end, &feats, false, rng);
            token_labels.extend(self.crf.viterbi(&e.value()).0);
        }
        tokens_to_sentence_labels(
            &self.scheme,
            &token_labels,
            &doc.sentence_of,
            doc.n_sentences,
        )
    }

    /// Supervised training over `(doc, sentence_labels)` pairs.
    pub fn finetune(
        &self,
        data: &[(&TokenDoc, &[usize])],
        config: &FinetuneConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut opt = Adam::new(self.parameters(), config.lr_head, config.weight_decay);
        let mut trace = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.shuffle(rng);
            let mut acc = 0.0f32;
            for &i in &order {
                let (doc, labels) = data[i];
                if doc.is_empty() {
                    continue;
                }
                opt.zero_grad();
                let loss = self.loss(doc, labels, rng);
                acc += loss.item();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
            trace.push(acc / data.len().max(1) as f32);
        }
        trace
    }
}

impl Module for LayoutXlmSim {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.embed.parameters();
        p.extend(self.layout.parameters());
        p.extend(self.vis_proj.parameters());
        p.extend(self.encoder.parameters());
        p.extend(self.emit.parameters());
        p.extend(self.crf.parameters());
        p
    }
}

impl SentenceTeacher for LayoutXlmSim {
    fn pseudo_labels(&self, doc: &Document) -> Vec<usize> {
        let (wp, config) = self
            .teacher_ctx
            .as_ref()
            .expect("call with_teacher_context before using as a teacher");
        let td = prepare_token_doc(doc, wp, config, self.window);
        // Deterministic inference RNG: predictions must be reproducible.
        let mut rng = resuformer_tensor::init::seeded_rng(0);
        self.predict_sentences(&td, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer::data::{build_tokenizer, prepare_document, sentence_iob_labels};
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_tensor::init::seeded_rng;

    fn setup() -> (
        LayoutXlmSim,
        TokenDoc,
        Vec<usize>,
        WordPiece,
        ModelConfig,
        resuformer_datagen::LabeledResume,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(r.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let scheme = block_tag_scheme();
        let (_, sentences) = prepare_document(&r.doc, &wp, &config);
        let labels = sentence_iob_labels(&r, &sentences, &scheme);
        let td = prepare_token_doc(&r.doc, &wp, &config, 32);
        let model = LayoutXlmSim::new(&mut seeded_rng(102), &config, 32);
        (model, td, labels, wp, config, r)
    }

    #[test]
    fn pretraining_reduces_mlm_loss() {
        let (model, td, _, _, _, _) = setup();
        let trace = model.pretrain(std::slice::from_ref(&td), 5, 2e-3, &mut seeded_rng(103));
        assert!(trace.last().unwrap() < &trace[0], "{:?}", trace);
    }

    #[test]
    fn training_fits_and_teacher_interface_works() {
        let (model, td, labels, wp, config, r) = setup();
        let mut rng = seeded_rng(104);
        let pairs: Vec<(&TokenDoc, &[usize])> = vec![(&td, labels.as_slice())];
        let cfg = FinetuneConfig {
            epochs: 15,
            ..Default::default()
        };
        let trace = model.finetune(&pairs, &cfg, &mut rng);
        assert!(trace.last().unwrap() < &(trace[0] * 0.5));

        let model = model.with_teacher_context(wp, config);
        let pseudo = model.pseudo_labels(&r.doc);
        assert_eq!(pseudo.len(), labels.len());
        // Having overfit this very document, the teacher's pseudo labels
        // should largely agree with gold classes.
        let scheme = model.scheme();
        let agree = pseudo
            .iter()
            .zip(labels.iter())
            .filter(|(a, b)| scheme.class_of(**a) == scheme.class_of(**b))
            .count();
        assert!(agree as f32 / labels.len() as f32 > 0.7);
    }
}

// ---------------------------------------------------------------------------
// LayoutLMv2-family pre-training extras
// ---------------------------------------------------------------------------

impl LayoutXlmSim {
    /// Text-image alignment (TIA) pre-training, as in LayoutLMv2 (the
    /// paper: "not only the existing masked visual-language modeling task
    /// but also the new text-image alignment and text-image matching
    /// tasks").
    ///
    /// A fraction of sentences have their image patches *covered*
    /// (zeroed); a per-token binary head must predict whether each token's
    /// line is covered. Returns the per-epoch loss trace.
    pub fn pretrain_tia(
        &self,
        docs: &[TokenDoc],
        epochs: usize,
        lr: f32,
        cover_ratio: f64,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        use resuformer_nn::linear::Activation;
        use resuformer_nn::Mlp;

        let hidden = self.emit.in_dim();
        let head = Mlp::new(rng, &[hidden, 2], Activation::Identity);
        let mut params = self.parameters();
        params.extend(resuformer_nn::Module::parameters(&head));
        let mut opt = resuformer_nn::Adam::new(params, lr, 0.01);

        let mut trace = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut acc = 0.0f32;
            let mut steps = 0usize;
            for doc in docs {
                if doc.is_empty() {
                    continue;
                }
                // Cover a random subset of sentences.
                let covered: Vec<bool> = (0..doc.n_sentences)
                    .map(|_| rng.gen_bool(cover_ratio))
                    .collect();
                let mut patches = doc.patches.clone();
                for (si, &c) in covered.iter().enumerate() {
                    if c {
                        for v in &mut patches[si] {
                            *v = 0.0;
                        }
                    }
                }
                let feats = self.visual.extract_batch(&patches);
                for (start, end) in doc.windows() {
                    let ids = &doc.ids[start..end];
                    if ids.len() < 2 {
                        continue;
                    }
                    let layouts = &doc.layouts[start..end];
                    let sent_idx: Vec<usize> = doc.sentence_of[start..end].to_vec();
                    let mut x = ops::add(&self.embed.forward(ids), &self.layout.forward(layouts));
                    let vis = ops::gather_rows(&feats, &sent_idx);
                    x = ops::add(&x, &self.vis_proj.forward(&vis));
                    let mut frng = {
                        use rand_chacha::rand_core::SeedableRng;
                        rand_chacha::ChaCha8Rng::seed_from_u64(rng.gen())
                    };
                    let h = self.encoder.forward(&x, None, true, &mut frng);
                    let logits = head.forward(&h);
                    let targets: Vec<usize> = sent_idx
                        .iter()
                        .map(|&si| usize::from(covered[si]))
                        .collect();
                    opt.zero_grad();
                    let loss = ops::cross_entropy_rows(&logits, &targets, None);
                    acc += loss.item();
                    steps += 1;
                    loss.backward();
                    opt.clip_grad_norm(5.0);
                    opt.step();
                }
            }
            trace.push(acc / steps.max(1) as f32);
        }
        trace
    }

    /// Text-image matching (TIM) pre-training: for each document, patches
    /// are either kept or replaced with another document's patches; a
    /// window-level head (mean-pooled features) predicts matched/replaced.
    pub fn pretrain_tim(
        &self,
        docs: &[TokenDoc],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        use resuformer_nn::linear::Activation;
        use resuformer_nn::Mlp;

        if docs.len() < 2 {
            return Vec::new();
        }
        let hidden = self.emit.in_dim();
        let head = Mlp::new(rng, &[hidden, 2], Activation::Identity);
        let mut params = self.parameters();
        params.extend(resuformer_nn::Module::parameters(&head));
        let mut opt = resuformer_nn::Adam::new(params, lr, 0.01);

        let mut trace = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut acc = 0.0f32;
            let mut steps = 0usize;
            for di in 0..docs.len() {
                let doc = &docs[di];
                if doc.is_empty() {
                    continue;
                }
                let swap = rng.gen_bool(0.5);
                let src = if swap { (di + 1) % docs.len() } else { di };
                let feats = self.visual.extract_batch(&docs[src].patches);
                let max_feat = docs[src].patches.len() - 1;
                for (start, end) in doc.windows() {
                    let ids = &doc.ids[start..end];
                    if ids.len() < 2 {
                        continue;
                    }
                    let layouts = &doc.layouts[start..end];
                    let sent_idx: Vec<usize> = doc.sentence_of[start..end]
                        .iter()
                        .map(|&s| s.min(max_feat))
                        .collect();
                    let mut x = ops::add(&self.embed.forward(ids), &self.layout.forward(layouts));
                    let vis = ops::gather_rows(&feats, &sent_idx);
                    x = ops::add(&x, &self.vis_proj.forward(&vis));
                    let mut frng = {
                        use rand_chacha::rand_core::SeedableRng;
                        rand_chacha::ChaCha8Rng::seed_from_u64(rng.gen())
                    };
                    let h = self.encoder.forward(&x, None, true, &mut frng);
                    // Mean-pool window features → [1, hidden].
                    let n = end - start;
                    let pooled = ops::mul_scalar(
                        &ops::reshape(&ops::sum_axis(&h, 0), [1, hidden]),
                        1.0 / n as f32,
                    );
                    let logits = head.forward(&pooled);
                    opt.zero_grad();
                    let loss = ops::cross_entropy_rows(&logits, &[usize::from(swap)], None);
                    acc += loss.item();
                    steps += 1;
                    loss.backward();
                    opt.clip_grad_norm(5.0);
                    opt.step();
                }
            }
            trace.push(acc / steps.max(1) as f32);
        }
        trace
    }
}

#[cfg(test)]
mod pretrain_extra_tests {
    use super::*;
    use crate::common::prepare_token_doc;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer::data::build_tokenizer;
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_tensor::init::seeded_rng;

    fn docs(n: usize) -> (Vec<TokenDoc>, ModelConfig) {
        let mut rng = ChaCha8Rng::seed_from_u64(141);
        let resumes: Vec<_> = (0..n)
            .map(|_| generate_resume(&mut rng, &GeneratorConfig::smoke()))
            .collect();
        let wp = build_tokenizer(
            resumes
                .iter()
                .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
            1,
        );
        let config = ModelConfig::tiny(wp.vocab.len());
        let tds = resumes
            .iter()
            .map(|r| prepare_token_doc(&r.doc, &wp, &config, 24))
            .collect();
        (tds, config)
    }

    #[test]
    fn tia_loss_decreases() {
        let (tds, config) = docs(2);
        let model = LayoutXlmSim::new(&mut seeded_rng(142), &config, 24);
        let trace = model.pretrain_tia(&tds, 4, 2e-3, 0.3, &mut seeded_rng(143));
        assert_eq!(trace.len(), 4);
        assert!(trace.last().unwrap() < &trace[0], "{:?}", trace);
    }

    #[test]
    fn tim_loss_decreases() {
        // The matched/replaced coin is re-flipped per document per epoch,
        // so the per-epoch trace is noisy with few documents; require that
        // the best later epoch clearly beats the start.
        let (tds, config) = docs(3);
        let model = LayoutXlmSim::new(&mut seeded_rng(144), &config, 24);
        let trace = model.pretrain_tim(&tds, 6, 2e-3, &mut seeded_rng(145));
        assert_eq!(trace.len(), 6);
        let best_late = trace[2..].iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(best_late < trace[0] * 0.8, "{:?}", trace);
    }

    #[test]
    fn tim_requires_two_documents() {
        let (tds, config) = docs(1);
        let model = LayoutXlmSim::new(&mut seeded_rng(146), &config, 24);
        assert!(model
            .pretrain_tim(&tds, 2, 1e-3, &mut seeded_rng(147))
            .is_empty());
    }
}
