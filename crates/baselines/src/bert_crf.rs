//! BERT+CRF baseline (Table II): token-level, text-only, non-pre-trained.
//!
//! The model processes the resume window by window ("token by token loop
//! processing"), emitting per-token IOB scores decoded by a CRF. Sentence
//! labels for the evaluation come from a majority vote over each
//! sentence's pieces (footnote 3).

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer::block_classifier::FinetuneConfig;
use resuformer::config::ModelConfig;
use resuformer::data::block_tag_scheme;
use resuformer::embeddings::TextEmbedding;
use resuformer_nn::{Adam, Crf, Linear, Module, TransformerEncoder};
use resuformer_tensor::{ops, Tensor};
use resuformer_text::TagScheme;

use crate::common::{expand_to_token_labels, tokens_to_sentence_labels, TokenDoc};

/// Token-level BERT + CRF.
pub struct BertCrf {
    embed: TextEmbedding,
    encoder: TransformerEncoder,
    emit: Linear,
    crf: Crf,
    scheme: TagScheme,
    window: usize,
}

impl BertCrf {
    /// New model; `window` is the token window length.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig, window: usize) -> Self {
        let scheme = block_tag_scheme();
        BertCrf {
            embed: TextEmbedding::new(rng, config, window),
            encoder: TransformerEncoder::new(
                rng,
                config.sent_layers,
                config.hidden,
                config.heads,
                config.ff,
                config.dropout,
            ),
            emit: Linear::new(rng, config.hidden, scheme.num_labels()),
            crf: Crf::new(rng, scheme.num_labels()),
            scheme,
            window,
        }
    }

    /// The tag scheme.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.window
    }

    fn window_emissions(&self, ids: &[usize], train: bool, rng: &mut impl Rng) -> Tensor {
        let x = self.embed.forward(ids);
        let h = self.encoder.forward(&x, None, train, rng);
        self.emit.forward(&h)
    }

    /// Loss over one document: mean CRF NLL across its windows.
    pub fn loss(&self, doc: &TokenDoc, sentence_labels: &[usize], rng: &mut impl Rng) -> Tensor {
        let token_labels = expand_to_token_labels(&self.scheme, sentence_labels, &doc.sentence_of);
        let mut losses = Vec::new();
        for (start, end) in doc.windows() {
            let e = self.window_emissions(&doc.ids[start..end], true, rng);
            losses.push(self.crf.neg_log_likelihood(&e, &token_labels[start..end]));
        }
        let n = losses.len() as f32;
        let sum = losses
            .into_iter()
            .reduce(|a, b| ops::add(&a, &b))
            .expect("document has at least one window");
        ops::mul_scalar(&sum, 1.0 / n)
    }

    /// Predict sentence labels (token-level Viterbi → majority vote).
    pub fn predict_sentences(&self, doc: &TokenDoc, rng: &mut impl Rng) -> Vec<usize> {
        let mut token_labels = Vec::with_capacity(doc.len());
        for (start, end) in doc.windows() {
            let e = self.window_emissions(&doc.ids[start..end], false, rng);
            token_labels.extend(self.crf.viterbi(&e.value()).0);
        }
        tokens_to_sentence_labels(
            &self.scheme,
            &token_labels,
            &doc.sentence_of,
            doc.n_sentences,
        )
    }

    /// Supervised training over `(doc, sentence_labels)` pairs.
    pub fn finetune(
        &self,
        data: &[(&TokenDoc, &[usize])],
        config: &FinetuneConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut opt = Adam::new(self.parameters(), config.lr_head, config.weight_decay);
        let mut trace = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.shuffle(rng);
            let mut acc = 0.0f32;
            for &i in &order {
                let (doc, labels) = data[i];
                if doc.is_empty() {
                    continue;
                }
                opt.zero_grad();
                let loss = self.loss(doc, labels, rng);
                acc += loss.item();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
            trace.push(acc / data.len().max(1) as f32);
        }
        trace
    }
}

impl Module for BertCrf {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.embed.parameters();
        p.extend(self.encoder.parameters());
        p.extend(self.emit.parameters());
        p.extend(self.crf.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::prepare_token_doc;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer::data::{build_tokenizer, prepare_document, sentence_iob_labels};
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_tensor::init::seeded_rng;

    fn setup() -> (BertCrf, TokenDoc, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(r.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let scheme = block_tag_scheme();
        let (_, sentences) = prepare_document(&r.doc, &wp, &config);
        let labels = sentence_iob_labels(&r, &sentences, &scheme);
        let td = prepare_token_doc(&r.doc, &wp, &config, 32);
        let model = BertCrf::new(&mut seeded_rng(72), &config, 32);
        (model, td, labels)
    }

    #[test]
    fn prediction_has_one_label_per_sentence() {
        let (model, td, labels) = setup();
        let mut rng = seeded_rng(73);
        let pred = model.predict_sentences(&td, &mut rng);
        assert_eq!(pred.len(), labels.len());
        assert!(pred.iter().all(|&l| l < model.scheme().num_labels()));
    }

    #[test]
    fn training_reduces_loss_and_fits() {
        let (model, td, labels) = setup();
        let mut rng = seeded_rng(74);
        let pairs: Vec<(&TokenDoc, &[usize])> = vec![(&td, labels.as_slice())];
        let cfg = FinetuneConfig {
            epochs: 20,
            ..Default::default()
        };
        let trace = model.finetune(&pairs, &cfg, &mut rng);
        assert!(
            trace.last().unwrap() < &(trace[0] * 0.5),
            "{:?}",
            (trace[0], trace.last())
        );
        let pred = model.predict_sentences(&td, &mut rng);
        let class_acc = pred
            .iter()
            .zip(labels.iter())
            .filter(|(a, b)| model.scheme().class_of(**a) == model.scheme().class_of(**b))
            .count() as f32
            / labels.len() as f32;
        assert!(class_acc > 0.8, "class accuracy {}", class_acc);
    }
}
