//! AutoNER baseline (Table IV): Shang et al., EMNLP 2018.
//!
//! Instead of IOB tags per token, AutoNER labels the *gap* between
//! adjacent tokens (`Tie` / `Break` / `Unknown`) and classifies each
//! chunk's type. Gaps inside a distantly-matched mention are `Tie`; gaps
//! touching exactly one matched mention are `Break`; gaps between two
//! unmatched tokens are `Unknown` and skipped in the loss — the scheme's
//! robustness mechanism against incomplete dictionaries.

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer::annotate::AnnotatedBlock;
use resuformer::config::ModelConfig;
use resuformer::data::entity_tag_scheme;
use resuformer::embeddings::TextEmbedding;
use resuformer::ner::NerConfig;
use resuformer_nn::linear::Activation;
use resuformer_nn::{Adam, BiLstm, Mlp, Module, TransformerEncoder};
use resuformer_tensor::{ops, Tensor};
use resuformer_text::iob::tie_or_break::{decode, encode, Gap};
use resuformer_text::iob::Span;
use resuformer_text::{decode_spans, encode_spans, TagScheme};

/// AutoNER: Tie-or-Break boundary detector + chunk type classifier.
pub struct AutoNer {
    embed: TextEmbedding,
    encoder: TransformerEncoder,
    bilstm: BiLstm,
    /// Gap head: concat of adjacent token features → {Break, Tie}.
    gap_head: Mlp,
    /// Type head: token features → entity class + "None".
    type_head: Mlp,
    scheme: TagScheme,
    max_len: usize,
}

impl AutoNer {
    /// New model.
    pub fn new(rng: &mut impl Rng, config: NerConfig) -> Self {
        let scheme = entity_tag_scheme();
        let model_cfg = ModelConfig {
            vocab_size: config.vocab_size,
            hidden: config.hidden,
            sent_layers: config.layers,
            doc_layers: 1,
            heads: config.heads,
            ff: config.ff,
            dropout: 0.0,
            max_sent_tokens: config.max_len,
            max_doc_sentences: 2,
            visual_dim: 8,
            coord_buckets: 8,
            max_pages: 2,
        };
        let feat = 2 * config.lstm_hidden;
        AutoNer {
            embed: TextEmbedding::new(rng, &model_cfg, config.max_len),
            encoder: TransformerEncoder::new(
                rng,
                config.layers,
                config.hidden,
                config.heads,
                config.ff,
                0.0,
            ),
            bilstm: BiLstm::new(rng, config.hidden, config.lstm_hidden),
            gap_head: Mlp::new(rng, &[2 * feat, config.hidden, 2], Activation::Tanh),
            type_head: Mlp::new(
                rng,
                &[feat, config.hidden, scheme.num_classes() + 1],
                Activation::Tanh,
            ),
            scheme,
            max_len: config.max_len,
        }
    }

    /// The (IOB-compatible) tag scheme used for evaluation output.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    fn features(&self, ids: &[usize], train: bool, rng: &mut impl Rng) -> Tensor {
        let ids = &ids[..ids.len().min(self.max_len)];
        let x = self.embed.forward(ids);
        let h = self.encoder.forward(&x, None, train, rng);
        self.bilstm.forward(&h)
    }

    /// Distant Tie-or-Break supervision from a block's distant IOB labels.
    ///
    /// Spans come from decoding the distant annotation; gaps between two
    /// unmatched (`O`) tokens become `Unknown` (excluded from the loss).
    pub fn distant_gaps(&self, distant: &[usize]) -> (Vec<Gap>, Vec<Option<usize>>) {
        let spans = decode_spans(&self.scheme, distant);
        let (mut gaps, types) = encode(distant.len(), &spans);
        for (i, g) in gaps.iter_mut().enumerate() {
            if *g == Gap::Break && types[i].is_none() && types[i + 1].is_none() {
                *g = Gap::Unknown;
            }
        }
        (gaps, types)
    }

    /// Joint loss: gap classification (skipping `Unknown`) + type
    /// classification per token.
    pub fn loss(&self, block: &AnnotatedBlock, rng: &mut impl Rng) -> Tensor {
        let n = block.token_ids.len().min(self.max_len);
        let feats = self.features(&block.token_ids, true, rng);
        let (gaps, types) = self.distant_gaps(&block.distant_labels[..n]);

        // Gap logits over adjacent pairs.
        let mut parts = Vec::new();
        if n >= 2 {
            let left = ops::slice_rows(&feats, 0, n - 1);
            let right = ops::slice_rows(&feats, 1, n - 1);
            let pair = ops::concat_cols(&[left, right]);
            let gap_logits = self.gap_head.forward(&pair);
            let gap_targets: Vec<usize> = gaps
                .iter()
                .map(|g| match g {
                    Gap::Break | Gap::Unknown => 0,
                    Gap::Tie => 1,
                })
                .collect();
            let gap_weights: Vec<f32> = gaps
                .iter()
                .map(|g| if *g == Gap::Unknown { 0.0 } else { 1.0 })
                .collect();
            if gap_weights.iter().any(|&w| w > 0.0) {
                parts.push(ops::cross_entropy_rows(
                    &gap_logits,
                    &gap_targets,
                    Some(&gap_weights),
                ));
            }
        }

        // Type logits per token ("None" = class index num_classes).
        let type_logits = self.type_head.forward(&feats);
        let none_class = self.scheme.num_classes();
        let type_targets: Vec<usize> = types.iter().map(|t| t.unwrap_or(none_class)).collect();
        parts.push(ops::cross_entropy_rows(&type_logits, &type_targets, None));

        let k = parts.len() as f32;
        let sum = parts
            .into_iter()
            .reduce(|a, b| ops::add(&a, &b))
            .expect("non-empty");
        ops::mul_scalar(&sum, 1.0 / k)
    }

    /// Train on distant supervision.
    pub fn train(
        &self,
        data: &[AnnotatedBlock],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut opt = Adam::new(self.parameters(), lr, 0.01);
        let mut trace = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.shuffle(rng);
            let mut acc = 0.0f32;
            for &i in &order {
                if data[i].token_ids.is_empty() {
                    continue;
                }
                opt.zero_grad();
                let loss = self.loss(&data[i], rng);
                acc += loss.item();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
            trace.push(acc / data.len().max(1) as f32);
        }
        trace
    }

    /// Predict IOB labels: decode gaps + types into spans, re-encode.
    pub fn predict(&self, token_ids: &[usize], rng: &mut impl Rng) -> Vec<usize> {
        let n = token_ids.len().min(self.max_len);
        if n == 0 {
            return vec![self.scheme.outside(); token_ids.len()];
        }
        let feats = self.features(token_ids, false, rng);

        let gaps: Vec<Gap> = if n >= 2 {
            let left = ops::slice_rows(&feats, 0, n - 1);
            let right = ops::slice_rows(&feats, 1, n - 1);
            let logits = self
                .gap_head
                .forward(&ops::concat_cols(&[left, right]))
                .value();
            (0..n - 1)
                .map(|i| {
                    if logits.at(&[i, 1]) > logits.at(&[i, 0]) {
                        Gap::Tie
                    } else {
                        Gap::Break
                    }
                })
                .collect()
        } else {
            Vec::new()
        };

        let type_logits = self.type_head.forward(&feats).value();
        let none_class = self.scheme.num_classes();
        let types: Vec<Option<usize>> = (0..n)
            .map(|i| {
                let row = type_logits.row(i);
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
                if best == none_class {
                    None
                } else {
                    Some(best)
                }
            })
            .collect();

        let spans: Vec<Span> = decode(&gaps, &types);
        let mut labels = encode_spans(&self.scheme, n, &spans);
        labels.resize(token_ids.len(), self.scheme.outside());
        labels
    }
}

impl Module for AutoNer {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.embed.parameters();
        p.extend(self.encoder.parameters());
        p.extend(self.bilstm.parameters());
        p.extend(self.gap_head.parameters());
        p.extend(self.type_head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_datagen::BlockType;
    use resuformer_tensor::init::seeded_rng;

    fn toy_block(full: bool) -> AnnotatedBlock {
        let scheme = entity_tag_scheme();
        let gold = encode_spans(&scheme, 5, &[Span::new(0, 3, 11), Span::new(3, 5, 5)]);
        let distant = if full {
            gold.clone()
        } else {
            encode_spans(&scheme, 5, &[Span::new(0, 3, 11)])
        };
        AnnotatedBlock {
            block_type: BlockType::EduExp,
            tokens: ["2018.09", "-", "2022.06", "Northlake", "University"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            token_ids: vec![6, 7, 8, 9, 10],
            distant_labels: distant,
            gold_labels: gold,
        }
    }

    #[test]
    fn unknown_gaps_between_unmatched_tokens() {
        let mut rng = seeded_rng(131);
        let model = AutoNer::new(&mut rng, NerConfig::tiny(32));
        let block = toy_block(false);
        let (gaps, types) = model.distant_gaps(&block.distant_labels);
        assert_eq!(gaps.len(), 4);
        // Inside the date: Tie.
        assert_eq!(gaps[0], Gap::Tie);
        assert_eq!(gaps[1], Gap::Tie);
        // Date ↔ unmatched token: Break (one side matched).
        assert_eq!(gaps[2], Gap::Break);
        // Unmatched ↔ unmatched: Unknown (skipped in loss).
        assert_eq!(gaps[3], Gap::Unknown);
        assert_eq!(types[0], Some(11));
        assert_eq!(types[3], None);
    }

    #[test]
    fn trains_and_predicts_spans() {
        let mut rng = seeded_rng(132);
        let model = AutoNer::new(&mut rng, NerConfig::tiny(32));
        let data: Vec<AnnotatedBlock> = (0..6).map(|_| toy_block(true)).collect();
        let trace = model.train(&data, 12, 2e-3, &mut rng);
        assert!(trace.last().unwrap() < &trace[0]);
        let pred = model.predict(&data[0].token_ids, &mut rng);
        assert_eq!(pred, data[0].gold_labels);
    }

    #[test]
    fn prediction_is_well_formed_iob() {
        let mut rng = seeded_rng(133);
        let model = AutoNer::new(&mut rng, NerConfig::tiny(32));
        let pred = model.predict(&[6, 7, 8, 9, 10, 11, 12], &mut rng);
        assert_eq!(pred.len(), 7);
        // Decoding must not panic and every label must be in range.
        let spans = decode_spans(model.scheme(), &pred);
        for s in spans {
            assert!(s.class < model.scheme().num_classes());
        }
    }
}
