//! D&R Match baseline (Table IV): pure dictionary + regular-expression
//! matching — the distant-supervision annotator used directly as a
//! predictor. High precision, recall bounded by dictionary coverage.

use resuformer::annotate::distant_labels;
use resuformer::data::entity_tag_scheme;
use resuformer_datagen::{BlockType, Dictionaries};
use resuformer_text::TagScheme;

/// Dictionary & regex matcher as an entity tagger.
pub struct DrMatch {
    dicts: Dictionaries,
    scheme: TagScheme,
}

impl DrMatch {
    /// New matcher over the given dictionaries.
    pub fn new(dicts: Dictionaries) -> Self {
        DrMatch {
            dicts,
            scheme: entity_tag_scheme(),
        }
    }

    /// The tag scheme.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    /// Predict IOB labels for a block's word tokens.
    pub fn predict(&self, tokens: &[String], block_type: BlockType) -> Vec<usize> {
        distant_labels(tokens, block_type, &self.dicts, &self.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer::annotate::build_ner_dataset;
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_datagen::DictionaryConfig;
    use resuformer_text::{decode_spans, Vocab};

    #[test]
    fn predicts_exactly_the_distant_annotation() {
        let dm = DrMatch::new(Dictionaries::build(DictionaryConfig { coverage: 0.7 }));
        let tokens: Vec<String> = ["2018.09", "-", "2022.06", "Northlake", "University"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let pred = dm.predict(&tokens, BlockType::EduExp);
        assert_eq!(pred.len(), 5);
        assert!(!decode_spans(dm.scheme(), &pred).is_empty());
    }

    #[test]
    fn high_precision_low_recall_shape() {
        // Against gold labels, D&R Match should rarely hallucinate (high
        // precision) but miss uncovered mentions (sub-1 recall).
        let mut rng = ChaCha8Rng::seed_from_u64(111);
        let resumes: Vec<_> = (0..8)
            .map(|_| generate_resume(&mut rng, &GeneratorConfig::smoke()))
            .collect();
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 0.5 });
        let scheme = entity_tag_scheme();
        let vocab = Vocab::build(
            resumes
                .iter()
                .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
            1,
        );
        let data = build_ner_dataset(&resumes, &dicts, &vocab, &scheme, false);
        let dm = DrMatch::new(Dictionaries::build(DictionaryConfig { coverage: 0.5 }));

        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for block in &data {
            let pred = dm.predict(&block.tokens, block.block_type);
            let pred_spans = decode_spans(&scheme, &pred);
            let gold_spans = decode_spans(&scheme, &block.gold_labels);
            for p in &pred_spans {
                if gold_spans.contains(p) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
            for g in &gold_spans {
                if !pred_spans.contains(g) {
                    fn_ += 1;
                }
            }
        }
        let precision = tp as f32 / (tp + fp).max(1) as f32;
        let recall = tp as f32 / (tp + fn_).max(1) as f32;
        assert!(precision > 0.8, "precision {}", precision);
        assert!(
            recall < 0.95,
            "recall {} should be bounded by coverage",
            recall
        );
        assert!(recall > 0.2, "recall {} suspiciously low", recall);
    }
}
