//! HiBERT+CRF baseline (Table II): hierarchical sentence-by-sentence
//! classification with text only — no layout, no visual modality, no
//! pre-training (Chapuis et al., 2020, as used by the paper).
//!
//! Sharing the sentence-level architecture with ResuFormer but dropping
//! both extra modalities isolates exactly what multi-modal pre-training
//! buys.

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer::block_classifier::FinetuneConfig;
use resuformer::config::ModelConfig;
use resuformer::data::{block_tag_scheme, DocumentInput};
use resuformer::embeddings::TextEmbedding;
use resuformer_nn::{Adam, Crf, Embedding, Linear, Module, TransformerEncoder};
use resuformer_tensor::{ops, Tensor};
use resuformer_text::TagScheme;

/// Hierarchical text-only BERT + CRF.
pub struct HiBertCrf {
    token_embed: TextEmbedding,
    sent_encoder: TransformerEncoder,
    doc_position: Embedding,
    doc_encoder: TransformerEncoder,
    emit: Linear,
    crf: Crf,
    scheme: TagScheme,
}

impl HiBertCrf {
    /// New model.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig) -> Self {
        let scheme = block_tag_scheme();
        HiBertCrf {
            token_embed: TextEmbedding::new(rng, config, config.max_sent_tokens),
            sent_encoder: TransformerEncoder::new(
                rng,
                config.sent_layers,
                config.hidden,
                config.heads,
                config.ff,
                config.dropout,
            ),
            doc_position: Embedding::new(rng, config.max_doc_sentences, config.hidden),
            doc_encoder: TransformerEncoder::new(
                rng,
                config.doc_layers,
                config.hidden,
                config.heads,
                config.ff,
                config.dropout,
            ),
            emit: Linear::new(rng, config.hidden, scheme.num_labels()),
            crf: Crf::new(rng, scheme.num_labels()),
            scheme,
        }
    }

    /// The tag scheme.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    /// Per-sentence emissions `[m, labels]` (text modality only).
    pub fn emissions(&self, doc: &DocumentInput, train: bool, rng: &mut impl Rng) -> Tensor {
        let rows: Vec<Tensor> = doc
            .sentences
            .iter()
            .map(|s| {
                let x = self.token_embed.forward(&s.token_ids);
                let h = self.sent_encoder.forward(&x, None, train, rng);
                ops::slice_rows(&h, 0, 1)
            })
            .collect();
        let m = rows.len();
        let sent_reps = ops::concat_rows(&rows);
        let positions: Vec<usize> = (0..m).collect();
        let x = ops::add(&sent_reps, &self.doc_position.forward(&positions));
        let ctx = self.doc_encoder.forward(&x, None, train, rng);
        self.emit.forward(&ctx)
    }

    /// CRF loss over gold sentence labels.
    pub fn loss(&self, doc: &DocumentInput, labels: &[usize], rng: &mut impl Rng) -> Tensor {
        let e = self.emissions(doc, true, rng);
        self.crf.neg_log_likelihood(&e, labels)
    }

    /// Viterbi-decoded sentence labels.
    pub fn predict(&self, doc: &DocumentInput, rng: &mut impl Rng) -> Vec<usize> {
        if doc.is_empty() {
            return Vec::new();
        }
        let e = self.emissions(doc, false, rng);
        self.crf.viterbi(&e.value()).0
    }

    /// Supervised training.
    pub fn finetune(
        &self,
        data: &[(&DocumentInput, &[usize])],
        config: &FinetuneConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut opt = Adam::new(self.parameters(), config.lr_head, config.weight_decay);
        let mut trace = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.shuffle(rng);
            let mut acc = 0.0f32;
            for &i in &order {
                let (doc, labels) = data[i];
                if doc.is_empty() {
                    continue;
                }
                opt.zero_grad();
                let loss = self.loss(doc, labels, rng);
                acc += loss.item();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
            trace.push(acc / data.len().max(1) as f32);
        }
        trace
    }
}

impl Module for HiBertCrf {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.token_embed.parameters();
        p.extend(self.sent_encoder.parameters());
        p.extend(self.doc_position.parameters());
        p.extend(self.doc_encoder.parameters());
        p.extend(self.emit.parameters());
        p.extend(self.crf.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer::data::{build_tokenizer, prepare_document, sentence_iob_labels};
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_tensor::init::seeded_rng;

    fn setup() -> (HiBertCrf, DocumentInput, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(r.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let scheme = block_tag_scheme();
        let (input, sentences) = prepare_document(&r.doc, &wp, &config);
        let labels = sentence_iob_labels(&r, &sentences, &scheme);
        let model = HiBertCrf::new(&mut seeded_rng(82), &config);
        (model, input, labels)
    }

    #[test]
    fn emission_shape_and_prediction() {
        let (model, input, labels) = setup();
        let mut rng = seeded_rng(83);
        let e = model.emissions(&input, false, &mut rng);
        assert_eq!(e.dims(), vec![input.len(), model.scheme().num_labels()]);
        let pred = model.predict(&input, &mut rng);
        assert_eq!(pred.len(), labels.len());
    }

    #[test]
    fn training_fits_single_document() {
        let (model, input, labels) = setup();
        let mut rng = seeded_rng(84);
        let pairs: Vec<(&DocumentInput, &[usize])> = vec![(&input, labels.as_slice())];
        let cfg = FinetuneConfig {
            epochs: 25,
            ..Default::default()
        };
        let trace = model.finetune(&pairs, &cfg, &mut rng);
        assert!(trace.last().unwrap() < &(trace[0] * 0.3));
        let pred = model.predict(&input, &mut rng);
        let acc =
            pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f32 / labels.len() as f32;
        assert!(acc > 0.85, "accuracy {}", acc);
    }
}
