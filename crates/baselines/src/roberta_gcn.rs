//! RoBERTa+GCN baseline (Table II): Wei et al., SIGIR 2020.
//!
//! An MLM-pre-trained token encoder supplies contextual features; a graph
//! convolutional network over a spatial-adjacency graph of tokens encodes
//! "layout and positional information"; a CRF decodes token-level IOB
//! labels. Token-level and windowed, like BERT+CRF.

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer::block_classifier::FinetuneConfig;
use resuformer::config::ModelConfig;
use resuformer::data::block_tag_scheme;
use resuformer::embeddings::TextEmbedding;
use resuformer_doc::LayoutTuple;
use resuformer_nn::gcn::normalize_adjacency;
use resuformer_nn::{Adam, Crf, GcnLayer, Linear, Module, TransformerEncoder};
use resuformer_tensor::{ops, NdArray, Tensor};
use resuformer_text::TagScheme;

use crate::common::{expand_to_token_labels, mlm_pretrain, tokens_to_sentence_labels, TokenDoc};

/// Build a spatial adjacency over a token window: tokens connect when they
/// share a row and sit close horizontally, or are vertically adjacent in
/// the same column band (Wei et al.'s layout graph, simplified).
pub fn spatial_adjacency(layouts: &[LayoutTuple]) -> NdArray {
    let n = layouts.len();
    let mut adj = NdArray::zeros([n, n]);
    {
        let a = adj.data_mut();
        for i in 0..n {
            for j in (i + 1)..n {
                let (li, lj) = (&layouts[i], &layouts[j]);
                if li.page != lj.page {
                    continue;
                }
                let same_row = li.y_min.abs_diff(lj.y_min) <= 8;
                let x_gap = if li.x_max <= lj.x_min {
                    lj.x_min - li.x_max
                } else if lj.x_max <= li.x_min {
                    li.x_min - lj.x_max
                } else {
                    0
                };
                let x_overlap = li.x_min.max(lj.x_min) <= li.x_max.min(lj.x_max);
                let y_gap = li.y_max.abs_diff(lj.y_min).min(lj.y_max.abs_diff(li.y_min));
                let row_neighbor = same_row && x_gap <= 40;
                let col_neighbor = x_overlap && y_gap <= 30;
                if row_neighbor || col_neighbor {
                    a[i * n + j] = 1.0;
                    a[j * n + i] = 1.0;
                }
            }
        }
    }
    adj
}

/// RoBERTa + GCN + CRF.
pub struct RobertaGcn {
    embed: TextEmbedding,
    encoder: TransformerEncoder,
    gcn1: GcnLayer,
    gcn2: GcnLayer,
    emit: Linear,
    crf: Crf,
    scheme: TagScheme,
    window: usize,
}

impl RobertaGcn {
    /// New model.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig, window: usize) -> Self {
        let scheme = block_tag_scheme();
        RobertaGcn {
            embed: TextEmbedding::new(rng, config, window),
            encoder: TransformerEncoder::new(
                rng,
                config.sent_layers,
                config.hidden,
                config.heads,
                config.ff,
                config.dropout,
            ),
            gcn1: GcnLayer::new(rng, config.hidden, config.hidden),
            gcn2: GcnLayer::new(rng, config.hidden, config.hidden),
            emit: Linear::new(rng, config.hidden, scheme.num_labels()),
            crf: Crf::new(rng, scheme.num_labels()),
            scheme,
            window,
        }
    }

    /// The tag scheme.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    /// Token window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// MLM-pre-train the text encoder on corpus windows (the "pre-trained
    /// RoBERTa" warm start; see DESIGN.md §2).
    pub fn pretrain(
        &self,
        docs: &[TokenDoc],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut params = self.embed.parameters();
        params.extend(self.encoder.parameters());
        let table = self.embed.word_table().clone();
        mlm_pretrain(
            params,
            table,
            docs,
            epochs,
            lr,
            rng,
            |ids, _layouts, frng| {
                let x = self.embed.forward(ids);
                self.encoder.forward(&x, None, true, frng)
            },
        )
    }

    fn window_emissions(
        &self,
        ids: &[usize],
        layouts: &[LayoutTuple],
        train: bool,
        rng: &mut impl Rng,
    ) -> Tensor {
        let x = self.embed.forward(ids);
        let h = self.encoder.forward(&x, None, train, rng);
        let adj = normalize_adjacency(&spatial_adjacency(layouts));
        let g = self.gcn2.forward(&adj, &self.gcn1.forward(&adj, &h));
        // Residual combine: text features + layout-graph features.
        self.emit.forward(&ops::add(&h, &g))
    }

    /// Mean CRF loss across a document's windows.
    pub fn loss(&self, doc: &TokenDoc, sentence_labels: &[usize], rng: &mut impl Rng) -> Tensor {
        let token_labels = expand_to_token_labels(&self.scheme, sentence_labels, &doc.sentence_of);
        let mut losses = Vec::new();
        for (start, end) in doc.windows() {
            let e =
                self.window_emissions(&doc.ids[start..end], &doc.layouts[start..end], true, rng);
            losses.push(self.crf.neg_log_likelihood(&e, &token_labels[start..end]));
        }
        let n = losses.len() as f32;
        let sum = losses
            .into_iter()
            .reduce(|a, b| ops::add(&a, &b))
            .expect("non-empty");
        ops::mul_scalar(&sum, 1.0 / n)
    }

    /// Predict sentence labels (windowed Viterbi → majority vote).
    pub fn predict_sentences(&self, doc: &TokenDoc, rng: &mut impl Rng) -> Vec<usize> {
        let mut token_labels = Vec::with_capacity(doc.len());
        for (start, end) in doc.windows() {
            let e =
                self.window_emissions(&doc.ids[start..end], &doc.layouts[start..end], false, rng);
            token_labels.extend(self.crf.viterbi(&e.value()).0);
        }
        tokens_to_sentence_labels(
            &self.scheme,
            &token_labels,
            &doc.sentence_of,
            doc.n_sentences,
        )
    }

    /// Supervised training over `(doc, sentence_labels)` pairs.
    pub fn finetune(
        &self,
        data: &[(&TokenDoc, &[usize])],
        config: &FinetuneConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut opt = Adam::new(self.parameters(), config.lr_head, config.weight_decay);
        let mut trace = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.shuffle(rng);
            let mut acc = 0.0f32;
            for &i in &order {
                let (doc, labels) = data[i];
                if doc.is_empty() {
                    continue;
                }
                opt.zero_grad();
                let loss = self.loss(doc, labels, rng);
                acc += loss.item();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
            trace.push(acc / data.len().max(1) as f32);
        }
        trace
    }
}

impl Module for RobertaGcn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.embed.parameters();
        p.extend(self.encoder.parameters());
        p.extend(self.gcn1.parameters());
        p.extend(self.gcn2.parameters());
        p.extend(self.emit.parameters());
        p.extend(self.crf.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::prepare_token_doc;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer::data::{build_tokenizer, prepare_document, sentence_iob_labels};
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn adjacency_connects_same_row_tokens() {
        let mk = |x0: usize, y0: usize| LayoutTuple {
            x_min: x0,
            y_min: y0,
            x_max: x0 + 30,
            y_max: y0 + 12,
            width: 30,
            height: 12,
            page: 0,
        };
        // Two adjacent same-row tokens + one far-away token.
        let layouts = vec![mk(100, 100), mk(135, 100), mk(800, 700)];
        let adj = spatial_adjacency(&layouts);
        assert_eq!(adj.at(&[0, 1]), 1.0);
        assert_eq!(adj.at(&[1, 0]), 1.0);
        assert_eq!(adj.at(&[0, 2]), 0.0);
    }

    #[test]
    fn pretraining_reduces_mlm_loss() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(r.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let td = prepare_token_doc(&r.doc, &wp, &config, 24);
        let model = RobertaGcn::new(&mut seeded_rng(92), &config, 24);
        let trace = model.pretrain(std::slice::from_ref(&td), 5, 2e-3, &mut seeded_rng(93));
        assert!(trace.last().unwrap() < &trace[0], "{:?}", trace);
    }

    #[test]
    fn training_fits_single_document() {
        let mut rng = ChaCha8Rng::seed_from_u64(94);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(r.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let scheme = block_tag_scheme();
        let (_, sentences) = prepare_document(&r.doc, &wp, &config);
        let labels = sentence_iob_labels(&r, &sentences, &scheme);
        let td = prepare_token_doc(&r.doc, &wp, &config, 32);
        let model = RobertaGcn::new(&mut seeded_rng(95), &config, 32);
        let mut trng = seeded_rng(96);
        let pairs: Vec<(&TokenDoc, &[usize])> = vec![(&td, labels.as_slice())];
        let cfg = FinetuneConfig {
            epochs: 15,
            ..Default::default()
        };
        let trace = model.finetune(&pairs, &cfg, &mut trng);
        assert!(trace.last().unwrap() < &(trace[0] * 0.5));
        let pred = model.predict_sentences(&td, &mut trng);
        assert_eq!(pred.len(), labels.len());
    }
}
