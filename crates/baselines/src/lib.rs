//! # resuformer-baselines
//!
//! Every comparator model from the ResuFormer evaluation, implemented on
//! the same substrates as the main model so Tables II–V compare like with
//! like.
//!
//! **Block classification (Table II):**
//! * [`BertCrf`] — token-level, text-only, non-pre-trained BERT + CRF;
//! * [`HiBertCrf`] — hierarchical sentence-level BERT + CRF (text only);
//! * [`RobertaGcn`] — MLM-pre-trained token encoder + spatial GCN + CRF;
//! * [`LayoutXlmSim`] — token-level multi-modal (text + layout + visual)
//!   pre-trained model; also the knowledge-distillation teacher of
//!   Algorithm 1 (it implements [`resuformer::distill::SentenceTeacher`]).
//!
//! **Intra-block NER (Table IV):**
//! * [`DrMatch`] — dictionary + regular-expression matching only;
//! * [`BertBilstmCrf`] — distant hard labels + CRF loss;
//! * [`BertBilstmFcrf`] — fuzzy CRF over partial annotations;
//! * [`AutoNer`] — the "Tie or Break" scheme of Shang et al.

#![warn(missing_docs)]

pub mod autoner;
pub mod bert_bilstm_crf;
pub mod bert_crf;
pub mod common;
pub mod dr_match;
pub mod hibert_crf;
pub mod layoutxlm_sim;
pub mod roberta_gcn;

pub use autoner::AutoNer;
pub use bert_bilstm_crf::{BertBilstmCrf, BertBilstmFcrf};
pub use bert_crf::BertCrf;
pub use common::{prepare_token_doc, TokenDoc};
pub use dr_match::DrMatch;
pub use hibert_crf::HiBertCrf;
pub use layoutxlm_sim::LayoutXlmSim;
pub use roberta_gcn::RobertaGcn;
