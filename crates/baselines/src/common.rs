//! Shared machinery for the token-level baselines.
//!
//! The paper's token-level comparators (BERT+CRF, RoBERTa+GCN, LayoutXLM)
//! cannot consume a whole multi-page resume at once; they process it in
//! fixed-size token windows ("token by token loop processing", §I), which
//! is the source of both their latency gap and the Figure 3 failure mode.

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer::config::ModelConfig;
use resuformer::data::prepare_document;
use resuformer_doc::{Document, LayoutTuple};
use resuformer_text::{TagScheme, WordPiece};

/// A document flattened to WordPiece tokens, windowed for token-level
/// models.
#[derive(Clone, Debug)]
pub struct TokenDoc {
    /// All piece ids in reading order.
    pub ids: Vec<usize>,
    /// Per-piece layout tuples.
    pub layouts: Vec<LayoutTuple>,
    /// Per-piece sentence index (for converting predictions back to
    /// sentence labels, footnote 3 of the paper).
    pub sentence_of: Vec<usize>,
    /// Per-piece visual patch index == sentence index (token-level
    /// multi-modal models attach their sentence's region feature).
    pub patches: Vec<Vec<f32>>,
    /// Number of sentences in the document.
    pub n_sentences: usize,
    /// Window length used for chunking.
    pub window: usize,
}

impl TokenDoc {
    /// Number of pieces.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the document is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Window boundaries `(start, end)` covering all pieces.
    pub fn windows(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.ids.len() {
            let end = (start + self.window).min(self.ids.len());
            out.push((start, end));
            start = end;
        }
        out
    }
}

/// Flatten a document to pieces using the same sentence segmentation as the
/// hierarchical model (so sentence-level comparisons align exactly).
pub fn prepare_token_doc(
    doc: &Document,
    wp: &WordPiece,
    config: &ModelConfig,
    window: usize,
) -> TokenDoc {
    let (input, _sentences) = prepare_document(doc, wp, config);
    let mut ids = Vec::new();
    let mut layouts = Vec::new();
    let mut sentence_of = Vec::new();
    let mut patches = Vec::new();
    for (si, s) in input.sentences.iter().enumerate() {
        patches.push(s.patch.clone());
        // Skip the [CLS] slot: token-level models see the raw pieces.
        for k in 1..s.token_ids.len() {
            ids.push(s.token_ids[k]);
            layouts.push(s.token_layouts[k]);
            sentence_of.push(si);
        }
    }
    TokenDoc {
        ids,
        layouts,
        sentence_of,
        patches,
        n_sentences: input.len(),
        window,
    }
}

/// Expand sentence-level IOB labels to token-level IOB labels: the first
/// piece of a `B-` sentence keeps `B-`, everything else in the block is
/// `I-`.
pub fn expand_to_token_labels(
    scheme: &TagScheme,
    sentence_labels: &[usize],
    sentence_of: &[usize],
) -> Vec<usize> {
    let mut out = Vec::with_capacity(sentence_of.len());
    let mut prev_sentence = usize::MAX;
    for &si in sentence_of {
        let sl = sentence_labels[si];
        let label = match scheme.class_of(sl) {
            None => scheme.outside(),
            Some(class) => {
                if scheme.is_begin(sl) && si != prev_sentence {
                    scheme.begin(class)
                } else {
                    scheme.inside(class)
                }
            }
        };
        out.push(label);
        prev_sentence = si;
    }
    out
}

/// Convert token-level predictions back to sentence labels by majority
/// vote over each sentence's pieces (footnote 3).
pub fn tokens_to_sentence_labels(
    scheme: &TagScheme,
    token_labels: &[usize],
    sentence_of: &[usize],
    n_sentences: usize,
) -> Vec<usize> {
    let mut votes: Vec<Vec<usize>> = vec![vec![0; scheme.num_labels()]; n_sentences];
    for (&label, &si) in token_labels.iter().zip(sentence_of.iter()) {
        if label < scheme.num_labels() {
            votes[si][label] += 1;
        }
    }
    // Majority class; B/I disambiguated by block continuity.
    let mut out = Vec::with_capacity(n_sentences);
    let mut prev_class: Option<usize> = None;
    for v in votes {
        // Vote over classes (merging B and I counts).
        let mut class_votes = vec![0usize; scheme.num_classes()];
        let mut outside = 0usize;
        for (label, &n) in v.iter().enumerate() {
            match scheme.class_of(label) {
                Some(c) => class_votes[c] += n,
                None => outside += n,
            }
        }
        let (best_class, best_n) = class_votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, n)| *n)
            .expect("non-empty classes");
        if outside >= *best_n {
            out.push(scheme.outside());
            prev_class = None;
        } else {
            let label = if prev_class == Some(best_class) {
                scheme.inside(best_class)
            } else {
                scheme.begin(best_class)
            };
            out.push(label);
            prev_class = Some(best_class);
        }
    }
    out
}

/// MLM-pre-train a token encoder on corpus windows — the "initialise with a
/// pre-trained RoBERTa" substitution (DESIGN.md §2): an in-domain masked
/// language model warm start.
///
/// `forward` maps `(ids, layouts) -> [T, hidden]` token outputs; the
/// closure abstracts over text-only vs layout-aware encoders.
pub fn mlm_pretrain<F>(
    params: Vec<resuformer_tensor::Tensor>,
    word_table: resuformer_tensor::Tensor,
    docs: &[TokenDoc],
    epochs: usize,
    lr: f32,
    rng: &mut impl Rng,
    forward: F,
) -> Vec<f32>
where
    F: Fn(&[usize], &[LayoutTuple], &mut rand_chacha::ChaCha8Rng) -> resuformer_tensor::Tensor,
{
    use rand_chacha::rand_core::SeedableRng;
    use resuformer_nn::Adam;
    use resuformer_tensor::ops;
    use resuformer_text::vocab::MASK;

    let mut opt = Adam::new(params, lr, 0.01);
    let mut trace = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut order: Vec<usize> = (0..docs.len()).collect();
        order.shuffle(rng);
        let mut acc = 0.0f32;
        let mut steps = 0usize;
        for &di in &order {
            let doc = &docs[di];
            for (start, end) in doc.windows() {
                if end - start < 4 {
                    continue;
                }
                let mut ids = doc.ids[start..end].to_vec();
                let layouts = &doc.layouts[start..end];
                // Mask 15% of the window.
                let n = ids.len();
                let k = ((n as f32 * 0.15).round() as usize).clamp(1, n);
                let positions: Vec<usize> = (0..n)
                    .collect::<Vec<_>>()
                    .choose_multiple(rng, k)
                    .copied()
                    .collect();
                let targets: Vec<usize> = positions.iter().map(|&p| ids[p]).collect();
                for &p in &positions {
                    ids[p] = MASK;
                }
                let mut frng = rand_chacha::ChaCha8Rng::seed_from_u64(rng.gen());
                let out = forward(&ids, layouts, &mut frng);
                let picked = ops::gather_rows(&out, &positions);
                let logits = ops::matmul(&picked, &ops::transpose(&word_table));
                opt.zero_grad();
                let loss = ops::cross_entropy_rows(&logits, &targets, None);
                acc += loss.item();
                steps += 1;
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
        trace.push(acc / steps.max(1) as f32);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer::data::{block_tag_scheme, build_tokenizer};
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};

    fn sample() -> (TokenDoc, ModelConfig) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(r.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        (prepare_token_doc(&r.doc, &wp, &config, 32), config)
    }

    #[test]
    fn token_doc_is_consistent() {
        let (td, _) = sample();
        assert!(!td.is_empty());
        assert_eq!(td.ids.len(), td.layouts.len());
        assert_eq!(td.ids.len(), td.sentence_of.len());
        assert_eq!(td.patches.len(), td.n_sentences);
        // Sentence indices are non-decreasing and in range.
        assert!(td.sentence_of.windows(2).all(|w| w[0] <= w[1]));
        assert!(td.sentence_of.iter().all(|&s| s < td.n_sentences));
    }

    #[test]
    fn windows_cover_all_tokens() {
        let (td, _) = sample();
        let ws = td.windows();
        assert_eq!(ws[0].0, 0);
        assert_eq!(ws.last().unwrap().1, td.len());
        for w in ws.windows(2) {
            assert_eq!(w[0].1, w[1].0, "windows must be contiguous");
        }
        assert!(ws.iter().all(|&(s, e)| e - s <= 32));
    }

    #[test]
    fn label_expansion_round_trips_via_majority_vote() {
        let (td, _) = sample();
        let scheme = block_tag_scheme();
        // Synthetic sentence labels: alternate B/I runs across classes.
        let sentence_labels: Vec<usize> = (0..td.n_sentences)
            .map(|i| {
                let class = (i / 3) % scheme.num_classes();
                if i % 3 == 0 {
                    scheme.begin(class)
                } else {
                    scheme.inside(class)
                }
            })
            .collect();
        let token_labels = expand_to_token_labels(&scheme, &sentence_labels, &td.sentence_of);
        assert_eq!(token_labels.len(), td.len());
        let back =
            tokens_to_sentence_labels(&scheme, &token_labels, &td.sentence_of, td.n_sentences);
        // Class assignment must round-trip exactly; B/I boundaries match
        // because consecutive same-class sentences merge identically.
        for (a, b) in back.iter().zip(sentence_labels.iter()) {
            assert_eq!(scheme.class_of(*a), scheme.class_of(*b));
        }
    }

    #[test]
    fn expansion_marks_b_only_on_first_piece() {
        let scheme = block_tag_scheme();
        let sentence_labels = vec![scheme.begin(2), scheme.inside(2)];
        let sentence_of = vec![0, 0, 0, 1, 1];
        let toks = expand_to_token_labels(&scheme, &sentence_labels, &sentence_of);
        assert_eq!(
            toks,
            vec![
                scheme.begin(2),
                scheme.inside(2),
                scheme.inside(2),
                scheme.inside(2),
                scheme.inside(2)
            ]
        );
    }
}
