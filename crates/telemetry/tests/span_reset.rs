//! `span::reset` isolation (own binary: it clears the global arena, which
//! would race any other span test running in the same process).

use resuformer_telemetry::span;

#[test]
fn reset_forgets_history_without_breaking_new_spans() {
    {
        let _g = span::enter("reset.before");
    }
    assert_eq!(span::snapshot().total("reset.before").1, 1);
    span::reset();
    assert_eq!(
        span::snapshot().total("reset.before").1,
        0,
        "history cleared"
    );
    // New spans intern fresh nodes after the wipe.
    {
        let _outer = span::enter("reset.outer");
        let _inner = span::enter("reset.inner");
    }
    let tree = span::snapshot();
    assert_eq!(tree.total("reset.outer").1, 1);
    let outer = tree.roots.iter().find(|r| r.name == "reset.outer").unwrap();
    assert!(outer.children.iter().any(|c| c.name == "reset.inner"));
}
