//! The overhead contract: recording must stay cheap enough for hot paths,
//! and the disabled() fast path cheaper still.
//!
//! Own binary because it flips the global enable flag, which would race
//! recording tests in any shared process. Thresholds are deliberately
//! loose and load-tolerant (min-of-K batches, generous ceilings) — the
//! point is catching a 100× regression (a lock or allocation landing on
//! the record path), not benchmarking.

use std::time::Instant;

use resuformer_telemetry::{span, Histogram};

/// Best (minimum) mean cost per op over `k` batches of `n` calls.
fn min_cost_ns(k: usize, n: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..k {
        let t0 = Instant::now();
        for _ in 0..n {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / n as f64);
    }
    best
}

#[test]
fn record_and_span_costs_stay_bounded() {
    // -- enabled ---------------------------------------------------------
    let h = Histogram::new();
    let mut x = 0.001f64;
    let enabled_hist = min_cost_ns(5, 50_000, || {
        h.record(std::hint::black_box(x));
        x = (x * 1.000001).min(10.0);
    });
    assert!(
        enabled_hist < 2_000.0,
        "histogram record: {enabled_hist:.0} ns/op (no-alloc contract broken?)"
    );

    let enabled_span = min_cost_ns(5, 20_000, || {
        let _g = span::enter("ovh.span");
    });
    assert!(
        enabled_span < 5_000.0,
        "span enter+drop: {enabled_span:.0} ns/op"
    );

    // -- disabled fast path ---------------------------------------------
    resuformer_telemetry::set_enabled(false);
    let before = h.count();
    let disabled_hist = min_cost_ns(5, 50_000, || {
        h.record(std::hint::black_box(0.001));
    });
    let disabled_span = min_cost_ns(5, 50_000, || {
        let _g = span::enter("ovh.disabled");
    });
    resuformer_telemetry::set_enabled(true);

    assert_eq!(h.count(), before, "disabled record must be a no-op");
    assert!(
        disabled_hist < 500.0,
        "disabled histogram record: {disabled_hist:.0} ns/op — should be ~one atomic load"
    );
    assert!(
        disabled_span < 500.0,
        "disabled span: {disabled_span:.0} ns/op — should be ~one atomic load"
    );
}

#[test]
fn disarmed_failpoint_costs_one_atomic_load() {
    use resuformer_telemetry::failpoint;

    // Settle the lazy env init so the measured path is the steady state,
    // then make sure nothing is armed (this binary never arms anything).
    let _ = failpoint::init_from_env();
    assert!(
        failpoint::armed().is_empty(),
        "overhead run must start disarmed: {:?}",
        failpoint::armed()
    );
    let disarmed = min_cost_ns(5, 50_000, || {
        let _ = failpoint::hit(std::hint::black_box("ovh.failpoint.unarmed"));
    });
    assert!(
        disarmed < 500.0,
        "disarmed failpoint hit: {disarmed:.0} ns/op — should be ~one atomic load"
    );

    // Arming ANY site moves other sites off the fast path (they take the
    // table lock) — but disarming again must restore the no-op cost.
    failpoint::arm("ovh.failpoint.other", failpoint::Action::Delay(1));
    failpoint::reset();
    let restored = min_cost_ns(5, 50_000, || {
        let _ = failpoint::hit(std::hint::black_box("ovh.failpoint.unarmed"));
    });
    assert!(
        restored < 500.0,
        "fast path not restored after reset: {restored:.0} ns/op"
    );
}
