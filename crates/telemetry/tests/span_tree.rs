//! Span aggregation across threads: phases recorded on worker threads
//! merge with the coordinator's by `(parent, name)`, the way the train
//! engine and serve pipeline record them.

use resuformer_telemetry::span;

#[test]
fn spans_from_many_threads_merge_by_name() {
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..8 {
                    let _g = span::enter("mt.work");
                    std::hint::black_box(0u64);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let tree = span::snapshot();
    let (_, count) = tree.total("mt.work");
    assert_eq!(count, 32, "4 threads × 8 spans merge into one node");

    // All were root spans on their threads, so the tree has one root row.
    let roots: Vec<_> = tree.roots.iter().filter(|r| r.name == "mt.work").collect();
    assert_eq!(roots.len(), 1, "{:?}", tree.roots);
}

#[test]
fn deep_nesting_keeps_parentage_straight() {
    {
        let _a = span::enter("deep.a");
        let _b = span::enter("deep.b");
        let _c = span::enter("deep.c");
    }
    let tree = span::snapshot();
    let a = tree
        .roots
        .iter()
        .find(|r| r.name == "deep.a")
        .expect("a is a root");
    let b = a
        .children
        .iter()
        .find(|c| c.name == "deep.b")
        .expect("b under a");
    assert!(
        b.children.iter().any(|c| c.name == "deep.c"),
        "c under b: {b:?}"
    );
    // Wall time is inclusive going up the stack.
    let c = b.children.iter().find(|c| c.name == "deep.c").unwrap();
    assert!(a.total_seconds >= b.total_seconds);
    assert!(b.total_seconds >= c.total_seconds);
}

// NOTE: `span::reset` is exercised in `tests/span_reset.rs`, its own
// binary — clearing the global arena here would race the tests above.
