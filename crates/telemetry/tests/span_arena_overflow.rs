//! Span arena overflow must be loud, not silent: past `MAX_SPAN_NODES`
//! distinct `(parent, name)` nodes, time lands on the `<overflow>`
//! sentinel and the `telemetry.span_arena_overflow` counter grows.
//!
//! This lives in its own integration binary because it deliberately
//! saturates the process-global arena — the unit tests in `span.rs` must
//! not share a process with it.

use resuformer_telemetry::span::{self, MAX_SPAN_NODES, OVERFLOW_COUNTER, OVERFLOW_NAME};

/// Recursive spans mint a fresh `(parent, name)` node per depth — exactly
/// the shape that used to grow the arena without bound.
fn deep(depth: usize) {
    if depth == 0 {
        return;
    }
    let _g = span::enter("overflow.deep");
    deep(depth - 1);
}

#[test]
fn saturated_arena_attributes_to_a_sentinel_and_counts() {
    let counter = resuformer_telemetry::global().counter(OVERFLOW_COUNTER);
    let before = counter.get();

    let extra = 50;
    deep(MAX_SPAN_NODES + extra);

    let tree = span::snapshot();
    let (overflow_s, overflow_n) = tree.total(OVERFLOW_NAME);
    assert!(
        overflow_n >= extra as u64,
        "deepest {extra}+ spans must land on the sentinel, got {overflow_n}"
    );
    assert!(overflow_s >= 0.0);
    assert!(
        counter.get() - before >= extra as u64,
        "overflow counter must record every overflowed span"
    );

    // The arena stayed bounded: interned names are the recursive one, the
    // sentinel, and whatever the root sentinel contributes — snapshotting
    // must not explode into one node per depth past the cap.
    let (named_s, named_n) = tree.total("overflow.deep");
    assert!(named_n >= (MAX_SPAN_NODES - 1) as u64);
    assert!(named_s >= 0.0);

    // Overflowed spans keep recording on repeat visits (the sentinel is
    // interned once, then hits the read-locked fast path).
    deep(MAX_SPAN_NODES + 10);
    let (_, overflow_n2) = span::snapshot().total(OVERFLOW_NAME);
    assert!(overflow_n2 > overflow_n);
}
