//! End-to-end trace capture: enable, run spans, write the Chrome trace
//! file, and structurally validate the JSON (own binary: it owns the
//! global capture buffer).

use resuformer_telemetry::{export, span, trace};

#[test]
fn spans_round_trip_into_a_chrome_trace_file() {
    trace::enable();
    {
        let _outer = span::enter("rt.pipeline");
        for _ in 0..3 {
            let _inner = span::enter("rt.stage");
            std::hint::black_box(0u64);
        }
    }
    trace::disable();

    let path = std::env::temp_dir().join("resuformer_trace_roundtrip.json");
    let path_s = path.to_str().unwrap();
    let written = export::write_chrome_trace(path_s).expect("trace writes");
    assert!(written >= 4, "3 inner + 1 outer events, got {written}");

    let body = std::fs::read_to_string(&path).unwrap();
    // Structural checks strong enough to catch broken JSON emission
    // without a JSON parser dependency: balanced braces/brackets, the
    // trace-event envelope, and one complete event per span.
    assert!(body.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(body.ends_with("]}"));
    assert_eq!(
        body.matches('{').count(),
        body.matches('}').count(),
        "balanced braces"
    );
    assert_eq!(body.matches("\"ph\":\"X\"").count(), written);
    assert_eq!(body.matches("\"name\":\"rt.stage\"").count(), 3);
    assert_eq!(body.matches("\"name\":\"rt.pipeline\"").count(), 1);

    // The buffer drains on write: a second write is empty.
    assert_eq!(export::write_chrome_trace(path_s).unwrap(), 0);
    std::fs::remove_file(&path).ok();
}
