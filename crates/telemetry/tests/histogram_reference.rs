//! Histogram quantile reconstruction vs the exact sort-based reference on
//! adversarial distributions: degenerate (single value), bimodal with a
//! 6-decade gap, heavy-tailed at 1M samples, and all-identical floods.

use resuformer_telemetry::quantile::nearest_rank;
use resuformer_telemetry::Histogram;

/// Relative error budget: half a sub-bucket is ~0.8%; 2% covers rank ties
/// that land a quantile one bucket over.
fn assert_close(got: f64, want: f64, what: &str) {
    let tol = want.abs() * 0.02 + 1e-12;
    assert!(
        (got - want).abs() <= tol,
        "{what}: histogram {got} vs reference {want}"
    );
}

fn check(samples: &[f64], what: &str) {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    assert_eq!(h.count(), samples.len() as u64, "{what}: count");
    for p in [0.0, 1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
        assert_close(h.quantile(p), nearest_rank(samples, p), what);
    }
    let sorted_min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let sorted_max = samples.iter().cloned().fold(0.0f64, f64::max);
    assert_eq!(h.min(), sorted_min, "{what}: min is exact");
    assert_eq!(h.max(), sorted_max, "{what}: max is exact");
}

#[test]
fn single_value() {
    check(&[0.0042], "single value");
}

#[test]
fn two_identical_values() {
    check(&[1.5, 1.5], "two identical");
}

#[test]
fn bimodal_with_six_decade_gap() {
    // 90% fast requests at ~100µs, 10% stragglers at ~100s: the exact
    // shape that breaks mean-based reporting and linear bucketing.
    let mut samples = Vec::new();
    for i in 0..900 {
        samples.push(1e-4 * (1.0 + (i % 7) as f64 * 0.01));
    }
    for i in 0..100 {
        samples.push(100.0 * (1.0 + (i % 5) as f64 * 0.02));
    }
    check(&samples, "bimodal");
}

#[test]
fn heavy_tail_one_million_samples() {
    // Deterministic xorshift so the test needs no external RNG crate.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = 1_000_000;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        // Log-uniform over ~6 decades [1µs, 1s]: u in [0,1) → 10^(-6+6u).
        let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
        samples.push(10f64.powf(-6.0 + 6.0 * u));
    }
    check(&samples, "1M heavy tail");
}

#[test]
fn values_spanning_the_clamp_edges() {
    // Below the smallest tracked bucket and far above a day: both clamp
    // without panicking, and quantiles stay within the observed range.
    let h = Histogram::new();
    h.record(1e-300);
    h.record(1e300);
    h.record(1.0);
    assert_eq!(h.count(), 3);
    let p50 = h.quantile(50.0);
    assert!(p50 >= h.min() && p50 <= h.max());
    assert_eq!(h.max(), 1e300, "max is exact even beyond the buckets");
}
