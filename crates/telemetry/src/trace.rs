//! Chrome trace-event capture.
//!
//! Off by default: spans cost two atomic adds and nothing else. After
//! [`enable`] (the `--trace-out` flag), every closed span also appends a
//! complete ("ph":"X") trace event — name, thread, microsecond timestamp,
//! duration — which [`crate::export::chrome_trace_json`] renders into a
//! file `chrome://tracing` / Perfetto opens as a flamegraph.
//!
//! The capture buffer is a **bounded ring**: once `capacity` events are
//! held, each new event evicts the oldest one, so a long pretrain/serve
//! run keeps the *latest* window of activity in constant memory instead
//! of growing without bound. Evictions are observable — they bump the
//! `telemetry.trace_dropped_events` counter in [`crate::global`] (exported
//! by Prometheus/JSON like any metric) and [`dropped_events`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::registry::Counter;

/// Default ring capacity: enough for minutes of dense span traffic while
/// bounding memory to a few tens of MB of events.
pub const DEFAULT_CAPACITY: usize = 262_144;

/// Counter name bumped once per event evicted from a full ring.
pub const DROPPED_COUNTER: &str = "telemetry.trace_dropped_events";

/// One complete span occurrence (all times in microseconds).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Small dense thread id (assigned per thread on first span).
    pub tid: u64,
    /// Start timestamp relative to the process trace epoch.
    pub ts_us: f64,
    /// Duration.
    pub dur_us: f64,
}

struct RingState {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Events evicted over the buffer's lifetime (mirrors the counter).
    dropped: u64,
}

struct TraceBuffer {
    enabled: AtomicBool,
    ring: Mutex<RingState>,
}

fn buffer() -> &'static TraceBuffer {
    static BUF: OnceLock<TraceBuffer> = OnceLock::new();
    BUF.get_or_init(|| TraceBuffer {
        enabled: AtomicBool::new(false),
        ring: Mutex::new(RingState {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        }),
    })
}

fn dropped_counter() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| crate::global().counter(DROPPED_COUNTER))
}

/// The instant timestamps are measured from (first use of this module).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Start capturing span events into a ring of [`DEFAULT_CAPACITY`]
/// (idempotent). Pins the trace epoch.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Start capturing with an explicit ring capacity (minimum 1). Shrinking
/// below the number of already-buffered events evicts the oldest ones,
/// counted as drops. Registers the dropped-events counter eagerly so it
/// exports as `0` even before the first eviction.
pub fn enable_with_capacity(capacity: usize) {
    epoch();
    let buf = buffer();
    let mut evicted = 0u64;
    {
        let mut ring = buf.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.capacity = capacity.max(1);
        while ring.events.len() > ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
            evicted += 1;
        }
    }
    dropped_counter().add(evicted);
    buf.enabled.store(true, Ordering::Relaxed);
}

/// Stop capturing (already-captured events are kept until [`take_events`]).
pub fn disable() {
    buffer().enabled.store(false, Ordering::Relaxed);
}

/// Whether capture is on.
pub fn is_enabled() -> bool {
    buffer().enabled.load(Ordering::Relaxed)
}

/// Events evicted from the ring over the process lifetime. Non-zero means
/// the captured trace is the *tail* of the run, not the whole run.
pub fn dropped_events() -> u64 {
    buffer()
        .ring
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .dropped
}

/// Called by [`crate::span`] when a span closes.
#[inline]
pub(crate) fn record_span(name: &'static str, start: Instant, dur: Duration) {
    let buf = buffer();
    if !buf.enabled.load(Ordering::Relaxed) {
        return;
    }
    let ts_us = start.saturating_duration_since(epoch()).as_secs_f64() * 1e6;
    let event = TraceEvent {
        name,
        tid: thread_id(),
        ts_us,
        dur_us: dur.as_secs_f64() * 1e6,
    };
    let dropped = {
        let mut ring = buf.ring.lock().unwrap_or_else(|e| e.into_inner());
        let dropped = ring.events.len() >= ring.capacity;
        if dropped {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
        dropped
    };
    if dropped {
        dropped_counter().inc();
    }
}

/// Drain and return every captured event (oldest first). The lifetime
/// dropped-event count is unaffected.
pub fn take_events() -> Vec<TraceEvent> {
    let mut ring = buffer().ring.lock().unwrap_or_else(|e| e.into_inner());
    ring.events.drain(..).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The capture buffer is process-global; tests that reconfigure or
    /// drain it serialize on this lock.
    static BUFFER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn events_only_flow_while_enabled() {
        let _own = BUFFER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // This test owns the global buffer: drain whatever other tests in
        // this binary may have left behind, then check the gate.
        disable();
        let _ = take_events();
        {
            let _g = crate::span::enter("tr.off");
        }
        assert!(
            take_events().iter().all(|e| e.name != "tr.off"),
            "no capture while disabled"
        );

        enable();
        {
            let _g = crate::span::enter("tr.on");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disable();
        let events = take_events();
        let e = events
            .iter()
            .find(|e| e.name == "tr.on")
            .expect("span captured while enabled");
        assert!(e.dur_us >= 500.0, "{:?}", e);
        assert!(e.ts_us >= 0.0);
        assert!(e.tid >= 1);
    }

    #[test]
    fn full_ring_evicts_oldest_and_counts_drops() {
        let _own = BUFFER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        let _ = take_events();
        let dropped_before = dropped_events();
        let counter_before = dropped_counter().get();

        enable_with_capacity(4);
        for name in ["tr.ring.a", "tr.ring.b", "tr.ring.c"] {
            for _ in 0..2 {
                let _g = crate::span::enter(name);
            }
        }
        disable();

        // Other tests in this binary may record a stray span while capture
        // is on, so assert ring invariants, not exact event identity.
        let events = take_events();
        assert_eq!(events.len(), 4, "ring holds exactly its capacity");
        assert!(
            events.iter().all(|e| e.name != "tr.ring.a"),
            "oldest events evicted first: {events:?}"
        );
        assert!(
            events.iter().any(|e| e.name == "tr.ring.c"),
            "newest events kept: {events:?}"
        );
        assert!(dropped_events() - dropped_before >= 2);
        assert_eq!(
            dropped_counter().get() - counter_before,
            dropped_events() - dropped_before,
            "counter mirrors the ring's lifetime drop count"
        );

        // Restore the default so later tests see a roomy buffer.
        enable();
        disable();
    }
}
