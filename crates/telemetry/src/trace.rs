//! Chrome trace-event capture.
//!
//! Off by default: spans cost two atomic adds and nothing else. After
//! [`enable`] (the `--trace-out` flag), every closed span also appends a
//! complete ("ph":"X") trace event — name, thread, microsecond timestamp,
//! duration — which [`crate::export::chrome_trace_json`] renders into a
//! file `chrome://tracing` / Perfetto opens as a flamegraph.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One complete span occurrence (all times in microseconds).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Small dense thread id (assigned per thread on first span).
    pub tid: u64,
    /// Start timestamp relative to the process trace epoch.
    pub ts_us: f64,
    /// Duration.
    pub dur_us: f64,
}

struct TraceBuffer {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
}

fn buffer() -> &'static TraceBuffer {
    static BUF: OnceLock<TraceBuffer> = OnceLock::new();
    BUF.get_or_init(|| TraceBuffer {
        enabled: AtomicBool::new(false),
        events: Mutex::new(Vec::new()),
    })
}

/// The instant timestamps are measured from (first use of this module).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Start capturing span events (idempotent). Pins the trace epoch.
pub fn enable() {
    epoch();
    buffer().enabled.store(true, Ordering::Relaxed);
}

/// Stop capturing (already-captured events are kept until [`take_events`]).
pub fn disable() {
    buffer().enabled.store(false, Ordering::Relaxed);
}

/// Whether capture is on.
pub fn is_enabled() -> bool {
    buffer().enabled.load(Ordering::Relaxed)
}

/// Called by [`crate::span`] when a span closes.
#[inline]
pub(crate) fn record_span(name: &'static str, start: Instant, dur: Duration) {
    let buf = buffer();
    if !buf.enabled.load(Ordering::Relaxed) {
        return;
    }
    let ts_us = start.saturating_duration_since(epoch()).as_secs_f64() * 1e6;
    let event = TraceEvent {
        name,
        tid: thread_id(),
        ts_us,
        dur_us: dur.as_secs_f64() * 1e6,
    };
    buf.events
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(event);
}

/// Drain and return every captured event (oldest first).
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *buffer().events.lock().unwrap_or_else(|e| e.into_inner()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_only_flow_while_enabled() {
        // This test owns the global buffer: drain whatever other tests in
        // this binary may have left behind, then check the gate.
        disable();
        let _ = take_events();
        {
            let _g = crate::span::enter("tr.off");
        }
        assert!(
            take_events().iter().all(|e| e.name != "tr.off"),
            "no capture while disabled"
        );

        enable();
        {
            let _g = crate::span::enter("tr.on");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disable();
        let events = take_events();
        let e = events
            .iter()
            .find(|e| e.name == "tr.on")
            .expect("span captured while enabled");
        assert!(e.dur_us >= 500.0, "{:?}", e);
        assert!(e.ts_us >= 0.0);
        assert!(e.tid >= 1);
    }
}
