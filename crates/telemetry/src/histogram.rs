//! Lock-free log-bucketed histograms.
//!
//! Samples (seconds, sizes — any positive `f64`) land in one of 4096
//! atomic buckets: 64 octaves (powers of two from 2⁻⁴⁰ to 2²³) × 64
//! logarithmic sub-buckets each. Bucketing is a few bit operations on the
//! IEEE-754 representation — no locks, no allocation, no branching on the
//! sample magnitude beyond range clamps — so recording is safe on hot
//! paths. Quantiles are reconstructed from the buckets with ≤ ~0.8%
//! relative error (half a sub-bucket) and are unit-tested against the
//! exact nearest-rank reference in [`crate::quantile`].

use std::sync::atomic::{AtomicU64, Ordering};

/// log₂ of the sub-buckets per octave.
const SUB_BITS: u32 = 6;
/// Sub-buckets per power of two.
const SUBS: usize = 1 << SUB_BITS;
/// Smallest tracked IEEE-754 exponent (biased): 2⁻⁴⁰ ≈ 0.9 ps.
const E_MIN: u64 = 1023 - 40;
/// Largest tracked IEEE-754 exponent (biased): 2²³ s ≈ 97 days.
const E_MAX: u64 = 1023 + 23;
/// Total buckets.
const BUCKETS: usize = (E_MAX - E_MIN + 1) as usize * SUBS;

/// Smallest positive value that gets its own bucket; everything at or
/// below it (including 0, which coarse clocks do produce) clamps here.
pub const MIN_TRACKED: f64 = 9.094947017729282e-13; // 2^-40

/// A point-in-time digest of one histogram (all values in the recorded
/// unit, typically seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Mean sample (0.0 when empty).
    pub mean: f64,
    /// Exact smallest sample (0.0 when empty).
    pub min: f64,
    /// Exact largest sample (0.0 when empty).
    pub max: f64,
    /// Median, reconstructed from the buckets.
    pub p50: f64,
    /// 95th percentile, reconstructed from the buckets.
    pub p95: f64,
    /// 99th percentile, reconstructed from the buckets.
    pub p99: f64,
}

/// A concurrent log-bucketed histogram. All methods take `&self`; `record`
/// is wait-free (atomic adds plus one CAS loop for the running sum).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    /// Running sum as an `f64` bit pattern (CAS-updated).
    sum_bits: AtomicU64,
    /// Exact min/max as `f64` bit patterns. For positive floats the bit
    /// pattern is order-isomorphic to the value, so `fetch_min`/`fetch_max`
    /// on the raw bits maintain them without a CAS loop.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram (~32 KiB of buckets, allocated up front).
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = v.into_boxed_slice().try_into().ok().unwrap();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(u64::MAX),
            max_bits: AtomicU64::new(0),
        }
    }

    /// Bucket index for a positive, clamped value.
    #[inline]
    fn index(v: f64) -> usize {
        let bits = v.to_bits();
        let e = bits >> 52; // sign bit is 0 for positive v
        if e < E_MIN {
            return 0;
        }
        if e > E_MAX {
            return BUCKETS - 1;
        }
        let sub = (bits >> (52 - SUB_BITS)) as usize & (SUBS - 1);
        (e - E_MIN) as usize * SUBS + sub
    }

    /// The midpoint value bucket `i` reconstructs to.
    #[inline]
    fn representative(i: usize) -> f64 {
        let octave = (i / SUBS) as i32 + (E_MIN as i32 - 1023);
        let sub = (i % SUBS) as f64;
        // Lower edge 2^octave * (1 + sub/64), half a sub-bucket up.
        f64::exp2(octave as f64) * (1.0 + (sub + 0.5) / SUBS as f64)
    }

    /// Record one sample. NaN is dropped; values ≤ [`MIN_TRACKED`] clamp to
    /// the smallest bucket. No-op while telemetry is globally disabled.
    #[inline]
    pub fn record(&self, v: f64) {
        if crate::disabled() || v.is_nan() {
            return;
        }
        let v = v.clamp(MIN_TRACKED, f64::MAX);
        let bits = v.to_bits();
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min_bits.fetch_min(bits, Ordering::Relaxed);
        self.max_bits.fetch_max(bits, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some((f64::from_bits(cur) + v).to_bits())
            });
    }

    /// Record a `std::time::Duration` in seconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Exact smallest recorded sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        let bits = self.min_bits.load(Ordering::Relaxed);
        if bits == u64::MAX {
            0.0
        } else {
            f64::from_bits(bits)
        }
    }

    /// Exact largest recorded sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        let bits = self.max_bits.load(Ordering::Relaxed);
        if bits == 0 {
            0.0
        } else {
            f64::from_bits(bits)
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), reconstructed from the
    /// buckets with the same nearest-rank convention as
    /// [`crate::quantile::nearest_rank_sorted`] and clamped to the exact
    /// observed `[min, max]`. Returns 0.0 when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum > rank {
                return Self::representative(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Snapshot every headline statistic at once.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            min: self.min(),
            max: self.max(),
            p50: self.quantile(50.0),
            p95: self.quantile(95.0),
            p99: self.quantile(99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::nearest_rank;

    /// Reconstruction error budget: half a sub-bucket (~0.8%) plus slack
    /// for rank ties inside one bucket.
    fn assert_close(got: f64, want: f64, what: &str) {
        let tol = want.abs() * 0.02 + 1e-12;
        assert!(
            (got - want).abs() <= tol,
            "{what}: histogram {got} vs reference {want}"
        );
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(50.0), 0.0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_value_is_exact_at_every_quantile() {
        let h = Histogram::new();
        h.record(0.0073);
        for p in [0.0, 50.0, 99.0, 100.0] {
            // min==max clamping makes a lone sample exact, not approximate.
            assert_eq!(h.quantile(p), 0.0073);
        }
        assert_eq!(h.min(), 0.0073);
        assert_eq!(h.max(), 0.0073);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn zero_and_nan_samples_are_tolerated() {
        let h = Histogram::new();
        h.record(0.0); // coarse clocks produce exact zeros
        h.record(f64::NAN);
        h.record(-1.0);
        assert_eq!(h.count(), 2, "NaN dropped, 0 and -1 clamped");
        assert_eq!(h.min(), MIN_TRACKED);
    }

    #[test]
    fn uniform_distribution_matches_reference() {
        let h = Histogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for &s in &samples {
            h.record(s);
        }
        for p in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            assert_close(h.quantile(p), nearest_rank(&samples, p), "uniform");
        }
        assert_close(h.sum(), samples.iter().sum::<f64>(), "sum");
    }

    #[test]
    fn bucket_index_is_monotonic_across_magnitudes() {
        let mut last = 0usize;
        let mut v = MIN_TRACKED;
        while v < 1e7 {
            let i = Histogram::index(v);
            assert!(i >= last, "index must not decrease: {v}");
            last = i;
            v *= 1.01;
        }
        assert!(last < BUCKETS);
    }

    #[test]
    fn representative_lands_in_its_own_bucket() {
        for i in (0..BUCKETS).step_by(37) {
            let rep = Histogram::representative(i);
            assert_eq!(Histogram::index(rep), i, "bucket {i} rep {rep}");
        }
    }
}
