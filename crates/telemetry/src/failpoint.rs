//! Deterministic failpoints for chaos testing.
//!
//! A failpoint is a **named site** in production code — e.g. the serve
//! worker's parse step hits `failpoint::hit("serve.worker.parse")` — that
//! normally does nothing, but can be armed (programmatically or through
//! the `RESUFORMER_FAILPOINTS` environment variable) to inject a fault:
//!
//! | action | effect at the site |
//! |---|---|
//! | `off` | nothing (explicitly disarm a site) |
//! | `panic` | `panic!` — exercises unwind/supervision paths |
//! | `delay(ms)` | sleep `ms` milliseconds — simulates a slow dependency |
//! | `err(msg)` | `hit` returns `Err(msg)` — simulates a fallible step |
//!
//! Any action can carry a **fire budget**: `one_shot_panic` fires once
//! and then disarms itself; `one_shot(3)_delay(50)` fires three times.
//! Budgets decrement atomically under the site lock, so exactly `n`
//! concurrent hits fire no matter how threads race — that determinism is
//! what lets a chaos test assert "exactly the poisoned documents failed".
//!
//! Spec grammar (env var or [`configure`]): `site=action` pairs separated
//! by `;`, e.g.
//!
//! ```text
//! RESUFORMER_FAILPOINTS='serve.worker.parse=one_shot_panic;serve.worker.recv=delay(10)'
//! ```
//!
//! Like the rest of this crate, the disarmed fast path is **one relaxed
//! atomic load** (see `tests/overhead.rs`): production binaries pay
//! nothing for carrying their failpoint sites. The environment variable
//! is read lazily on the first `hit` in the process (or eagerly via
//! [`init_from_env`]), so every binary that links this crate honors it
//! without wiring.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when its site is hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Do nothing (an explicit disarm in a spec string).
    Off,
    /// Panic at the site.
    Panic,
    /// Sleep for the given number of milliseconds, then continue.
    Delay(u64),
    /// Make [`hit`] return `Err` with this message.
    Err(String),
}

/// Global arming state, checked on the `hit` fast path with one relaxed
/// load. Three-valued so the very first hit can lazily read the
/// environment: until then the state is "unknown", which routes through
/// the slow path exactly once.
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ARMED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

struct Site {
    action: Action,
    /// Remaining fires before self-disarm; `None` = unlimited.
    remaining: Option<u64>,
    /// Total times this site fired a non-`Off` action.
    fires: u64,
}

#[derive(Default)]
struct FailpointTable {
    sites: BTreeMap<String, Site>,
}

impl FailpointTable {
    fn armed_count(&self) -> usize {
        self.sites
            .iter()
            .filter(|(_, s)| s.action != Action::Off && s.remaining != Some(0))
            .count()
    }
}

fn table() -> &'static Mutex<FailpointTable> {
    static TABLE: OnceLock<Mutex<FailpointTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(FailpointTable::default()))
}

fn lock_table() -> std::sync::MutexGuard<'static, FailpointTable> {
    // A panic while holding the lock (only possible in `hit_slow`, which
    // releases it before panicking) must not wedge every later hit.
    table().lock().unwrap_or_else(|e| e.into_inner())
}

/// Refresh `STATE` from the table. Callers must hold the table lock (the
/// guard argument proves it) so state and table can never disagree.
fn refresh_state(t: &FailpointTable) {
    let state = if t.armed_count() > 0 {
        STATE_ARMED
    } else {
        STATE_OFF
    };
    STATE.store(state, Ordering::Relaxed);
}

/// Read `RESUFORMER_FAILPOINTS` and arm whatever it specifies. Idempotent:
/// only the first call (or the first [`hit`] in the process, which calls
/// this) consults the environment. Returns how many sites the variable
/// armed, or the parse error — a malformed spec never panics production
/// code, it is reported and ignored.
pub fn init_from_env() -> Result<usize, String> {
    static INIT: OnceLock<Result<usize, String>> = OnceLock::new();
    INIT.get_or_init(|| {
        let spec = match std::env::var("RESUFORMER_FAILPOINTS") {
            Ok(s) if !s.trim().is_empty() => s,
            _ => {
                // Nothing to arm; settle the fast path out of UNINIT.
                let t = lock_table();
                refresh_state(&t);
                return Ok(0);
            }
        };
        match configure(&spec) {
            Ok(n) => Ok(n),
            Err(e) => {
                eprintln!("warning: ignoring RESUFORMER_FAILPOINTS: {e}");
                let t = lock_table();
                refresh_state(&t);
                Err(e)
            }
        }
    })
    .clone()
}

/// Arm `site` with `action`, firing on every hit until disarmed.
pub fn arm(site: &str, action: Action) {
    arm_budgeted(site, action, None);
}

/// Arm `site` with `action` for at most `n` fires, then self-disarm.
pub fn arm_one_shot(site: &str, action: Action, n: u64) {
    arm_budgeted(site, action, Some(n));
}

fn arm_budgeted(site: &str, action: Action, remaining: Option<u64>) {
    let mut t = lock_table();
    let fires = t.sites.get(site).map(|s| s.fires).unwrap_or(0);
    t.sites.insert(
        site.to_string(),
        Site {
            action,
            remaining,
            fires,
        },
    );
    refresh_state(&t);
}

/// Disarm `site` (a no-op if it was never armed). Fire counts survive.
pub fn disarm(site: &str) {
    arm(site, Action::Off);
}

/// Disarm every site and forget all fire counts.
pub fn reset() {
    let mut t = lock_table();
    t.sites.clear();
    refresh_state(&t);
}

/// Times `site` fired a non-`off` action since the last [`reset`].
pub fn fires(site: &str) -> u64 {
    lock_table().sites.get(site).map(|s| s.fires).unwrap_or(0)
}

/// Names of all currently armed sites (budget not yet exhausted).
pub fn armed() -> Vec<String> {
    lock_table()
        .sites
        .iter()
        .filter(|(_, s)| s.action != Action::Off && s.remaining != Some(0))
        .map(|(name, _)| name.clone())
        .collect()
}

/// Parse and apply a failpoint spec: `site=action` pairs separated by
/// `;`. Returns how many sites were armed (non-`off`). See the module
/// docs for the action grammar.
pub fn configure(spec: &str) -> Result<usize, String> {
    // Parse everything before arming anything, so a bad trailing entry
    // can't leave the table half-configured.
    let mut parsed = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, action_spec) = entry
            .split_once('=')
            .ok_or_else(|| format!("bad failpoint entry {entry:?}: expected site=action"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("bad failpoint entry {entry:?}: empty site name"));
        }
        let (action, budget) = parse_action(action_spec.trim())?;
        parsed.push((site.to_string(), action, budget));
    }
    let mut armed_count = 0;
    for (site, action, budget) in parsed {
        if action != Action::Off {
            armed_count += 1;
        }
        let mut t = lock_table();
        let fires = t.sites.get(&site).map(|s| s.fires).unwrap_or(0);
        t.sites.insert(
            site,
            Site {
                action,
                remaining: budget,
                fires,
            },
        );
        refresh_state(&t);
    }
    Ok(armed_count)
}

/// Parse one action spec, returning the action plus an optional fire
/// budget: `panic`, `delay(50)`, `err(boom)`, `one_shot_panic`,
/// `one_shot(3)_err(msg)`, `off`.
fn parse_action(spec: &str) -> Result<(Action, Option<u64>), String> {
    let (budget, base) = if let Some(rest) = spec.strip_prefix("one_shot") {
        if let Some(rest) = rest.strip_prefix('_') {
            (Some(1), rest)
        } else if let Some(rest) = rest.strip_prefix('(') {
            let (n, tail) = rest
                .split_once(')')
                .ok_or_else(|| format!("bad one_shot budget in {spec:?}: missing ')'"))?;
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| format!("bad one_shot budget {n:?} in {spec:?}"))?;
            let tail = tail
                .strip_prefix('_')
                .ok_or_else(|| format!("bad action {spec:?}: expected one_shot(N)_<action>"))?;
            (Some(n), tail)
        } else {
            return Err(format!(
                "bad action {spec:?}: expected one_shot_<action> or one_shot(N)_<action>"
            ));
        }
    } else {
        (None, spec)
    };
    let action = if base == "off" {
        Action::Off
    } else if base == "panic" {
        Action::Panic
    } else if let Some(ms) = base
        .strip_prefix("delay(")
        .and_then(|s| s.strip_suffix(')'))
    {
        Action::Delay(
            ms.trim()
                .parse()
                .map_err(|_| format!("bad delay milliseconds {ms:?} in {spec:?}"))?,
        )
    } else if let Some(msg) = base.strip_prefix("err(").and_then(|s| s.strip_suffix(')')) {
        Action::Err(msg.to_string())
    } else {
        return Err(format!(
            "unknown failpoint action {base:?} (off | panic | delay(ms) | err(msg))"
        ));
    };
    Ok((action, budget))
}

/// Hit a failpoint site. While nothing is armed anywhere in the process
/// this is one relaxed atomic load; when `site` is armed it executes the
/// configured action — panicking, sleeping, or returning `Err(msg)`.
///
/// Call sites that cannot propagate an error may `let _ = hit(...)` —
/// `panic` and `delay` still take effect through the side channel.
#[inline]
pub fn hit(site: &str) -> Result<(), String> {
    if STATE.load(Ordering::Relaxed) == STATE_OFF {
        return Ok(());
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: &str) -> Result<(), String> {
    if STATE.load(Ordering::Relaxed) == STATE_UNINIT {
        let _ = init_from_env();
        if STATE.load(Ordering::Relaxed) == STATE_OFF {
            return Ok(());
        }
    }
    let action = {
        let mut t = lock_table();
        let Some(s) = t.sites.get_mut(site) else {
            return Ok(());
        };
        if s.action == Action::Off || s.remaining == Some(0) {
            return Ok(());
        }
        if let Some(r) = &mut s.remaining {
            *r -= 1;
        }
        s.fires += 1;
        let action = s.action.clone();
        if s.remaining == Some(0) {
            s.action = Action::Off;
            refresh_state(&t);
        }
        action
    };
    // Execute outside the table lock: a panic or a long sleep must never
    // hold up hits on other sites.
    match action {
        Action::Off => Ok(()),
        Action::Panic => panic!("failpoint {site} fired: panic"),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Action::Err(msg) => Err(format!("failpoint {site} fired: {msg}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share one process-global table with each other (cargo
    // runs them on parallel threads), so every test uses its own site
    // names and never calls `reset()`.

    #[test]
    fn unarmed_site_is_a_no_op() {
        assert_eq!(hit("fp.t.unarmed"), Ok(()));
        assert_eq!(fires("fp.t.unarmed"), 0);
    }

    #[test]
    fn err_action_propagates_and_disarm_stops_it() {
        arm("fp.t.err", Action::Err("boom".to_string()));
        let e = hit("fp.t.err").unwrap_err();
        assert!(e.contains("fp.t.err") && e.contains("boom"), "{e}");
        assert_eq!(fires("fp.t.err"), 1);
        disarm("fp.t.err");
        assert_eq!(hit("fp.t.err"), Ok(()));
        assert_eq!(fires("fp.t.err"), 1, "disarmed hits must not count");
    }

    #[test]
    fn panic_action_panics() {
        arm("fp.t.panic", Action::Panic);
        let r = std::panic::catch_unwind(|| hit("fp.t.panic"));
        assert!(r.is_err(), "panic action must panic");
        disarm("fp.t.panic");
    }

    #[test]
    fn delay_action_sleeps() {
        arm("fp.t.delay", Action::Delay(20));
        let t0 = std::time::Instant::now();
        assert_eq!(hit("fp.t.delay"), Ok(()));
        assert!(t0.elapsed() >= Duration::from_millis(20));
        disarm("fp.t.delay");
    }

    #[test]
    fn one_shot_budget_fires_exactly_n_times() {
        arm_one_shot("fp.t.budget", Action::Err("x".to_string()), 2);
        assert!(hit("fp.t.budget").is_err());
        assert!(hit("fp.t.budget").is_err());
        assert_eq!(hit("fp.t.budget"), Ok(()), "budget exhausted");
        assert_eq!(fires("fp.t.budget"), 2);
        assert!(!armed().contains(&"fp.t.budget".to_string()));
    }

    #[test]
    fn one_shot_budget_is_race_free() {
        arm_one_shot("fp.t.race", Action::Err("x".to_string()), 3);
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(|| {
                (0..4).filter(|_| hit("fp.t.race").is_err()).count()
            }));
        }
        let fired: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(fired, 3, "exactly the budget fires under contention");
        assert_eq!(fires("fp.t.race"), 3);
    }

    #[test]
    fn configure_parses_the_full_grammar() {
        let n = configure(
            "fp.t.ca=panic; fp.t.cb=delay(7);fp.t.cc=err(msg with spaces);\
             fp.t.cd=one_shot(2)_err(q);fp.t.ce=off;",
        )
        .unwrap();
        assert_eq!(n, 4, "off entries are not counted as armed");
        let armed = armed();
        for site in ["fp.t.ca", "fp.t.cb", "fp.t.cc", "fp.t.cd"] {
            assert!(armed.contains(&site.to_string()), "{site} in {armed:?}");
        }
        assert!(!armed.contains(&"fp.t.ce".to_string()));
        assert!(hit("fp.t.cc").unwrap_err().contains("msg with spaces"));
        // Clean up the long-lived actions so `armed()` in other tests
        // stays meaningful.
        for site in ["fp.t.ca", "fp.t.cb", "fp.t.cc", "fp.t.cd"] {
            disarm(site);
        }
    }

    #[test]
    fn configure_rejects_malformed_specs() {
        assert!(configure("no-equals-sign").is_err());
        assert!(configure("s=explode").is_err());
        assert!(configure("s=delay(abc)").is_err());
        assert!(configure("s=one_shot(x)_panic").is_err());
        assert!(configure("=panic").is_err());
        // A bad entry must not arm the good ones before it.
        assert!(configure("fp.t.good=panic;bad").is_err());
        assert_eq!(hit("fp.t.good"), Ok(()));
    }
}
