//! The named-metric registry: counters, gauges, histograms.
//!
//! Registration (first lookup of a name) takes a write lock; after that
//! callers hold an `Arc` handle and touch only atomics. A process-wide
//! registry is available through [`crate::global`], but consumers that
//! need isolation (tests, multiple servers in one process) can own a
//! `Registry` instance directly — the exporters work on either.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{Histogram, HistogramSummary};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one. No-op while telemetry is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`. No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::disabled() {
            return;
        }
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, in-flight work).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Add `delta` (may be negative). No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::disabled() {
            return;
        }
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of every registered metric, ready to export.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// A set of named metrics. Cheap to share (`Arc<Registry>`); the maps are
/// only locked at registration and snapshot time.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return m.clone();
    }
    map.write()
        .unwrap_or_else(|e| e.into_inner())
        .entry(name.to_string())
        .or_default()
        .clone()
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, creating it on first use. Cache the
    /// returned handle — repeated lookups pay a read lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Copy every metric out (for the exporters in [`crate::export`]).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter("requests_total").get(), 3);
        assert_eq!(r.counter("other").get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("queue_depth");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn snapshot_is_name_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        r.gauge("g").set(7);
        r.histogram("h").record(0.5);
        let s = r.snapshot();
        assert_eq!(
            s.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(s.gauges, vec![("g".to_string(), 7)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].1.count, 1);
    }
}
