//! # resuformer-telemetry
//!
//! The one instrumentation substrate for the whole workspace: serving,
//! training, benches and the CLI all record into the same primitives and
//! export through the same three renderers.
//!
//! * **Metrics** ([`registry`]): named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s (4096 atomic buckets, exact min/max,
//!   ≤ ~0.8%-error p50/p95/p99 reconstruction, unit-tested against the
//!   exact nearest-rank reference in [`quantile`]).
//! * **Spans** ([`span`]): `let _g = telemetry::span("train.forward");`
//!   RAII guards with per-thread stacks that aggregate into a per-phase
//!   wall-time tree ([`span::snapshot`]).
//! * **Exporters** ([`export`]): a JSON snapshot, the Prometheus text
//!   exposition format, and a Chrome trace-event (`chrome://tracing`)
//!   writer fed by the opt-in capture buffer in [`trace`].
//! * **Failpoints** ([`failpoint`]): named fault-injection sites for
//!   deterministic chaos testing (`panic`, `delay(ms)`, `err(msg)`, with
//!   `one_shot(n)` fire budgets), configured programmatically or through
//!   `RESUFORMER_FAILPOINTS`; disarmed sites cost one relaxed load.
//!
//! Everything is `&self`/atomic and allocation-free on the hot path, and
//! the whole crate can be switched off at runtime ([`set_enabled`]) — a
//! disabled [`Histogram::record`] or [`span`] is one relaxed atomic load.
//!
//! This crate is deliberately **dependency-free** (std only): it sits
//! below every other workspace member, including tensor-adjacent hot
//! paths, and must never widen their build graphs.
//!
//! See `docs/OBSERVABILITY.md` for the metric and span naming taxonomy.

#![warn(missing_docs)]

pub mod export;
pub mod failpoint;
pub mod histogram;
pub mod quantile;
pub mod registry;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use histogram::{Histogram, HistogramSummary};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use span::{SpanGuard, SpanTree};

/// Recording is on unless explicitly switched off.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// The fast path every recording primitive checks first: one relaxed
/// atomic load. While this returns `true`, counters, histograms and spans
/// are no-ops.
#[inline]
pub fn disabled() -> bool {
    !ENABLED.load(Ordering::Relaxed)
}

/// Globally enable (`true`, the default) or disable (`false`) recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry. Consumers needing isolation (tests, several
/// servers in one process) can own a [`Registry`] instead.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Open a span named `name` (a string literal) on this thread; it closes
/// when the returned guard drops. See [`span::enter`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span::enter(name)
}

/// `span!("train.forward")` — macro form of [`span`], for symmetry with
/// the issue's `span!`-style API. Expands to [`span::enter`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable/disable gate itself is exercised in `tests/overhead.rs`,
    // a separate binary, because flipping the global flag would race the
    // recording unit tests running in parallel threads here.

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("lib.test_total").add(2);
        assert!(global().counter("lib.test_total").get() >= 2);
    }
}
