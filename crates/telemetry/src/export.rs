//! Exporters: JSON snapshot, Prometheus text, Chrome trace-event JSON.
//!
//! All three are hand-rolled writers — this crate sits below every other
//! workspace member and must stay dependency-free. The formats are small
//! and fully covered by golden-output tests.

use crate::registry::{Registry, RegistrySnapshot};
use crate::trace::TraceEvent;

/// Escape a string for a JSON string literal (no surrounding quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a finite JSON number (NaN/inf are not representable; emit 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render a registry snapshot as a stable JSON document:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,min,max,p50,p95,p99}}}`
/// with keys in name order.
pub fn json_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(name), v));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(name), v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_escape(name),
            h.count,
            json_num(h.sum),
            json_num(h.mean),
            json_num(h.min),
            json_num(h.max),
            json_num(h.p50),
            json_num(h.p95),
            json_num(h.p99),
        ));
    }
    out.push_str("}}");
    out
}

/// Convenience: snapshot `registry` and render it as JSON.
pub fn json(registry: &Registry) -> String {
    json_snapshot(&registry.snapshot())
}

/// Make a metric name legal for the Prometheus exposition format:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots become underscores).
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render a registry snapshot in the Prometheus text exposition format.
/// Counters and gauges map directly; histograms render as summaries
/// (`quantile` series plus `_sum`/`_count`), which is the right shape for
/// client-side quantile reconstruction.
pub fn prometheus_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", json_num(v)));
        }
        out.push_str(&format!("{n}_sum {}\n", json_num(h.sum)));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

/// Convenience: snapshot `registry` and render it as Prometheus text.
pub fn prometheus(registry: &Registry) -> String {
    prometheus_snapshot(&registry.snapshot())
}

/// Render span events as a Chrome trace-event file (the JSON-object form
/// with `traceEvents`, accepted by `chrome://tracing` and Perfetto).
/// Every span becomes a complete event (`"ph":"X"`).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            json_escape(e.name),
            e.tid,
            json_num(e.ts_us),
            json_num(e.dur_us),
        ));
    }
    out.push_str("]}");
    out
}

/// Drain the captured trace events and write them to `path` as a Chrome
/// trace-event file. Returns how many events were written.
pub fn write_chrome_trace(path: &str) -> Result<usize, String> {
    let events = crate::trace::take_events();
    let body = chrome_trace_json(&events);
    std::fs::write(path, body).map_err(|e| format!("writing trace to {path}: {e}"))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramSummary;

    fn sample_snapshot() -> RegistrySnapshot {
        RegistrySnapshot {
            counters: vec![
                ("serve.errors_total".to_string(), 2),
                ("serve.requests_total".to_string(), 40),
            ],
            gauges: vec![("serve.queue_depth".to_string(), 3)],
            histograms: vec![(
                "serve.request_seconds".to_string(),
                HistogramSummary {
                    count: 4,
                    sum: 0.5,
                    mean: 0.125,
                    min: 0.1,
                    max: 0.2,
                    p50: 0.125,
                    p95: 0.2,
                    p99: 0.2,
                },
            )],
        }
    }

    #[test]
    fn json_golden() {
        assert_eq!(
            json_snapshot(&sample_snapshot()),
            "{\"counters\":{\"serve.errors_total\":2,\"serve.requests_total\":40},\
             \"gauges\":{\"serve.queue_depth\":3},\
             \"histograms\":{\"serve.request_seconds\":{\"count\":4,\"sum\":0.5,\"mean\":0.125,\
             \"min\":0.1,\"max\":0.2,\"p50\":0.125,\"p95\":0.2,\"p99\":0.2}}}"
        );
    }

    #[test]
    fn prometheus_golden() {
        assert_eq!(
            prometheus_snapshot(&sample_snapshot()),
            "# TYPE serve_errors_total counter\n\
             serve_errors_total 2\n\
             # TYPE serve_requests_total counter\n\
             serve_requests_total 40\n\
             # TYPE serve_queue_depth gauge\n\
             serve_queue_depth 3\n\
             # TYPE serve_request_seconds summary\n\
             serve_request_seconds{quantile=\"0.5\"} 0.125\n\
             serve_request_seconds{quantile=\"0.95\"} 0.2\n\
             serve_request_seconds{quantile=\"0.99\"} 0.2\n\
             serve_request_seconds_sum 0.5\n\
             serve_request_seconds_count 4\n"
        );
    }

    #[test]
    fn chrome_trace_golden() {
        let events = vec![
            TraceEvent {
                name: "train.forward",
                tid: 2,
                ts_us: 10.5,
                dur_us: 100.0,
            },
            TraceEvent {
                name: "train.backward",
                tid: 2,
                ts_us: 111.0,
                dur_us: 250.25,
            },
        ];
        assert_eq!(
            chrome_trace_json(&events),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
             {\"name\":\"train.forward\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":10.5,\"dur\":100},\
             {\"name\":\"train.backward\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":111,\"dur\":250.25}]}"
        );
    }

    #[test]
    fn names_are_sanitized_for_prometheus() {
        assert_eq!(
            prometheus_name("serve.request_seconds"),
            "serve_request_seconds"
        );
        assert_eq!(prometheus_name("9lives"), "_lives");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn json_escaping_covers_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
