//! The reference quantile: nearest-rank over exact samples.
//!
//! This is the ground truth the log-bucketed [`crate::histogram`] is
//! unit-tested against, and the single percentile implementation the rest
//! of the workspace delegates to (e.g. `resuformer-eval`'s `Stopwatch`).

/// Nearest-rank percentile over **already sorted** samples, `p` in
/// `[0, 100]`. Returns `0.0` for an empty slice.
///
/// The rank convention is `round(p/100 * (n-1))` — the same interpolation
/// the workspace has used since the seed, so swapping callers onto this
/// function is behavior-preserving.
pub fn nearest_rank_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    sorted[rank.round() as usize]
}

/// Nearest-rank percentile over unsorted samples (sorts a copy).
pub fn nearest_rank(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    nearest_rank_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(nearest_rank(&[], 50.0), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(nearest_rank(&[7.0], p), 7.0);
        }
    }

    #[test]
    fn known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(nearest_rank_sorted(&samples, 0.0), 1.0);
        assert_eq!(nearest_rank_sorted(&samples, 100.0), 100.0);
        assert!((nearest_rank_sorted(&samples, 50.0) - 50.0).abs() <= 1.0);
        assert!((nearest_rank_sorted(&samples, 95.0) - 95.0).abs() <= 1.0);
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        assert_eq!(nearest_rank(&[9.0, 1.0, 5.0], 0.0), 1.0);
        assert_eq!(nearest_rank(&[9.0, 1.0, 5.0], 100.0), 9.0);
    }
}
