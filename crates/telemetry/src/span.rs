//! Hierarchical wall-time spans.
//!
//! `let _g = telemetry::span("train.forward");` opens a span that closes
//! when the guard drops (including during a panic unwind). Each thread
//! keeps its own implicit span stack (a single thread-local `Cell` holding
//! the current node id), and every `(parent, name)` pair is interned once
//! into a global arena — after interning, opening and closing a span is
//! two `Instant` reads, a read-locked hash lookup and two relaxed atomic
//! adds: no allocation on the hot path. The arena is capped at
//! [`MAX_SPAN_NODES`] distinct nodes; spans interned past the cap are
//! attributed to a `<overflow>` sentinel and counted in
//! [`OVERFLOW_COUNTER`] instead of growing memory without bound.
//!
//! Closed spans aggregate into a per-phase wall-time tree
//! ([`snapshot`] / [`SpanTree::render_table`]) and, when trace capture is
//! on ([`crate::trace::enable`]), also append a Chrome trace event so the
//! run can be opened as a flamegraph in `chrome://tracing`.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use crate::registry::Counter;
use crate::trace;

/// Most distinct `(parent, name)` nodes the arena will intern. Span names
/// are meant to be a small fixed taxonomy, but recursive call shapes (or a
/// name leak) can mint unbounded node *pairs*; past this cap, new pairs
/// all alias the [`OVERFLOW_NAME`] sentinel instead of growing the arena —
/// time is still accounted (loudly), memory stays bounded.
pub const MAX_SPAN_NODES: usize = 1024;

/// Name of the sentinel node that absorbs spans interned past
/// [`MAX_SPAN_NODES`]; shows up in [`snapshot`] trees like any other span.
pub const OVERFLOW_NAME: &str = "<overflow>";

/// Counter bumped once per span attributed to the overflow sentinel.
pub const OVERFLOW_COUNTER: &str = "telemetry.span_arena_overflow";

/// Aggregated totals for one interned span node.
#[derive(Default)]
struct SpanStats {
    total_ns: AtomicU64,
    count: AtomicU64,
}

struct SpanNode {
    name: &'static str,
    parent: u32,
    stats: Arc<SpanStats>,
}

#[derive(Default)]
struct SpanArena {
    /// Index 0 is the root sentinel.
    nodes: RwLock<Vec<SpanNode>>,
    index: RwLock<HashMap<(u32, &'static str), u32>>,
}

fn arena() -> &'static SpanArena {
    static ARENA: OnceLock<SpanArena> = OnceLock::new();
    ARENA.get_or_init(|| {
        let a = SpanArena::default();
        a.nodes.write().unwrap().push(SpanNode {
            name: "",
            parent: 0,
            stats: Arc::new(SpanStats::default()),
        });
        a
    })
}

thread_local! {
    /// The innermost open span on this thread (0 = none).
    static CURRENT: Cell<u32> = const { Cell::new(0) };
}

fn overflow_counter() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| crate::global().counter(OVERFLOW_COUNTER))
}

fn intern(parent: u32, name: &'static str) -> (u32, Arc<SpanStats>) {
    let a = arena();
    let key = (parent, name);
    if let Some(&id) = a.index.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
        let nodes = a.nodes.read().unwrap_or_else(|e| e.into_inner());
        return (id, nodes[id as usize].stats.clone());
    }
    let out = {
        let mut nodes = a.nodes.write().unwrap_or_else(|e| e.into_inner());
        let mut index = a.index.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = index.get(&key) {
            return (id, nodes[id as usize].stats.clone());
        }
        if nodes.len() >= MAX_SPAN_NODES {
            // Arena full: attribute this span to the root-level overflow
            // sentinel (created lazily — it may claim the one slot past
            // the cap) rather than growing, or worse, dropping the time.
            let sentinel = (0u32, OVERFLOW_NAME);
            let id = match index.get(&sentinel) {
                Some(&id) => id,
                None => {
                    let id = nodes.len() as u32;
                    nodes.push(SpanNode {
                        name: OVERFLOW_NAME,
                        parent: 0,
                        stats: Arc::new(SpanStats::default()),
                    });
                    index.insert(sentinel, id);
                    id
                }
            };
            Err((id, nodes[id as usize].stats.clone()))
        } else {
            let id = nodes.len() as u32;
            let stats = Arc::new(SpanStats::default());
            nodes.push(SpanNode {
                name,
                parent,
                stats: stats.clone(),
            });
            index.insert(key, id);
            Ok((id, stats))
        }
    };
    match out {
        Ok(interned) => interned,
        Err(overflowed) => {
            // Counter bump outside the arena locks.
            overflow_counter().inc();
            overflowed
        }
    }
}

/// RAII guard for an open span; the span closes when this drops.
pub struct SpanGuard {
    /// `None` when telemetry was disabled at entry (zero-cost close).
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    parent: u32,
    stats: Arc<SpanStats>,
    start: Instant,
}

/// Open a span named `name` as a child of the thread's current span.
///
/// Names must be `'static` (string literals) — that is what keeps the
/// hot path allocation-free. Use stable dotted names (`"train.forward"`);
/// see `docs/OBSERVABILITY.md` for the workspace taxonomy.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if crate::disabled() {
        return SpanGuard { live: None };
    }
    let parent = CURRENT.with(|c| c.get());
    // A stale id can survive a `reset()` on threads that were idle across
    // it; fall back to the root rather than attaching to a recycled slot.
    let parent = if (parent as usize)
        < arena()
            .nodes
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    {
        parent
    } else {
        0
    };
    let (id, stats) = intern(parent, name);
    CURRENT.with(|c| c.set(id));
    SpanGuard {
        live: Some(LiveSpan {
            name,
            parent,
            stats,
            start: Instant::now(),
        }),
    }
}

/// Time a closure inside a span; returns the closure's output.
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _g = enter(name);
    f()
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed = live.start.elapsed();
        live.stats
            .total_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        live.stats.count.fetch_add(1, Ordering::Relaxed);
        CURRENT.with(|c| c.set(live.parent));
        trace::record_span(live.name, live.start, elapsed);
    }
}

/// One aggregated node of the span tree.
#[derive(Clone, Debug)]
pub struct SpanTreeNode {
    /// The span name as passed to [`enter`].
    pub name: String,
    /// Total wall-clock seconds spent inside this node.
    pub total_seconds: f64,
    /// Times the span was opened and closed.
    pub count: u64,
    /// Child spans, sorted by descending total time.
    pub children: Vec<SpanTreeNode>,
}

/// The aggregated per-phase wall-time tree.
#[derive(Clone, Debug, Default)]
pub struct SpanTree {
    /// Top-level spans (opened with no enclosing span), sorted by
    /// descending total time.
    pub roots: Vec<SpanTreeNode>,
}

impl SpanTree {
    /// Whether any span has closed.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total `(seconds, count)` across every node named `name`, anywhere
    /// in the tree (a phase may appear under several parents).
    pub fn total(&self, name: &str) -> (f64, u64) {
        fn walk(nodes: &[SpanTreeNode], name: &str, acc: &mut (f64, u64)) {
            for n in nodes {
                if n.name == name {
                    acc.0 += n.total_seconds;
                    acc.1 += n.count;
                }
                walk(&n.children, name, acc);
            }
        }
        let mut acc = (0.0, 0);
        walk(&self.roots, name, &mut acc);
        acc
    }

    /// Render the tree as an aligned table: name (indented by depth),
    /// calls, total seconds, mean milliseconds, share of parent.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} | {:>8} | {:>9} | {:>9} | {:>8}\n",
            "phase", "calls", "total s", "mean ms", "% parent"
        ));
        out.push_str(&"-".repeat(74));
        out.push('\n');
        let total: f64 = self.roots.iter().map(|r| r.total_seconds).sum();
        fn walk(out: &mut String, nodes: &[SpanTreeNode], depth: usize, parent_total: f64) {
            for n in nodes {
                let mean_ms = if n.count == 0 {
                    0.0
                } else {
                    n.total_seconds * 1e3 / n.count as f64
                };
                let share = if parent_total > 0.0 {
                    100.0 * n.total_seconds / parent_total
                } else {
                    0.0
                };
                let label = format!("{}{}", "  ".repeat(depth), n.name);
                out.push_str(&format!(
                    "{:<28} | {:>8} | {:>9.3} | {:>9.3} | {:>7.1}%\n",
                    label, n.count, n.total_seconds, mean_ms, share
                ));
                walk(out, &n.children, depth + 1, n.total_seconds);
            }
        }
        walk(&mut out, &self.roots, 0, total);
        out
    }
}

/// Aggregate every closed span into a [`SpanTree`].
pub fn snapshot() -> SpanTree {
    let a = arena();
    let nodes = a.nodes.read().unwrap_or_else(|e| e.into_inner());
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    for (id, node) in nodes.iter().enumerate().skip(1) {
        children[node.parent as usize].push(id as u32);
    }
    fn build(nodes: &[SpanNode], children: &[Vec<u32>], id: u32) -> SpanTreeNode {
        let node = &nodes[id as usize];
        let mut kids: Vec<SpanTreeNode> = children[id as usize]
            .iter()
            .map(|&c| build(nodes, children, c))
            .collect();
        kids.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
        SpanTreeNode {
            name: node.name.to_string(),
            total_seconds: node.stats.total_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            count: node.stats.count.load(Ordering::Relaxed),
            children: kids,
        }
    }
    let mut roots: Vec<SpanTreeNode> = children[0]
        .iter()
        .map(|&c| build(&nodes, &children, c))
        .collect();
    roots.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
    SpanTree { roots }
}

/// Forget every interned span and its totals. Intended for between-run
/// isolation (e.g. a scaling driver measuring one configuration at a
/// time); spans still open while this runs keep recording into detached
/// stats and simply stop being reported.
pub fn reset() {
    let a = arena();
    let mut nodes = a.nodes.write().unwrap_or_else(|e| e.into_inner());
    let mut index = a.index.write().unwrap_or_else(|e| e.into_inner());
    nodes.truncate(1);
    index.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share one global arena with every other test in this
    /// binary, so they use unique names and assert on those only.
    #[test]
    fn nested_spans_build_a_tree() {
        {
            let _outer = enter("t.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            for _ in 0..3 {
                let _inner = enter("t.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let tree = snapshot();
        let (outer_s, outer_n) = tree.total("t.outer");
        let (inner_s, inner_n) = tree.total("t.inner");
        assert_eq!(outer_n, 1);
        assert_eq!(inner_n, 3);
        assert!(outer_s >= inner_s, "parent {outer_s} must cover {inner_s}");
        assert!(inner_s > 0.0);

        // The inner span must be nested under the outer one, not a root.
        fn find<'a>(nodes: &'a [SpanTreeNode], name: &str) -> Option<&'a SpanTreeNode> {
            nodes.iter().find(|n| n.name == name)
        }
        let outer = find(&tree.roots, "t.outer").expect("outer is a root");
        assert!(find(&outer.children, "t.inner").is_some(), "inner nests");
        let table = tree.render_table();
        assert!(table.contains("t.outer"), "{table}");
        assert!(table.contains("  t.inner"), "indented: {table}");
    }

    #[test]
    fn panic_unwind_closes_the_span_and_restores_the_stack() {
        let result = std::panic::catch_unwind(|| {
            let _g = enter("t.panics");
            panic!("boom");
        });
        assert!(result.is_err());
        let (_, n) = snapshot().total("t.panics");
        assert_eq!(n, 1, "unwound span must still close");
        // The stack must be back at the root: a new span is a root span.
        {
            let _g = enter("t.after_panic");
        }
        let tree = snapshot();
        assert!(
            tree.roots.iter().any(|r| r.name == "t.after_panic"),
            "stack not restored: {tree:?}"
        );
    }

    #[test]
    fn time_returns_the_closure_output() {
        assert_eq!(time("t.time", || 41 + 1), 42);
        let (_, n) = snapshot().total("t.time");
        assert!(n >= 1);
    }
}
