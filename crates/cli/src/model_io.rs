//! Self-contained model persistence: the classifier's weight bytes plus a
//! JSON header carrying the tokenizer vocabulary and configuration, so a
//! saved model file can be loaded without the training corpus.

use std::io::{Read, Write};

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::block_classifier::BlockClassifier;
use resuformer::config::ModelConfig;
use resuformer::encoder::HierarchicalEncoder;
use resuformer_nn::Module;
use resuformer_text::{Vocab, WordPiece};
use serde::{Deserialize, Serialize};

const MAGIC: &[u8; 8] = b"RESUCLI1";

/// Serializable model configuration (mirrors [`ModelConfig`]).
#[derive(Serialize, Deserialize)]
struct ConfigHeader {
    vocab_size: usize,
    hidden: usize,
    sent_layers: usize,
    doc_layers: usize,
    heads: usize,
    ff: usize,
    max_sent_tokens: usize,
    max_doc_sentences: usize,
    visual_dim: usize,
    coord_buckets: usize,
    max_pages: usize,
    init_seed: u64,
    vocab: Vec<String>,
}

impl ConfigHeader {
    fn from_config(config: &ModelConfig, wp: &WordPiece, init_seed: u64) -> Self {
        ConfigHeader {
            vocab_size: config.vocab_size,
            hidden: config.hidden,
            sent_layers: config.sent_layers,
            doc_layers: config.doc_layers,
            heads: config.heads,
            ff: config.ff,
            max_sent_tokens: config.max_sent_tokens,
            max_doc_sentences: config.max_doc_sentences,
            visual_dim: config.visual_dim,
            coord_buckets: config.coord_buckets,
            max_pages: config.max_pages,
            init_seed,
            vocab: (0..wp.vocab.len()).map(|i| wp.vocab.token(i).to_string()).collect(),
        }
    }

    fn to_config(&self) -> ModelConfig {
        ModelConfig {
            vocab_size: self.vocab_size,
            hidden: self.hidden,
            sent_layers: self.sent_layers,
            doc_layers: self.doc_layers,
            heads: self.heads,
            ff: self.ff,
            dropout: 0.0,
            max_sent_tokens: self.max_sent_tokens,
            max_doc_sentences: self.max_doc_sentences,
            visual_dim: self.visual_dim,
            coord_buckets: self.coord_buckets,
            max_pages: self.max_pages,
        }
    }

    fn to_wordpiece(&self) -> WordPiece {
        let mut vocab = Vocab::new();
        for t in &self.vocab {
            vocab.add(t);
        }
        WordPiece::from_vocab(vocab)
    }
}

/// Save a trained classifier + tokenizer to a file.
pub fn save_model(
    path: &str,
    classifier: &BlockClassifier,
    config: &ModelConfig,
    wp: &WordPiece,
    init_seed: u64,
) -> Result<(), String> {
    let header = serde_json::to_vec(&ConfigHeader::from_config(config, wp, init_seed))
        .map_err(|e| format!("serializing header: {e}"))?;
    let weights = classifier.save_bytes();
    let mut f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    f.write_all(MAGIC).map_err(|e| e.to_string())?;
    f.write_all(&(header.len() as u64).to_le_bytes()).map_err(|e| e.to_string())?;
    f.write_all(&header).map_err(|e| e.to_string())?;
    f.write_all(&weights).map_err(|e| e.to_string())?;
    Ok(())
}

/// Load a classifier + tokenizer from a file saved by [`save_model`].
pub fn load_model(path: &str) -> Result<(BlockClassifier, ModelConfig, WordPiece), String> {
    let mut f = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).map_err(|e| e.to_string())?;
    if &magic != MAGIC {
        return Err(format!("{path} is not a resuformer model file"));
    }
    let mut len_bytes = [0u8; 8];
    f.read_exact(&mut len_bytes).map_err(|e| e.to_string())?;
    let header_len = u64::from_le_bytes(len_bytes) as usize;
    let mut header_buf = vec![0u8; header_len];
    f.read_exact(&mut header_buf).map_err(|e| e.to_string())?;
    let header: ConfigHeader =
        serde_json::from_slice(&header_buf).map_err(|e| format!("parsing header: {e}"))?;
    let mut weights = Vec::new();
    f.read_to_end(&mut weights).map_err(|e| e.to_string())?;

    let config = header.to_config();
    let wp = header.to_wordpiece();
    // Rebuild the architecture with the recorded init seed (shapes must
    // match exactly), then overwrite the weights.
    let mut rng = ChaCha8Rng::seed_from_u64(header.init_seed);
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    classifier
        .load_bytes(&weights)
        .map_err(|e| format!("loading weights: {e}"))?;
    Ok((classifier, config, wp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer::data::build_tokenizer;
    use resuformer::data::prepare_document;
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};

    #[test]
    fn save_load_round_trips_predictions() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let resume = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(resume.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let init_seed = 99;
        let mut mrng = ChaCha8Rng::seed_from_u64(init_seed);
        let encoder = HierarchicalEncoder::new(&mut mrng, &config);
        let classifier = BlockClassifier::new(&mut mrng, &config, encoder);

        let dir = std::env::temp_dir().join("resuformer_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        let path = path.to_str().unwrap();
        save_model(path, &classifier, &config, &wp, init_seed).unwrap();

        let (loaded, loaded_config, loaded_wp) = load_model(path).unwrap();
        assert_eq!(loaded_config.hidden, config.hidden);
        assert_eq!(loaded_wp.vocab.len(), wp.vocab.len());

        let (input, _) = prepare_document(&resume.doc, &wp, &config);
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            classifier.predict(&input, &mut r1),
            loaded.predict(&input, &mut r2),
            "loaded model must predict identically"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("resuformer_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"not a model").unwrap();
        assert!(load_model(path.to_str().unwrap()).is_err());
        std::fs::remove_file(path).ok();
    }
}
