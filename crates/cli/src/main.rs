//! `resuformer` — the command-line interface.
//!
//! ```text
//! resuformer-cli generate --count 3 --out resumes.json [--scale paper] [--seed 7]
//! resuformer-cli train    --data resumes.json --model model.bin [--epochs 8] [--ner-epochs 4]
//! resuformer-cli pretrain --data resumes.json --model ckpt.bin [--workers 4] [--resume ckpt.bin]
//! resuformer-cli parse    --data resumes.json --model model.bin [--index 0 | --all]
//! resuformer-cli serve    --model model.bin [--port 8080] [--workers 2]
//! resuformer-cli rules    --data resumes.json [--index 0]
//! resuformer-cli stats    --data resumes.json
//! ```
//!
//! Documents travel as JSON (`LabeledResume` with full ground truth when
//! generated here; only the `doc` field is consulted when parsing). Models
//! persist through `resuformer::model_io`'s versioned byte format — a JSON
//! header embedding the tokenizer vocabulary plus the weight bytes, with
//! an optional NER stage — so a saved model is self-contained.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let opts = match commands::Options::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(&opts),
        "train" => commands::train(&opts),
        "pretrain" => commands::pretrain(&opts),
        "parse" => commands::parse(&opts),
        "serve" => commands::serve(&opts),
        "rules" => commands::rules(&opts),
        "stats" => commands::stats(&opts),
        "inspect" => commands::inspect(&opts),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "resuformer — semantic structure understanding for resumes

USAGE:
    resuformer <COMMAND> [OPTIONS]

COMMANDS:
    generate   generate synthetic resumes to --out (JSON)
    train      train a block classifier (and optionally the NER stage)
               on --data, save to --model
    pretrain   data-parallel three-objective pre-training on --data,
               checkpointing to --model (resumable with --resume)
    parse      parse a document from --data with a trained --model
    serve      run the HTTP micro-batching inference server on --model
    rules      rule-based entity extraction (no model needed)
    stats      corpus statistics of --data
    inspect    confusion matrix of a trained --model on --data

OPTIONS:
    --data <FILE>       input resumes JSON
    --out <FILE>        output file
    --model <FILE>      model file (train: write; parse/serve: read)
    --count <N>         number of resumes to generate [default: 3]
    --index <N>         document index within --data [default: 0]
    --all               parse: batch-parse every document in --data
    --epochs <N>        classifier training epochs [default: 8]
    --ner-epochs <N>    also train the NER stage for N epochs [default: 0]
    --scale <S>         smoke|paper generation profile [default: smoke]
    --seed <N>          RNG seed [default: 42]
    --host <ADDR>       serve: bind host [default: 127.0.0.1]
    --port <N>          serve: bind port [default: 8080]
    --workers <N>       serve/pretrain: worker threads [default: #cores, max 4]
    --max-batch <N>     serve: largest micro-batch [default: 8]
    --max-wait-ms <N>   serve: batching window in ms [default: 20]
    --max-queue <N>     serve: bound on the request queue; a full queue
                        answers 429 + Retry-After [default: 0 = auto,
                        max-batch x workers x 4]
    --request-timeout-ms <N>
                        serve: per-request deadline; expired requests are
                        shed with 504 [default: 60000]
    --sync-every <K>    pretrain: docs per worker between parameter
                        averagings [default: 8]
    --checkpoint-every <K>
                        pretrain: checkpoint every K epochs [default: 1]
    --resume <CKPT>     pretrain: continue from a checkpoint file
    --sync-mode <M>     pretrain: barrier | stale:<K> — bounded-staleness
                        averaging with at most K rounds of worker lead
                        [default: barrier]
    --trace-out <FILE>  pretrain/serve: capture telemetry spans and write
                        a Chrome trace-event JSON (chrome://tracing) on exit
    --trace-capacity <N>
                        ring-buffer capacity for --trace-out (oldest events
                        are dropped past it) [default: 262144]
    --metrics-out <FILE>
                        pretrain/serve: write Prometheus-format metrics on
                        exit (includes telemetry_trace_dropped_events)"
}
