//! CLI subcommand implementations.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::annotate::{build_ner_dataset, extract_blocks};
use resuformer::block_classifier::{BlockClassifier, FinetuneConfig};
use resuformer::config::ModelConfig;
use resuformer::data::{
    block_tag_scheme, build_tokenizer, entity_tag_scheme, prepare_document, sentence_iob_labels,
    DocumentInput,
};
use resuformer::encoder::HierarchicalEncoder;
use resuformer::model_io::{load_bundle, load_model, save_bundle, save_model, NerArtifacts};
use resuformer::ner::{NerConfig, NerModel};
use resuformer::pipeline::{rule_based_entities, segment_blocks};
use resuformer_datagen::corpus::CorpusStats;
use resuformer_datagen::generator::{generate_resume, LabeledResume};
use resuformer_datagen::{BlockType, Dictionaries, DictionaryConfig, Scale};
use resuformer_eval::Stopwatch;
use resuformer_nn::{Adam, Module};
use resuformer_serve::{ModelRegistry, ServeConfig, Server};
use resuformer_text::Vocab;

/// Parsed CLI options (shared by all subcommands).
pub struct Options {
    data: Option<String>,
    out: Option<String>,
    model: Option<String>,
    count: usize,
    index: usize,
    all: bool,
    epochs: usize,
    ner_epochs: usize,
    scale: Scale,
    seed: u64,
    host: String,
    port: u16,
    workers: usize,
    max_batch: usize,
    max_wait_ms: u64,
    max_queue: usize,
    request_timeout_ms: u64,
    sync_every: usize,
    checkpoint_every: usize,
    resume: Option<String>,
    trace_out: Option<String>,
    sync_mode: resuformer::config::SyncMode,
    trace_capacity: Option<usize>,
    metrics_out: Option<String>,
}

impl Options {
    /// Parse `--flag value` pairs (plus the boolean `--all`).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            data: None,
            out: None,
            model: None,
            count: 3,
            index: 0,
            all: false,
            epochs: 8,
            ner_epochs: 0,
            scale: Scale::Smoke,
            seed: 42,
            host: "127.0.0.1".to_string(),
            port: 8080,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            max_batch: 8,
            max_wait_ms: 20,
            max_queue: 0,
            request_timeout_ms: 60_000,
            sync_every: 8,
            checkpoint_every: 1,
            resume: None,
            trace_out: None,
            sync_mode: resuformer::config::SyncMode::Barrier,
            trace_capacity: None,
            metrics_out: None,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if flag == "--all" {
                o.all = true;
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))?;
            match flag.as_str() {
                "--data" => o.data = Some(value.clone()),
                "--out" => o.out = Some(value.clone()),
                "--model" => o.model = Some(value.clone()),
                "--count" => o.count = value.parse().map_err(|_| "bad --count")?,
                "--index" => o.index = value.parse().map_err(|_| "bad --index")?,
                "--epochs" => o.epochs = value.parse().map_err(|_| "bad --epochs")?,
                "--ner-epochs" => o.ner_epochs = value.parse().map_err(|_| "bad --ner-epochs")?,
                "--seed" => o.seed = value.parse().map_err(|_| "bad --seed")?,
                "--host" => o.host = value.clone(),
                "--port" => o.port = value.parse().map_err(|_| "bad --port")?,
                "--workers" => o.workers = value.parse().map_err(|_| "bad --workers")?,
                "--max-batch" => o.max_batch = value.parse().map_err(|_| "bad --max-batch")?,
                "--max-wait-ms" => {
                    o.max_wait_ms = value.parse().map_err(|_| "bad --max-wait-ms")?
                }
                "--max-queue" => o.max_queue = value.parse().map_err(|_| "bad --max-queue")?,
                "--request-timeout-ms" => {
                    o.request_timeout_ms = value.parse().map_err(|_| "bad --request-timeout-ms")?
                }
                "--sync-every" => o.sync_every = value.parse().map_err(|_| "bad --sync-every")?,
                "--checkpoint-every" => {
                    o.checkpoint_every = value.parse().map_err(|_| "bad --checkpoint-every")?
                }
                "--resume" => o.resume = Some(value.clone()),
                "--trace-out" => o.trace_out = Some(value.clone()),
                "--sync-mode" => o.sync_mode = resuformer::config::SyncMode::parse(value)?,
                "--trace-capacity" => {
                    o.trace_capacity = Some(value.parse().map_err(|_| "bad --trace-capacity")?)
                }
                "--metrics-out" => o.metrics_out = Some(value.clone()),
                "--scale" => {
                    o.scale = match value.as_str() {
                        "smoke" => Scale::Smoke,
                        "paper" => Scale::Paper,
                        other => return Err(format!("unknown scale {other}")),
                    }
                }
                other => return Err(format!("unknown flag {other}")),
            }
            i += 2;
        }
        Ok(o)
    }

    fn data(&self) -> Result<&str, String> {
        self.data
            .as_deref()
            .ok_or_else(|| "--data is required".to_string())
    }

    fn load_resumes(&self) -> Result<Vec<LabeledResume>, String> {
        let path = self.data()?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
    }

    fn pick<'a>(&self, resumes: &'a [LabeledResume]) -> Result<&'a LabeledResume, String> {
        resumes.get(self.index).ok_or_else(|| {
            format!(
                "--index {} out of range ({} documents)",
                self.index,
                resumes.len()
            )
        })
    }
}

/// `generate`: write `--count` synthetic resumes to `--out`.
pub fn generate(o: &Options) -> Result<(), String> {
    let out = o.out.as_deref().ok_or("--out is required")?;
    let cfg = o.scale.generator_config();
    let resumes: Vec<LabeledResume> = (0..o.count)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(o.seed.wrapping_add(i as u64));
            generate_resume(&mut rng, &cfg)
        })
        .collect();
    let json = serde_json::to_string(&resumes).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} resumes to {out}", resumes.len());
    Ok(())
}

/// `train`: fine-tune a block classifier on `--data`, save to `--model`.
pub fn train(o: &Options) -> Result<(), String> {
    let model_path = o.model.as_deref().ok_or("--model is required")?;
    let resumes = o.load_resumes()?;
    if resumes.is_empty() {
        return Err("no documents in --data".into());
    }
    let wp = build_tokenizer(
        resumes
            .iter()
            .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
        1,
    );
    let config = ModelConfig::tiny(wp.vocab.len());
    let scheme = block_tag_scheme();
    let prepared: Vec<(DocumentInput, Vec<usize>)> = resumes
        .iter()
        .map(|r| {
            let (input, sentences) = prepare_document(&r.doc, &wp, &config);
            let labels = sentence_iob_labels(r, &sentences, &scheme);
            (input, labels)
        })
        .collect();

    let init_seed = o.seed;
    let mut rng = ChaCha8Rng::seed_from_u64(init_seed);
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let pairs: Vec<(&DocumentInput, &[usize])> =
        prepared.iter().map(|(d, l)| (d, l.as_slice())).collect();
    let trace = classifier.finetune(
        &pairs,
        &FinetuneConfig {
            epochs: o.epochs,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "trained on {} documents for {} epochs (loss {:.2} -> {:.2})",
        prepared.len(),
        o.epochs,
        trace.first().copied().unwrap_or(0.0),
        trace.last().copied().unwrap_or(0.0)
    );
    if o.ner_epochs > 0 {
        // Stage 2: distantly-supervised NER (Algorithm 2's teacher pass),
        // bundled into the same file so `serve` gets neural extraction.
        let word_vocab = Vocab::build(
            resumes
                .iter()
                .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
            1,
        );
        let dicts = Dictionaries::build(DictionaryConfig::default());
        let entity_scheme = entity_tag_scheme();
        let dataset = build_ner_dataset(&resumes, &dicts, &word_vocab, &entity_scheme, false);
        let ner_seed = o.seed ^ 0x4E52;
        let mut nrng = ChaCha8Rng::seed_from_u64(ner_seed);
        let ner = NerModel::new(&mut nrng, NerConfig::tiny(word_vocab.len()));
        let mut opt = Adam::new(ner.parameters(), 2e-3, 0.0);
        for _ in 0..o.ner_epochs {
            for block in &dataset {
                if block.token_ids.is_empty() {
                    continue;
                }
                opt.zero_grad();
                let loss = ner.loss(&block.token_ids, &block.distant_labels, &mut nrng);
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
        println!(
            "trained NER stage on {} blocks for {} epochs",
            dataset.len(),
            o.ner_epochs
        );
        let artifacts = NerArtifacts {
            model: &ner,
            config: ner.config(),
            vocab: &word_vocab,
            init_seed: ner_seed,
        };
        save_bundle(
            model_path,
            &classifier,
            &config,
            &wp,
            init_seed,
            Some(&artifacts),
        )?;
    } else {
        save_model(model_path, &classifier, &config, &wp, init_seed)?;
    }
    println!("saved model to {model_path}");
    Ok(())
}

/// `pretrain`: data-parallel three-objective pre-training (Eq. 7) over
/// `--data`, checkpointing to `--model` every `--checkpoint-every` epochs.
/// `--resume <ckpt>` continues an interrupted run bit-identically.
pub fn pretrain(o: &Options) -> Result<(), String> {
    use resuformer::config::PretrainConfig;
    use resuformer_train::{PhaseBreakdown, TrainConfig, Trainer};

    let model_path = o.model.as_deref().ok_or("--model is required")?;
    if o.trace_out.is_some() {
        enable_trace(o);
    }
    let resumes = o.load_resumes()?;
    if resumes.is_empty() {
        return Err("no documents in --data".into());
    }

    let (mut trainer, workers, sync) = match &o.resume {
        Some(ckpt_path) => {
            let ckpt = resuformer::model_io::load_checkpoint(ckpt_path)?;
            let workers = ckpt.meta.workers;
            let sync = ckpt.meta.sync;
            println!(
                "resuming from {ckpt_path}: epoch {}/{} ({} workers, sync {})",
                ckpt.meta.next_epoch, ckpt.meta.total_epochs, workers, sync
            );
            if o.workers != workers {
                println!("note: optimizer state is per-worker; using {workers} workers");
            }
            if o.sync_mode != sync {
                println!("note: sync mode is part of the run; using {sync}");
            }
            (Trainer::from_checkpoint(ckpt), workers, sync)
        }
        None => {
            let wp = build_tokenizer(
                resumes
                    .iter()
                    .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
                1,
            );
            let config = ModelConfig::tiny(wp.vocab.len());
            let trainer = Trainer::new(wp, config, PretrainConfig::default(), o.seed, o.seed ^ 1);
            (trainer, o.workers, o.sync_mode)
        }
    };

    let docs: Vec<DocumentInput> = resumes
        .iter()
        .map(|r| prepare_document(&r.doc, trainer.wordpiece(), trainer.model_config()).0)
        .collect();
    if trainer.next_epoch() >= o.epochs {
        println!(
            "checkpoint already covers {} of {} epochs; nothing to do",
            trainer.next_epoch(),
            o.epochs
        );
        return Ok(());
    }

    let trace = trainer.train(
        &docs,
        &TrainConfig {
            workers,
            epochs: o.epochs,
            sync_every: o.sync_every,
            checkpoint_every: o.checkpoint_every,
            checkpoint_path: Some(model_path.to_string()),
            sync,
        },
        |m| println!("{}", m.render()),
    )?;
    let tokens: u64 = trace.iter().map(|m| m.tokens).sum();
    let wall: f64 = trace.iter().map(|m| m.wall_seconds).sum();
    println!(
        "pre-trained on {} documents for {} epochs with {} workers, sync {} ({:.0} tok/s overall)",
        docs.len(),
        trace.len(),
        workers,
        sync,
        tokens as f64 / wall.max(1e-9)
    );
    println!("saved checkpoint to {model_path}");
    let breakdown = PhaseBreakdown::capture();
    if breakdown.accounted_seconds() > 0.0 {
        println!("\nper-phase breakdown (thread-seconds sum across workers):");
        print!("{}", breakdown.render_table());
    }
    write_trace_and_metrics(o)
}

/// Turn on Chrome-trace capture, honoring `--trace-capacity`.
fn enable_trace(o: &Options) {
    match o.trace_capacity {
        Some(cap) => resuformer_telemetry::trace::enable_with_capacity(cap),
        None => resuformer_telemetry::trace::enable(),
    }
}

/// Shared `--trace-out` / `--metrics-out` epilogue for pretrain and serve.
fn write_trace_and_metrics(o: &Options) -> Result<(), String> {
    if let Some(path) = &o.trace_out {
        let events = resuformer_telemetry::export::write_chrome_trace(path)?;
        println!("wrote {events} trace events to {path} (open in chrome://tracing)");
        let dropped = resuformer_telemetry::trace::dropped_events();
        if dropped > 0 {
            println!("note: ring buffer dropped {dropped} older events (trace is the tail)");
        }
    }
    if let Some(path) = &o.metrics_out {
        let text = resuformer_telemetry::export::prometheus(resuformer_telemetry::global());
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote Prometheus metrics to {path}");
    }
    Ok(())
}

/// `parse`: segment a document with a trained model; with `--all`, batch
/// parse the whole file through the end-to-end pipeline.
pub fn parse(o: &Options) -> Result<(), String> {
    let model_path = o.model.as_deref().ok_or("--model is required")?;
    let resumes = o.load_resumes()?;
    if o.all {
        return parse_all(o, &resumes, model_path);
    }
    let target = o.pick(&resumes)?;
    let (classifier, config, wp) = load_model(model_path)?;
    let scheme = block_tag_scheme();

    let t0 = std::time::Instant::now();
    let (input, sentences) = prepare_document(&target.doc, &wp, &config);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let labels = classifier.predict(&input, &mut rng);
    let secs = t0.elapsed().as_secs_f64();

    println!(
        "document {}: {} tokens / {} sentences / {} page(s), classified in {:.3}s",
        o.index,
        target.doc.num_tokens(),
        sentences.len(),
        target.doc.num_pages(),
        secs
    );
    for (start, end, class) in segment_blocks(&scheme, &labels) {
        let words: Vec<String> = sentences[start..end]
            .iter()
            .flat_map(|s| {
                s.token_indices
                    .iter()
                    .map(|&i| target.doc.tokens[i].text.clone())
            })
            .take(12)
            .collect();
        println!(
            "  [{:8}] sentences {start:3}..{end:3}: {} ...",
            BlockType::ALL[class].name(),
            words.join(" ")
        );
    }
    Ok(())
}

/// `parse --all`: run the full parser over every document in `--data`
/// through the batched entry point, with a per-document latency summary.
fn parse_all(o: &Options, resumes: &[LabeledResume], model_path: &str) -> Result<(), String> {
    if resumes.is_empty() {
        return Err("no documents in --data".into());
    }
    let bundle = load_bundle(model_path)?;
    let neural_ner = bundle.ner.is_some();
    let parser = bundle.into_parser();
    let docs: Vec<resuformer_doc::Document> = resumes.iter().map(|r| r.doc.clone()).collect();

    let t0 = std::time::Instant::now();
    let parsed = parser.parse_documents(&docs, o.seed);
    let total = t0.elapsed().as_secs_f64();

    let mut sw = Stopwatch::new();
    for (i, p) in parsed.iter().enumerate() {
        let seconds = p.classify_seconds + p.extract_seconds;
        sw.record(seconds);
        let entities: usize = p.blocks.iter().map(|b| b.entities.len()).sum();
        println!(
            "  doc {i:3}: {:2} blocks, {:3} entities ({:.3}s)",
            p.blocks.len(),
            entities,
            seconds
        );
    }
    println!(
        "parsed {} documents in {:.2}s with {} entity extraction",
        docs.len(),
        total,
        if neural_ner { "neural" } else { "rule-based" }
    );
    println!(
        "per-document seconds: mean {:.3} | p50 {:.3} | p95 {:.3} | p99 {:.3}",
        sw.mean_seconds(),
        sw.p50_seconds(),
        sw.p95_seconds(),
        sw.p99_seconds()
    );
    Ok(())
}

/// `serve`: run the micro-batching HTTP inference server until SIGINT.
pub fn serve(o: &Options) -> Result<(), String> {
    let model_path = o.model.as_deref().ok_or("--model is required")?;
    if o.trace_out.is_some() {
        enable_trace(o);
    }
    resuformer_serve::install_sigint_handler();
    let registry = std::sync::Arc::new(ModelRegistry::load(model_path)?);
    println!(
        "loaded {model_path}: vocab {}, hidden {}, entity extraction: {}",
        registry.info.vocab_size,
        registry.info.hidden,
        if registry.info.has_ner {
            "neural"
        } else {
            "rule-based"
        }
    );
    let config = ServeConfig {
        addr: format!("{}:{}", o.host, o.port),
        max_batch: o.max_batch,
        max_wait_ms: o.max_wait_ms,
        workers: o.workers,
        max_queue: o.max_queue,
        request_timeout_ms: o.request_timeout_ms,
    };
    let queue_capacity = config.queue_capacity();
    let request_timeout_ms = o.request_timeout_ms;
    let server = Server::start(registry, config)?;
    println!(
        "listening on http://{} ({} workers, max batch {}, window {}ms, queue {}, timeout {}ms)",
        server.local_addr(),
        o.workers,
        o.max_batch,
        o.max_wait_ms,
        queue_capacity,
        request_timeout_ms
    );
    println!("  GET  /healthz             model metadata");
    println!("  GET  /metrics             counters and latency percentiles (JSON)");
    println!("  GET  /metrics/prometheus  same counters, Prometheus text format");
    println!("  POST /parse               Document JSON -> ParsedResume JSON");
    println!("  POST /parse_batch         [Document] -> [ParsedResume]");
    println!("press Ctrl-C to drain in-flight requests and stop");
    while !resuformer_serve::sigint_received() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("\nSIGINT received, draining...");
    let metrics = server.metrics();
    server.shutdown();
    let s = metrics.snapshot();
    println!(
        "served {} requests in {} batches (mean batch size {:.2}, {} errors)",
        s.requests, s.batches, s.mean_batch_size, s.errors
    );
    write_trace_and_metrics(o)
}

/// `rules`: rule-based entity extraction over the gold block segmentation.
pub fn rules(o: &Options) -> Result<(), String> {
    let resumes = o.load_resumes()?;
    let target = o.pick(&resumes)?;
    let dicts = Dictionaries::build(DictionaryConfig::default());
    println!("document {} — rule-based extraction:", o.index);
    for (block_type, token_idx) in extract_blocks(target) {
        let words: Vec<String> = token_idx
            .iter()
            .map(|&i| target.doc.tokens[i].text.clone())
            .collect();
        for e in rule_based_entities(&words, block_type, &dicts) {
            println!("  [{:8}] {:?}: {}", block_type.name(), e.entity, e.text);
        }
    }
    Ok(())
}

/// `stats`: corpus statistics of `--data` (Table I shape).
pub fn stats(o: &Options) -> Result<(), String> {
    let resumes = o.load_resumes()?;
    let s = CorpusStats::compute(&resumes);
    println!("documents          : {}", s.n_docs);
    println!("avg # of tokens    : {:.2}", s.avg_tokens);
    println!("avg # of sentences : {:.2}", s.avg_sentences);
    println!("avg # of pages     : {:.2}", s.avg_pages);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> Options {
        let args: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [k.to_string(), v.to_string()])
            .collect();
        Options::parse(&args).unwrap()
    }

    #[test]
    fn parse_options() {
        let o = opts(&[("--count", "5"), ("--seed", "9"), ("--scale", "paper")]);
        assert_eq!(o.count, 5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.scale, Scale::Paper);
        assert!(!o.all);
        assert!(Options::parse(&["--bogus".into(), "1".into()]).is_err());
        assert!(Options::parse(&["--count".into()]).is_err());

        let o = opts(&[
            ("--sync-mode", "stale:2"),
            ("--trace-capacity", "64"),
            ("--metrics-out", "m.prom"),
        ]);
        assert_eq!(
            o.sync_mode,
            resuformer::config::SyncMode::Stale { max_lag: 2 }
        );
        assert_eq!(o.trace_capacity, Some(64));
        assert_eq!(o.metrics_out.as_deref(), Some("m.prom"));
        assert!(Options::parse(&["--sync-mode".into(), "later".into()]).is_err());

        let o = opts(&[("--max-queue", "16"), ("--request-timeout-ms", "250")]);
        assert_eq!(o.max_queue, 16);
        assert_eq!(o.request_timeout_ms, 250);
        assert!(Options::parse(&["--max-queue".into(), "lots".into()]).is_err());

        // --all is a boolean flag: it takes no value and can sit between
        // `--flag value` pairs.
        let o = Options::parse(&[
            "--all".into(),
            "--port".into(),
            "9000".into(),
            "--max-wait-ms".into(),
            "5".into(),
        ])
        .unwrap();
        assert!(o.all);
        assert_eq!(o.port, 9000);
        assert_eq!(o.max_wait_ms, 5);
    }

    #[test]
    fn generate_then_stats_and_rules_round_trip() {
        let dir = std::env::temp_dir().join("resuformer_cli_cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("r.json");
        let data_s = data.to_str().unwrap().to_string();

        let mut o = opts(&[("--count", "2"), ("--seed", "3")]);
        o.out = Some(data_s.clone());
        generate(&o).unwrap();

        let mut o2 = opts(&[]);
        o2.data = Some(data_s.clone());
        stats(&o2).unwrap();
        rules(&o2).unwrap();

        let resumes = o2.load_resumes().unwrap();
        assert_eq!(resumes.len(), 2);
        resumes[0].doc.validate().unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn pretrain_then_resume_round_trip() {
        let dir = std::env::temp_dir().join("resuformer_cli_pretrain");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("r.json");
        let ckpt = dir.join("c.bin");
        let data_s = data.to_str().unwrap().to_string();
        let ckpt_s = ckpt.to_str().unwrap().to_string();

        let mut o = opts(&[
            ("--count", "2"),
            ("--seed", "6"),
            ("--epochs", "1"),
            ("--workers", "2"),
            ("--sync-every", "1"),
        ]);
        o.out = Some(data_s.clone());
        generate(&o).unwrap();
        o.data = Some(data_s.clone());
        o.model = Some(ckpt_s.clone());
        pretrain(&o).unwrap();

        // Continue the run from its own checkpoint for one more epoch.
        o.resume = Some(ckpt_s.clone());
        o.epochs = 2;
        pretrain(&o).unwrap();
        let restored = resuformer::model_io::load_checkpoint(&ckpt_s).unwrap();
        assert_eq!(restored.meta.next_epoch, 2);

        // Asking for fewer epochs than already done is a clean no-op.
        o.epochs = 1;
        pretrain(&o).unwrap();

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn train_then_parse_round_trip() {
        let dir = std::env::temp_dir().join("resuformer_cli_train");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("r.json");
        let model = dir.join("m.bin");
        let data_s = data.to_str().unwrap().to_string();
        let model_s = model.to_str().unwrap().to_string();

        let mut o = opts(&[("--count", "2"), ("--seed", "4"), ("--epochs", "2")]);
        o.out = Some(data_s.clone());
        generate(&o).unwrap();
        o.data = Some(data_s.clone());
        o.model = Some(model_s.clone());
        train(&o).unwrap();
        parse(&o).unwrap();

        // The same saved bundle drives the batched `--all` path.
        o.all = true;
        parse(&o).unwrap();

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&model).ok();
    }
}

/// `inspect`: confusion matrix of a trained model on a document set (uses
/// the gold block labels carried by generated data).
pub fn inspect(o: &Options) -> Result<(), String> {
    use resuformer_eval::report::ConfusionMatrix;

    let model_path = o.model.as_deref().ok_or("--model is required")?;
    let resumes = o.load_resumes()?;
    let (classifier, config, wp) = load_model(model_path)?;
    let scheme = block_tag_scheme();

    let class_names: Vec<&str> = (0..scheme.num_classes())
        .map(|c| scheme.class_name(c))
        .collect();
    let mut matrix = ConfusionMatrix::new(&class_names);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for r in &resumes {
        let (input, sentences) = prepare_document(&r.doc, &wp, &config);
        let labels = resuformer::data::sentence_iob_labels(r, &sentences, &scheme);
        let pred = classifier.predict(&input, &mut rng);
        for (p, g) in pred.iter().zip(labels.iter()) {
            let gc = scheme.class_of(*g).unwrap_or(scheme.num_classes());
            let pc = scheme.class_of(*p).unwrap_or(scheme.num_classes());
            matrix.record(gc, pc);
        }
    }
    println!("sentence-class confusion over {} documents:", resumes.len());
    println!("{}", matrix.render());
    println!("accuracy: {:.3}", matrix.accuracy());
    Ok(())
}
