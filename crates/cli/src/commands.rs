//! CLI subcommand implementations.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer::annotate::extract_blocks;
use resuformer::block_classifier::{BlockClassifier, FinetuneConfig};
use resuformer::config::ModelConfig;
use resuformer::data::{
    block_tag_scheme, build_tokenizer, prepare_document, sentence_iob_labels, DocumentInput,
};
use resuformer::encoder::HierarchicalEncoder;
use resuformer::pipeline::{rule_based_entities, segment_blocks};
use resuformer_datagen::corpus::CorpusStats;
use resuformer_datagen::generator::{generate_resume, LabeledResume};
use resuformer_datagen::{BlockType, Dictionaries, DictionaryConfig, Scale};

use crate::model_io::{load_model, save_model};

/// Parsed CLI options (shared by all subcommands).
pub struct Options {
    data: Option<String>,
    out: Option<String>,
    model: Option<String>,
    count: usize,
    index: usize,
    epochs: usize,
    scale: Scale,
    seed: u64,
}

impl Options {
    /// Parse `--flag value` pairs.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            data: None,
            out: None,
            model: None,
            count: 3,
            index: 0,
            epochs: 8,
            scale: Scale::Smoke,
            seed: 42,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))?;
            match flag.as_str() {
                "--data" => o.data = Some(value.clone()),
                "--out" => o.out = Some(value.clone()),
                "--model" => o.model = Some(value.clone()),
                "--count" => o.count = value.parse().map_err(|_| "bad --count")?,
                "--index" => o.index = value.parse().map_err(|_| "bad --index")?,
                "--epochs" => o.epochs = value.parse().map_err(|_| "bad --epochs")?,
                "--seed" => o.seed = value.parse().map_err(|_| "bad --seed")?,
                "--scale" => {
                    o.scale = match value.as_str() {
                        "smoke" => Scale::Smoke,
                        "paper" => Scale::Paper,
                        other => return Err(format!("unknown scale {other}")),
                    }
                }
                other => return Err(format!("unknown flag {other}")),
            }
            i += 2;
        }
        Ok(o)
    }

    fn data(&self) -> Result<&str, String> {
        self.data.as_deref().ok_or_else(|| "--data is required".to_string())
    }

    fn load_resumes(&self) -> Result<Vec<LabeledResume>, String> {
        let path = self.data()?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
    }

    fn pick<'a>(&self, resumes: &'a [LabeledResume]) -> Result<&'a LabeledResume, String> {
        resumes
            .get(self.index)
            .ok_or_else(|| format!("--index {} out of range ({} documents)", self.index, resumes.len()))
    }
}

/// `generate`: write `--count` synthetic resumes to `--out`.
pub fn generate(o: &Options) -> Result<(), String> {
    let out = o.out.as_deref().ok_or("--out is required")?;
    let cfg = o.scale.generator_config();
    let resumes: Vec<LabeledResume> = (0..o.count)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(o.seed.wrapping_add(i as u64));
            generate_resume(&mut rng, &cfg)
        })
        .collect();
    let json = serde_json::to_string(&resumes).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} resumes to {out}", resumes.len());
    Ok(())
}

/// `train`: fine-tune a block classifier on `--data`, save to `--model`.
pub fn train(o: &Options) -> Result<(), String> {
    let model_path = o.model.as_deref().ok_or("--model is required")?;
    let resumes = o.load_resumes()?;
    if resumes.is_empty() {
        return Err("no documents in --data".into());
    }
    let wp = build_tokenizer(
        resumes.iter().flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
        1,
    );
    let config = ModelConfig::tiny(wp.vocab.len());
    let scheme = block_tag_scheme();
    let prepared: Vec<(DocumentInput, Vec<usize>)> = resumes
        .iter()
        .map(|r| {
            let (input, sentences) = prepare_document(&r.doc, &wp, &config);
            let labels = sentence_iob_labels(r, &sentences, &scheme);
            (input, labels)
        })
        .collect();

    let init_seed = o.seed;
    let mut rng = ChaCha8Rng::seed_from_u64(init_seed);
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    let pairs: Vec<(&DocumentInput, &[usize])> =
        prepared.iter().map(|(d, l)| (d, l.as_slice())).collect();
    let trace = classifier.finetune(
        &pairs,
        &FinetuneConfig { epochs: o.epochs, ..Default::default() },
        &mut rng,
    );
    println!(
        "trained on {} documents for {} epochs (loss {:.2} -> {:.2})",
        prepared.len(),
        o.epochs,
        trace.first().copied().unwrap_or(0.0),
        trace.last().copied().unwrap_or(0.0)
    );
    save_model(model_path, &classifier, &config, &wp, init_seed)?;
    println!("saved model to {model_path}");
    Ok(())
}

/// `parse`: segment a document with a trained model.
pub fn parse(o: &Options) -> Result<(), String> {
    let model_path = o.model.as_deref().ok_or("--model is required")?;
    let resumes = o.load_resumes()?;
    let target = o.pick(&resumes)?;
    let (classifier, config, wp) = load_model(model_path)?;
    let scheme = block_tag_scheme();

    let t0 = std::time::Instant::now();
    let (input, sentences) = prepare_document(&target.doc, &wp, &config);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let labels = classifier.predict(&input, &mut rng);
    let secs = t0.elapsed().as_secs_f64();

    println!(
        "document {}: {} tokens / {} sentences / {} page(s), classified in {:.3}s",
        o.index,
        target.doc.num_tokens(),
        sentences.len(),
        target.doc.num_pages(),
        secs
    );
    for (start, end, class) in segment_blocks(&scheme, &labels) {
        let words: Vec<String> = sentences[start..end]
            .iter()
            .flat_map(|s| s.token_indices.iter().map(|&i| target.doc.tokens[i].text.clone()))
            .take(12)
            .collect();
        println!("  [{:8}] sentences {start:3}..{end:3}: {} ...", BlockType::ALL[class].name(), words.join(" "));
    }
    Ok(())
}

/// `rules`: rule-based entity extraction over the gold block segmentation.
pub fn rules(o: &Options) -> Result<(), String> {
    let resumes = o.load_resumes()?;
    let target = o.pick(&resumes)?;
    let dicts = Dictionaries::build(DictionaryConfig::default());
    println!("document {} — rule-based extraction:", o.index);
    for (block_type, token_idx) in extract_blocks(target) {
        let words: Vec<String> = token_idx
            .iter()
            .map(|&i| target.doc.tokens[i].text.clone())
            .collect();
        for e in rule_based_entities(&words, block_type, &dicts) {
            println!("  [{:8}] {:?}: {}", block_type.name(), e.entity, e.text);
        }
    }
    Ok(())
}

/// `stats`: corpus statistics of `--data` (Table I shape).
pub fn stats(o: &Options) -> Result<(), String> {
    let resumes = o.load_resumes()?;
    let s = CorpusStats::compute(&resumes);
    println!("documents          : {}", s.n_docs);
    println!("avg # of tokens    : {:.2}", s.avg_tokens);
    println!("avg # of sentences : {:.2}", s.avg_sentences);
    println!("avg # of pages     : {:.2}", s.avg_pages);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> Options {
        let args: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [k.to_string(), v.to_string()])
            .collect();
        Options::parse(&args).unwrap()
    }

    #[test]
    fn parse_options() {
        let o = opts(&[("--count", "5"), ("--seed", "9"), ("--scale", "paper")]);
        assert_eq!(o.count, 5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.scale, Scale::Paper);
        assert!(Options::parse(&["--bogus".into(), "1".into()]).is_err());
        assert!(Options::parse(&["--count".into()]).is_err());
    }

    #[test]
    fn generate_then_stats_and_rules_round_trip() {
        let dir = std::env::temp_dir().join("resuformer_cli_cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("r.json");
        let data_s = data.to_str().unwrap().to_string();

        let mut o = opts(&[("--count", "2"), ("--seed", "3")]);
        o.out = Some(data_s.clone());
        generate(&o).unwrap();

        let mut o2 = opts(&[]);
        o2.data = Some(data_s.clone());
        stats(&o2).unwrap();
        rules(&o2).unwrap();

        let resumes = o2.load_resumes().unwrap();
        assert_eq!(resumes.len(), 2);
        resumes[0].doc.validate().unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn train_then_parse_round_trip() {
        let dir = std::env::temp_dir().join("resuformer_cli_train");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("r.json");
        let model = dir.join("m.bin");
        let data_s = data.to_str().unwrap().to_string();
        let model_s = model.to_str().unwrap().to_string();

        let mut o = opts(&[("--count", "2"), ("--seed", "4"), ("--epochs", "2")]);
        o.out = Some(data_s.clone());
        generate(&o).unwrap();
        o.data = Some(data_s.clone());
        o.model = Some(model_s.clone());
        train(&o).unwrap();
        parse(&o).unwrap();

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&model).ok();
    }
}

/// `inspect`: confusion matrix of a trained model on a document set (uses
/// the gold block labels carried by generated data).
pub fn inspect(o: &Options) -> Result<(), String> {
    use resuformer_eval::report::ConfusionMatrix;

    let model_path = o.model.as_deref().ok_or("--model is required")?;
    let resumes = o.load_resumes()?;
    let (classifier, config, wp) = load_model(model_path)?;
    let scheme = block_tag_scheme();

    let class_names: Vec<&str> = (0..scheme.num_classes())
        .map(|c| scheme.class_name(c))
        .collect();
    let mut matrix = ConfusionMatrix::new(&class_names);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for r in &resumes {
        let (input, sentences) = prepare_document(&r.doc, &wp, &config);
        let labels = resuformer::data::sentence_iob_labels(r, &sentences, &scheme);
        let pred = classifier.predict(&input, &mut rng);
        for (p, g) in pred.iter().zip(labels.iter()) {
            let gc = scheme.class_of(*g).unwrap_or(scheme.num_classes());
            let pc = scheme.class_of(*p).unwrap_or(scheme.num_classes());
            matrix.record(gc, pc);
        }
    }
    println!("sentence-class confusion over {} documents:", resumes.len());
    println!("{}", matrix.render());
    println!("accuracy: {:.3}", matrix.accuracy());
    Ok(())
}
