//! # resuformer-nn
//!
//! Neural-network layers and optimizers built on the
//! [`resuformer_tensor`] autodiff engine. Everything the ResuFormer paper's
//! models need is here:
//!
//! * [`Linear`], [`Embedding`], [`LayerNorm`], [`Dropout`], [`Mlp`];
//! * [`MultiHeadAttention`] and [`TransformerEncoder`] (post-norm, GELU
//!   feed-forward, as in BERT);
//! * [`Lstm`] / [`BiLstm`] recurrent layers (Eq. 8 of the paper);
//! * [`Crf`] with exact forward-algorithm likelihood and Viterbi decoding,
//!   plus the fuzzy CRF variant used by the distantly-supervised baseline;
//! * [`GcnLayer`] for the RoBERTa+GCN baseline;
//! * [`Conv2dLayer`] for the visual region-feature CNN;
//! * [`Adam`] with decoupled weight decay and gradient clipping.
//!
//! Layers expose their trainable tensors through the [`Module`] trait, which
//! also provides parameter-count reporting and byte-level save/load.

#![warn(missing_docs)]

pub mod adam;
pub mod attention;
pub mod conv;
pub mod crf;
pub mod dropout;
pub mod embedding;
pub mod gcn;
pub mod linear;
pub mod lstm;
pub mod module;
pub mod norm;
pub mod schedule;
pub mod transformer;

pub use adam::Adam;
pub use attention::MultiHeadAttention;
pub use conv::Conv2dLayer;
pub use crf::{Crf, FuzzyCrf};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gcn::GcnLayer;
pub use linear::{Linear, Mlp};
pub use lstm::{BiLstm, Lstm};
pub use module::{Module, ParamList};
pub use norm::LayerNorm;
pub use schedule::LinearWarmupDecay;
pub use transformer::{TransformerEncoder, TransformerLayer};
