//! Layer normalisation with learned affine parameters.

use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::module::Module;

/// Row-wise layer norm with learned scale `gamma` and shift `beta`.
pub struct LayerNorm {
    /// Scale `[dim]`, initialised to ones.
    pub gamma: Tensor,
    /// Shift `[dim]`, initialised to zeros.
    pub beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    /// Layer norm over the last axis of `[n, dim]` inputs.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::param(NdArray::ones([dim])),
            beta: Tensor::param(NdArray::zeros([dim])),
            eps: 1e-5,
        }
    }

    /// Apply to a `[n, dim]` batch.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let normed = ops::layer_norm_rows(x, self.eps);
        ops::add_broadcast_row(&ops::mul_broadcast_row(&normed, &self.gamma), &self.beta)
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::check::assert_grads_close;
    use resuformer_tensor::init::{seeded_rng, uniform};

    #[test]
    fn identity_affine_normalises_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::constant(NdArray::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, -10.0, 0.0, 10.0, 20.0],
            [2, 4],
        ));
        let y = ln.forward(&x).value();
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn affine_params_receive_gradients() {
        let ln = LayerNorm::new(3);
        let x = Tensor::constant(uniform(&mut seeded_rng(1), [4, 3], 1.0));
        assert_grads_close(
            &ln.parameters(),
            |_| ops::mean_all(&ops::square(&ln.forward(&x))),
            1e-2,
            5e-2,
        );
    }
}
