//! Linear-chain conditional random fields.
//!
//! [`Crf`] provides the exact negative log-likelihood via the forward
//! algorithm (differentiable through `logsumexp` compositions, matching the
//! paper's "compute the sentence CRF loss using the forward-backward
//! algorithm at training time") and Viterbi decoding at test time.
//!
//! [`FuzzyCrf`] implements the fuzzy/partial CRF of Shang et al. (AutoNER's
//! companion baseline, used as `BERT+BiLSTM+FCRF` in Table IV): the
//! numerator marginalises over *all* label paths consistent with a partial
//! annotation instead of a single gold path.

use rand::Rng;
use resuformer_tensor::init;
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::module::Module;

/// Linear-chain CRF over `L` labels.
///
/// ```
/// use resuformer_nn::Crf;
/// use resuformer_tensor::init::{seeded_rng, uniform};
/// use resuformer_tensor::Tensor;
///
/// let mut rng = seeded_rng(1);
/// let crf = Crf::new(&mut rng, 4);
/// let emissions = Tensor::constant(uniform(&mut rng, [6, 4], 1.0));
/// let nll = crf.neg_log_likelihood(&emissions, &[0, 1, 1, 2, 3, 0]);
/// assert!(nll.item() > 0.0);
/// let (path, _score) = crf.viterbi(&emissions.value());
/// assert_eq!(path.len(), 6);
/// ```
pub struct Crf {
    /// Transition scores `[L, L]`: `transitions[i][j]` scores `i -> j`.
    pub transitions: Tensor,
    /// Start scores `[1, L]`.
    pub start: Tensor,
    /// End scores `[1, L]`.
    pub end: Tensor,
    labels: usize,
}

impl Crf {
    /// New CRF with small random scores.
    pub fn new(rng: &mut impl Rng, labels: usize) -> Self {
        assert!(labels > 0);
        Crf {
            transitions: Tensor::param(init::uniform(rng, [labels, labels], 0.1)),
            start: Tensor::param(init::uniform(rng, [1, labels], 0.1)),
            end: Tensor::param(init::uniform(rng, [1, labels], 0.1)),
            labels,
        }
    }

    /// Number of labels.
    pub fn labels(&self) -> usize {
        self.labels
    }

    /// Log-partition `log Z` of the chain for `[T, L]` emissions.
    fn log_partition(&self, emissions: &Tensor) -> Tensor {
        let t_len = emissions.dims()[0];
        // alpha: [L]
        let mut alpha = ops::add(
            &ops::reshape(&self.start, [self.labels]),
            &ops::index_row(emissions, 0),
        );
        for t in 1..t_len {
            // scores[i][j] = alpha[i] + transitions[i][j]
            let scores = ops::add_broadcast_col(&self.transitions, &alpha);
            let reduced = ops::logsumexp_axis(&scores, 0);
            alpha = ops::add(&reduced, &ops::index_row(emissions, t));
        }
        alpha = ops::add(&alpha, &ops::reshape(&self.end, [self.labels]));
        let row = ops::reshape(&alpha, [1, self.labels]);
        ops::sum_all(&ops::logsumexp_axis(&row, 1))
    }

    /// Score of a specific tag path.
    fn path_score(&self, emissions: &Tensor, tags: &[usize]) -> Tensor {
        let t_len = emissions.dims()[0];
        assert_eq!(tags.len(), t_len, "tags/emissions length mismatch");
        assert!(tags.iter().all(|&t| t < self.labels), "tag out of range");
        let emit_coords: Vec<(usize, usize)> = tags.iter().copied().enumerate().collect();
        let emit = ops::sum_all(&ops::gather_elems(emissions, &emit_coords));
        let start = ops::sum_all(&ops::gather_elems(&self.start, &[(0, tags[0])]));
        let end = ops::sum_all(&ops::gather_elems(&self.end, &[(0, tags[t_len - 1])]));
        if t_len == 1 {
            return ops::add(&ops::add(&emit, &start), &end);
        }
        let trans_coords: Vec<(usize, usize)> = tags.windows(2).map(|w| (w[0], w[1])).collect();
        let trans = ops::sum_all(&ops::gather_elems(&self.transitions, &trans_coords));
        ops::add(&ops::add(&ops::add(&emit, &trans), &start), &end)
    }

    /// Negative log-likelihood of `tags` given `[T, L]` emissions.
    pub fn neg_log_likelihood(&self, emissions: &Tensor, tags: &[usize]) -> Tensor {
        ops::sub(
            &self.log_partition(emissions),
            &self.path_score(emissions, tags),
        )
    }

    /// Viterbi decoding: the highest-scoring tag path for `[T, L]` emission
    /// values, with its score.
    pub fn viterbi(&self, emissions: &NdArray) -> (Vec<usize>, f32) {
        let l = self.labels;
        let t_len = emissions.dims()[0];
        assert!(t_len > 0, "viterbi on empty sequence");
        assert_eq!(emissions.dims()[1], l, "viterbi emission width mismatch");
        let trans = self.transitions.value();
        let start = self.start.value();
        let end = self.end.value();

        let mut delta: Vec<f32> = (0..l)
            .map(|j| start.data()[j] + emissions.at(&[0, j]))
            .collect();
        let mut backptr: Vec<Vec<usize>> = Vec::with_capacity(t_len);
        for t in 1..t_len {
            let mut next = vec![f32::NEG_INFINITY; l];
            let mut ptr = vec![0usize; l];
            for j in 0..l {
                for i in 0..l {
                    let s = delta[i] + trans.at(&[i, j]);
                    if s > next[j] {
                        next[j] = s;
                        ptr[j] = i;
                    }
                }
                next[j] += emissions.at(&[t, j]);
            }
            delta = next;
            backptr.push(ptr);
        }
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for j in 0..l {
            let s = delta[j] + end.data()[j];
            if s > best_score {
                best_score = s;
                best = j;
            }
        }
        let mut path = vec![best];
        for ptr in backptr.iter().rev() {
            best = ptr[best];
            path.push(best);
        }
        path.reverse();
        (path, best_score)
    }
}

impl Module for Crf {
    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.transitions.clone(),
            self.start.clone(),
            self.end.clone(),
        ]
    }
}

/// Fuzzy (partial-annotation) CRF.
///
/// The loss is `log Z - log Z_constrained`, where the constrained partition
/// sums over all paths whose label at position `t` lies in `allowed[t]`.
/// Fully-observed positions carry a singleton set; ambiguous / unmatched
/// positions carry the full label set.
pub struct FuzzyCrf {
    /// The underlying chain parameters.
    pub crf: Crf,
}

impl FuzzyCrf {
    /// New fuzzy CRF over `labels` labels.
    pub fn new(rng: &mut impl Rng, labels: usize) -> Self {
        FuzzyCrf {
            crf: Crf::new(rng, labels),
        }
    }

    /// Constrained log-partition over paths consistent with `allowed`.
    fn constrained_log_partition(&self, emissions: &Tensor, allowed: &[Vec<usize>]) -> Tensor {
        let l = self.crf.labels;
        let t_len = emissions.dims()[0];
        assert_eq!(allowed.len(), t_len, "allowed/emissions length mismatch");
        let mask_row = |set: &[usize]| -> Tensor {
            let mut m = vec![-1e9f32; l];
            for &j in set {
                assert!(j < l, "allowed label out of range");
                m[j] = 0.0;
            }
            Tensor::constant(NdArray::from_vec(m, [l]))
        };
        let mut alpha = ops::add(
            &ops::add(
                &ops::reshape(&self.crf.start, [l]),
                &ops::index_row(emissions, 0),
            ),
            &mask_row(&allowed[0]),
        );
        for t in 1..t_len {
            let scores = ops::add_broadcast_col(&self.crf.transitions, &alpha);
            let reduced = ops::logsumexp_axis(&scores, 0);
            alpha = ops::add(
                &ops::add(&reduced, &ops::index_row(emissions, t)),
                &mask_row(&allowed[t]),
            );
        }
        alpha = ops::add(&alpha, &ops::reshape(&self.crf.end, [l]));
        let row = ops::reshape(&alpha, [1, l]);
        ops::sum_all(&ops::logsumexp_axis(&row, 1))
    }

    /// Fuzzy-CRF loss: `log Z - log Z_constrained`.
    pub fn loss(&self, emissions: &Tensor, allowed: &[Vec<usize>]) -> Tensor {
        ops::sub(
            &self.crf.log_partition(emissions),
            &self.constrained_log_partition(emissions, allowed),
        )
    }

    /// Viterbi decoding with the shared chain parameters.
    pub fn viterbi(&self, emissions: &NdArray) -> (Vec<usize>, f32) {
        self.crf.viterbi(emissions)
    }
}

impl Module for FuzzyCrf {
    fn parameters(&self) -> Vec<Tensor> {
        self.crf.parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::check::assert_grads_close;
    use resuformer_tensor::init::{seeded_rng, uniform};

    /// Enumerate all paths and compute exact log Z and best path.
    fn brute_force(crf: &Crf, emissions: &NdArray) -> (f32, Vec<usize>, f32) {
        let l = crf.labels();
        let t_len = emissions.dims()[0];
        let trans = crf.transitions.value();
        let start = crf.start.value();
        let end = crf.end.value();
        let mut paths: Vec<Vec<usize>> = vec![vec![]];
        for _ in 0..t_len {
            paths = paths
                .into_iter()
                .flat_map(|p| {
                    (0..l).map(move |j| {
                        let mut q = p.clone();
                        q.push(j);
                        q
                    })
                })
                .collect();
        }
        let score = |p: &[usize]| -> f32 {
            let mut s = start.data()[p[0]] + end.data()[p[t_len - 1]];
            for (t, &tag) in p.iter().enumerate() {
                s += emissions.at(&[t, tag]);
            }
            for w in p.windows(2) {
                s += trans.at(&[w[0], w[1]]);
            }
            s
        };
        let scores: Vec<f32> = paths.iter().map(|p| score(p)).collect();
        let mx = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let logz = mx + scores.iter().map(|&s| (s - mx).exp()).sum::<f32>().ln();
        let best_idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        (logz, paths[best_idx].clone(), scores[best_idx])
    }

    #[test]
    fn nll_matches_brute_force_enumeration() {
        let mut rng = seeded_rng(1);
        let crf = Crf::new(&mut rng, 3);
        let em_val = uniform(&mut rng, [4, 3], 1.0);
        let emissions = Tensor::constant(em_val.clone());
        let tags = vec![0, 2, 1, 1];
        let (logz, _, _) = brute_force(&crf, &em_val);
        let nll = crf.neg_log_likelihood(&emissions, &tags).item();

        // Hand path score.
        let trans = crf.transitions.value();
        let mut gold = crf.start.value().data()[0] + crf.end.value().data()[1];
        for (t, &tag) in tags.iter().enumerate() {
            gold += em_val.at(&[t, tag]);
        }
        for w in tags.windows(2) {
            gold += trans.at(&[w[0], w[1]]);
        }
        assert!(
            (nll - (logz - gold)).abs() < 1e-4,
            "{} vs {}",
            nll,
            logz - gold
        );
        assert!(nll > 0.0, "NLL must be positive for a non-degenerate chain");
    }

    #[test]
    fn viterbi_matches_exhaustive_search() {
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let crf = Crf::new(&mut rng, 4);
            let em = uniform(&mut rng, [5, 4], 2.0);
            let (_, best_path, best_score) = brute_force(&crf, &em);
            let (path, score) = crf.viterbi(&em);
            assert_eq!(path, best_path, "seed {}", seed);
            assert!((score - best_score).abs() < 1e-4);
        }
    }

    #[test]
    fn single_step_sequence() {
        let mut rng = seeded_rng(2);
        let crf = Crf::new(&mut rng, 3);
        let em = uniform(&mut rng, [1, 3], 1.0);
        let emissions = Tensor::constant(em.clone());
        let nll = crf.neg_log_likelihood(&emissions, &[2]);
        assert!(nll.item() > 0.0);
        let (path, _) = crf.viterbi(&em);
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn crf_gradients_correct() {
        let mut rng = seeded_rng(3);
        let crf = Crf::new(&mut rng, 3);
        let emissions = Tensor::param(uniform(&mut rng, [3, 3], 1.0));
        let mut params = crf.parameters();
        params.push(emissions.clone());
        assert_grads_close(
            &params,
            |p| crf.neg_log_likelihood(&p[3], &[1, 0, 2]),
            1e-2,
            5e-2,
        );
    }

    #[test]
    fn training_crf_raises_gold_path_probability() {
        let mut rng = seeded_rng(4);
        let crf = Crf::new(&mut rng, 3);
        let emissions = Tensor::constant(uniform(&mut rng, [4, 3], 0.5));
        let tags = vec![0, 1, 1, 2];
        let nll0 = crf.neg_log_likelihood(&emissions, &tags).item();
        for _ in 0..60 {
            crf.zero_grad();
            let loss = crf.neg_log_likelihood(&emissions, &tags);
            loss.backward();
            for p in crf.parameters() {
                let g = p.grad().unwrap();
                let mut v = p.value();
                v.axpy(-0.2, &g);
                p.set_value(v);
            }
        }
        let nll1 = crf.neg_log_likelihood(&emissions, &tags).item();
        assert!(nll1 < nll0 * 0.5, "nll {} -> {}", nll0, nll1);
        let (decoded, _) = crf.viterbi(&emissions.value());
        assert_eq!(decoded, tags, "trained CRF should decode the gold path");
    }

    #[test]
    fn fuzzy_crf_reduces_to_crf_on_singletons() {
        let mut rng = seeded_rng(5);
        let fuzzy = FuzzyCrf::new(&mut rng, 3);
        let emissions = Tensor::constant(uniform(&mut rng, [4, 3], 1.0));
        let tags = vec![2, 0, 1, 0];
        let allowed: Vec<Vec<usize>> = tags.iter().map(|&t| vec![t]).collect();
        let fuzzy_loss = fuzzy.loss(&emissions, &allowed).item();
        let crf_loss = fuzzy.crf.neg_log_likelihood(&emissions, &tags).item();
        assert!(
            (fuzzy_loss - crf_loss).abs() < 1e-4,
            "{} vs {}",
            fuzzy_loss,
            crf_loss
        );
    }

    #[test]
    fn fuzzy_crf_loss_nonincreasing_in_ambiguity() {
        // A larger allowed set can only increase the constrained partition,
        // so the loss must not increase.
        let mut rng = seeded_rng(6);
        let fuzzy = FuzzyCrf::new(&mut rng, 3);
        let emissions = Tensor::constant(uniform(&mut rng, [3, 3], 1.0));
        let tight: Vec<Vec<usize>> = vec![vec![0], vec![1], vec![2]];
        let loose: Vec<Vec<usize>> = vec![vec![0], vec![0, 1, 2], vec![2]];
        let l_tight = fuzzy.loss(&emissions, &tight).item();
        let l_loose = fuzzy.loss(&emissions, &loose).item();
        assert!(l_loose <= l_tight + 1e-5, "{} vs {}", l_loose, l_tight);
        // Fully ambiguous everywhere → numerator == partition → loss 0.
        let all: Vec<Vec<usize>> = vec![vec![0, 1, 2]; 3];
        assert!(fuzzy.loss(&emissions, &all).item().abs() < 1e-4);
    }

    #[test]
    fn fuzzy_crf_gradients_correct() {
        let mut rng = seeded_rng(7);
        let fuzzy = FuzzyCrf::new(&mut rng, 3);
        let emissions = Tensor::param(uniform(&mut rng, [3, 3], 1.0));
        let allowed = vec![vec![0], vec![0, 1], vec![2]];
        let mut params = fuzzy.parameters();
        params.push(emissions.clone());
        assert_grads_close(&params, |p| fuzzy.loss(&p[3], &allowed), 1e-2, 5e-2);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use resuformer_tensor::init::{seeded_rng, uniform};

    #[test]
    #[should_panic(expected = "viterbi on empty sequence")]
    fn viterbi_rejects_empty() {
        let crf = Crf::new(&mut seeded_rng(1), 3);
        crf.viterbi(&NdArray::zeros([0, 3]));
    }

    #[test]
    #[should_panic(expected = "tag out of range")]
    fn nll_rejects_out_of_range_tags() {
        let mut rng = seeded_rng(2);
        let crf = Crf::new(&mut rng, 3);
        let e = Tensor::constant(uniform(&mut rng, [2, 3], 1.0));
        crf.neg_log_likelihood(&e, &[0, 9]);
    }
}
