//! Fully-connected layers and small MLPs.

use rand::Rng;
use resuformer_tensor::init;
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::module::Module;

/// A dense affine layer: `y = x W + b` on `[n, in] -> [n, out]` inputs.
pub struct Linear {
    /// Weight matrix `[in_dim, out_dim]`.
    pub w: Tensor,
    /// Bias vector `[out_dim]`.
    pub b: Tensor,
}

impl Linear {
    /// Xavier-initialised layer.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            w: Tensor::param(init::xavier(rng, in_dim, out_dim)),
            b: Tensor::param(NdArray::zeros([out_dim])),
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.w.dims()[0]
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.w.dims()[1]
    }

    /// Apply to a `[n, in_dim]` batch.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        ops::add_broadcast_row(&ops::matmul(x, &self.w), &self.b)
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// Activation choices for [`Mlp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// BERT-style GELU (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation.
    Identity,
}

impl Activation {
    fn apply(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => ops::relu(x),
            Activation::Gelu => ops::gelu(x),
            Activation::Tanh => ops::tanh(x),
            Activation::Identity => x.clone(),
        }
    }
}

/// A multi-layer perceptron: activations between layers, none after the last.
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Build an MLP through the given dims, e.g. `[in, hidden, out]`.
    pub fn new(rng: &mut impl Rng, dims: &[usize], activation: Activation) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(rng, w[0], w[1]))
            .collect();
        Mlp { layers, activation }
    }

    /// Apply to a `[n, in_dim]` batch.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h = self.activation.apply(&h);
            }
        }
        h
    }

    /// Output dimension of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::check::assert_grads_close;
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = seeded_rng(1);
        let l = Linear::new(&mut rng, 3, 2);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 2);
        let x = Tensor::constant(NdArray::zeros([4, 3]));
        let y = l.forward(&x);
        // zero input -> output equals bias (zero at init)
        assert_eq!(y.dims(), vec![4, 2]);
        assert!(y.value().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linear_gradients_correct() {
        let mut rng = seeded_rng(2);
        let l = Linear::new(&mut rng, 3, 2);
        let x = Tensor::constant(init::uniform(&mut rng, [2, 3], 1.0));
        assert_grads_close(
            &l.parameters(),
            |_| ops::mean_all(&ops::square(&l.forward(&x))),
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn mlp_forward_and_gradients() {
        let mut rng = seeded_rng(3);
        let m = Mlp::new(&mut rng, &[4, 5, 3], Activation::Gelu);
        assert_eq!(m.out_dim(), 3);
        assert_eq!(m.num_parameters(), 4 * 5 + 5 + 5 * 3 + 3);
        let x = Tensor::constant(init::uniform(&mut rng, [2, 4], 1.0));
        let y = m.forward(&x);
        assert_eq!(y.dims(), vec![2, 3]);
        assert_grads_close(
            &m.parameters(),
            |_| ops::mean_all(&ops::square(&m.forward(&x))),
            1e-2,
            5e-2,
        );
    }

    #[test]
    fn mlp_trains_toward_target() {
        // A single gradient-descent loop must reduce a regression loss.
        let mut rng = seeded_rng(4);
        let m = Mlp::new(&mut rng, &[2, 8, 1], Activation::Tanh);
        let x = Tensor::constant(init::uniform(&mut rng, [8, 2], 1.0));
        let target = Tensor::constant(init::uniform(&mut rng, [8, 1], 1.0));
        let loss0 = ops::mse(&m.forward(&x), &target).item();
        for _ in 0..500 {
            m.zero_grad();
            let loss = ops::mse(&m.forward(&x), &target);
            loss.backward();
            for p in m.parameters() {
                let g = p.grad().unwrap();
                let mut v = p.value();
                v.axpy(-0.2, &g);
                p.set_value(v);
            }
        }
        let loss1 = ops::mse(&m.forward(&x), &target).item();
        assert!(loss1 < loss0 * 0.2, "loss {} -> {}", loss0, loss1);
    }
}
