//! Inverted dropout.

use rand::Rng;
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

/// Inverted dropout: at train time, zeroes each element with probability `p`
/// and scales survivors by `1/(1-p)`; at eval time it is the identity.
///
/// Stateless apart from the rate; the caller passes the RNG so experiments
/// stay reproducible from a single seed.
#[derive(Clone, Copy, Debug)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
}

impl Dropout {
    /// New dropout with drop probability `p`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p }
    }

    /// Apply. `train = false` (or `p == 0`) is the identity.
    pub fn forward(&self, x: &Tensor, train: bool, rng: &mut impl Rng) -> Tensor {
        if !train || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let dims = x.dims();
        let n: usize = dims.iter().product();
        let mask: Vec<f32> = (0..n)
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::constant(NdArray::from_vec(mask, dims));
        ops::mul(x, &mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5);
        let x = Tensor::constant(NdArray::ones([10]));
        let y = d.forward(&x, false, &mut seeded_rng(1));
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let d = Dropout::new(0.3);
        let x = Tensor::constant(NdArray::ones([10_000]));
        let y = d.forward(&x, true, &mut seeded_rng(2)).value();
        let mean: f32 = y.data().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {}", mean);
        // Survivors are scaled by 1/keep.
        assert!(y
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn rejects_p_one() {
        Dropout::new(1.0);
    }
}
