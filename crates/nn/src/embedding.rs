//! Lookup-table embeddings.

use rand::Rng;
use resuformer_tensor::init;
use resuformer_tensor::ops;
use resuformer_tensor::Tensor;

use crate::module::Module;

/// An embedding table `[num, dim]` with gather forward / scatter-add
/// backward.
pub struct Embedding {
    /// The embedding table.
    pub table: Tensor,
}

impl Embedding {
    /// Normal(0, 0.02) initialised table, BERT-style.
    pub fn new(rng: &mut impl Rng, num: usize, dim: usize) -> Self {
        Embedding {
            table: Tensor::param(init::normal(rng, [num, dim], 0.02)),
        }
    }

    /// Number of embeddings.
    pub fn num(&self) -> usize {
        self.table.dims()[0]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.dims()[1]
    }

    /// Look up a batch of ids → `[ids.len(), dim]`.
    pub fn forward(&self, ids: &[usize]) -> Tensor {
        ops::gather_rows(&self.table, ids)
    }
}

impl Module for Embedding {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::init::seeded_rng;
    use resuformer_tensor::NdArray;

    #[test]
    fn lookup_returns_table_rows() {
        let e = Embedding {
            table: Tensor::param(NdArray::from_vec(
                vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1],
                [3, 2],
            )),
        };
        let y = e.forward(&[2, 0]);
        assert_eq!(y.value().data(), &[2.0, 2.1, 0.0, 0.1]);
        assert_eq!(e.num(), 3);
        assert_eq!(e.dim(), 2);
    }

    #[test]
    fn gradient_flows_only_to_used_rows() {
        let mut rng = seeded_rng(1);
        let e = Embedding::new(&mut rng, 4, 3);
        let y = e.forward(&[1, 1]);
        let loss = ops::sum_all(&y);
        loss.backward();
        let g = e.table.grad().unwrap();
        // Row 1 used twice -> gradient 2; others zero.
        assert_eq!(g.row(1), &[2.0, 2.0, 2.0]);
        assert_eq!(g.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(g.row(3), &[0.0, 0.0, 0.0]);
    }
}
