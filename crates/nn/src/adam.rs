//! Adam optimizer with decoupled weight decay and gradient clipping.
//!
//! The paper optimises every model with "the Adam optimizer with the weight
//! decay of 0.01"; decay is applied decoupled (AdamW-style) so it does not
//! leak into the moment estimates.

use std::collections::HashMap;

use resuformer_tensor::{NdArray, Tensor};

/// Per-parameter Adam state.
struct Slot {
    m: NdArray,
    v: NdArray,
}

/// Adam/AdamW optimizer over an explicit parameter group.
///
/// Multiple groups with different learning rates (the paper uses 5e-5 for
/// the encoder and 1e-3 for the BiLSTM/CRF head) are expressed as multiple
/// `Adam` instances stepped together.
pub struct Adam {
    params: Vec<Tensor>,
    state: HashMap<u64, Slot>,
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
}

impl Adam {
    /// New optimizer over `params` with learning rate `lr` and decoupled
    /// weight decay `weight_decay`.
    pub fn new(params: Vec<Tensor>, lr: f32, weight_decay: f32) -> Self {
        Adam {
            params,
            state: HashMap::new(),
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
        }
    }

    /// Number of optimised tensors.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Clip the global gradient norm of this group to `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let mut sq = 0.0f32;
        for p in &self.params {
            if let Some(g) = p.grad() {
                sq += g.data().iter().map(|&v| v * v).sum::<f32>();
            }
        }
        let norm = sq.sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                if let Some(mut g) = p.grad() {
                    for v in g.data_mut() {
                        *v *= scale;
                    }
                    p.zero_grad();
                    p.accumulate_grad(&g);
                }
            }
        }
        norm
    }

    /// Apply one update from the accumulated gradients, then clear them.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            let slot = self.state.entry(p.id()).or_insert_with(|| Slot {
                m: NdArray::zeros(g.shape().clone()),
                v: NdArray::zeros(g.shape().clone()),
            });
            let mut value = p.value();
            {
                let md = slot.m.data_mut();
                for (m, &gv) in md.iter_mut().zip(g.data().iter()) {
                    *m = self.beta1 * *m + (1.0 - self.beta1) * gv;
                }
            }
            {
                let vd = slot.v.data_mut();
                for (v, &gv) in vd.iter_mut().zip(g.data().iter()) {
                    *v = self.beta2 * *v + (1.0 - self.beta2) * gv * gv;
                }
            }
            {
                let out = value.data_mut();
                for ((x, &m), &v) in out.iter_mut().zip(slot.m.data()).zip(slot.v.data()) {
                    let mhat = m / bc1;
                    let vhat = v / bc2;
                    *x -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *x);
                }
            }
            p.set_value(value);
            p.zero_grad();
        }
    }

    /// Zero gradients for all parameters in the group.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Serialize the optimizer state (step counter + first/second moments).
    ///
    /// The blob is *positional*: slots are written in `params` order, so it
    /// can be restored into a freshly constructed optimizer over the same
    /// parameter list in the same order (tensor ids are process-local and
    /// never serialized). Parameters that have not been stepped yet are
    /// written as an absent slot.
    pub fn save_state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(STATE_MAGIC);
        out.extend_from_slice(&self.t.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for p in &self.params {
            match self.state.get(&p.id()) {
                Some(slot) => {
                    out.push(1);
                    let dims = slot.m.dims();
                    out.extend_from_slice(&(dims.len() as u64).to_le_bytes());
                    for &d in dims {
                        out.extend_from_slice(&(d as u64).to_le_bytes());
                    }
                    for &x in slot.m.data() {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                    for &x in slot.v.data() {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Restore optimizer state written by [`Adam::save_state_bytes`].
    ///
    /// The current parameter list must match the saved one in count, order
    /// and shapes; hyper-parameters (`lr`, betas, decay) are not part of the
    /// state and keep their constructor values.
    pub fn load_state_bytes(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader { buf: bytes, pos: 0 };
        if r.take(STATE_MAGIC.len())? != STATE_MAGIC {
            return Err("bad optimizer state magic".to_string());
        }
        let t = r.u64()?;
        let n = r.u64()? as usize;
        if n != self.params.len() {
            return Err(format!(
                "optimizer state has {} parameters, optimizer has {}",
                n,
                self.params.len()
            ));
        }
        let mut state = HashMap::new();
        for p in &self.params {
            if r.u8()? == 0 {
                continue;
            }
            let rank = r.u64()? as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u64()? as usize);
            }
            if dims != p.dims() {
                return Err(format!(
                    "optimizer slot shape {:?} does not match parameter shape {:?}",
                    dims,
                    p.dims()
                ));
            }
            let m = r.f32s(dims.iter().product())?;
            let v = r.f32s(dims.iter().product())?;
            state.insert(
                p.id(),
                Slot {
                    m: NdArray::from_vec(m, dims.clone()),
                    v: NdArray::from_vec(v, dims),
                },
            );
        }
        self.t = t;
        self.state = state;
        Ok(())
    }
}

const STATE_MAGIC: &[u8] = b"RESUADM1";

struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err("truncated optimizer state".to_string());
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::init::{seeded_rng, uniform};
    use resuformer_tensor::ops;

    #[test]
    fn converges_on_quadratic() {
        // min (x - 3)^2 — Adam should get close to 3.
        let x = Tensor::param(NdArray::scalar(0.0));
        let mut opt = Adam::new(vec![x.clone()], 0.1, 0.0);
        for _ in 0..300 {
            opt.zero_grad();
            let loss = ops::square(&ops::add_scalar(&x, -3.0));
            loss.backward();
            opt.step();
        }
        assert!((x.item() - 3.0).abs() < 0.05, "x = {}", x.item());
    }

    #[test]
    fn weight_decay_shrinks_unused_weights() {
        // A parameter with zero gradient but weight decay must decay only if
        // it has a gradient entry; with no backward it stays put (Adam skips
        // params without grads), and with a zero grad it decays.
        let x = Tensor::param(NdArray::scalar(1.0));
        let mut opt = Adam::new(vec![x.clone()], 0.01, 0.1);
        opt.step();
        assert_eq!(x.item(), 1.0, "no grad -> no update");
        for _ in 0..200 {
            x.accumulate_grad(&NdArray::scalar(0.0));
            opt.step();
        }
        assert!(
            x.item() < 0.9,
            "decay should shrink the weight: {}",
            x.item()
        );
    }

    #[test]
    fn first_step_matches_hand_computed_adam() {
        let x = Tensor::param(NdArray::scalar(2.0));
        let mut opt = Adam::new(vec![x.clone()], 0.5, 0.0);
        // d/dx x^2 = 4 at x=2.
        let loss = ops::square(&x);
        loss.backward();
        opt.step();
        // m̂ = g, v̂ = g², step = lr * g/|g| = lr (up to eps).
        assert!((x.item() - 1.5).abs() < 1e-3, "x = {}", x.item());
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        // Train 3 steps, snapshot, then train 2 more. A fresh optimizer over
        // parameters cloned at the snapshot, restored from the blob, must
        // produce bit-identical values after the same 2 steps.
        let step = |x: &Tensor, opt: &mut Adam| {
            opt.zero_grad();
            let loss = ops::mean_all(&ops::square(&ops::add_scalar(x, -3.0)));
            loss.backward();
            opt.step();
        };
        let x = Tensor::param(NdArray::from_vec(vec![0.0, 1.0], [2]));
        let mut opt = Adam::new(vec![x.clone()], 0.1, 0.01);
        for _ in 0..3 {
            step(&x, &mut opt);
        }
        let blob = opt.save_state_bytes();
        let snapshot = x.value();

        for _ in 0..2 {
            step(&x, &mut opt);
        }

        let y = Tensor::param(snapshot);
        let mut opt2 = Adam::new(vec![y.clone()], 0.1, 0.01);
        opt2.load_state_bytes(&blob).unwrap();
        for _ in 0..2 {
            step(&y, &mut opt2);
        }
        assert_eq!(x.value().data(), y.value().data());
    }

    #[test]
    fn state_load_rejects_mismatched_params() {
        let x = Tensor::param(NdArray::scalar(0.0));
        let opt = Adam::new(vec![x.clone()], 0.1, 0.0);
        let blob = opt.save_state_bytes();
        let mut other = Adam::new(
            vec![x.clone(), Tensor::param(NdArray::scalar(1.0))],
            0.1,
            0.0,
        );
        assert!(other.load_state_bytes(&blob).is_err());
        assert!(other.load_state_bytes(b"garbage").is_err());
    }

    #[test]
    fn clip_grad_norm_scales_gradients() {
        let a = Tensor::param(uniform(&mut seeded_rng(1), [4], 1.0));
        let opt = Adam::new(vec![a.clone()], 0.1, 0.0);
        a.accumulate_grad(&NdArray::from_vec(vec![3.0, 4.0, 0.0, 0.0], [4]));
        let pre = opt.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = a.grad().unwrap();
        assert!((g.l2_norm() - 1.0).abs() < 1e-5);
    }
}
