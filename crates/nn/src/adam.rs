//! Adam optimizer with decoupled weight decay and gradient clipping.
//!
//! The paper optimises every model with "the Adam optimizer with the weight
//! decay of 0.01"; decay is applied decoupled (AdamW-style) so it does not
//! leak into the moment estimates.

use std::collections::HashMap;

use resuformer_tensor::{NdArray, Tensor};

/// Per-parameter Adam state.
struct Slot {
    m: NdArray,
    v: NdArray,
}

/// Adam/AdamW optimizer over an explicit parameter group.
///
/// Multiple groups with different learning rates (the paper uses 5e-5 for
/// the encoder and 1e-3 for the BiLSTM/CRF head) are expressed as multiple
/// `Adam` instances stepped together.
pub struct Adam {
    params: Vec<Tensor>,
    state: HashMap<u64, Slot>,
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
}

impl Adam {
    /// New optimizer over `params` with learning rate `lr` and decoupled
    /// weight decay `weight_decay`.
    pub fn new(params: Vec<Tensor>, lr: f32, weight_decay: f32) -> Self {
        Adam {
            params,
            state: HashMap::new(),
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
        }
    }

    /// Number of optimised tensors.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Clip the global gradient norm of this group to `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let mut sq = 0.0f32;
        for p in &self.params {
            if let Some(g) = p.grad() {
                sq += g.data().iter().map(|&v| v * v).sum::<f32>();
            }
        }
        let norm = sq.sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                if let Some(mut g) = p.grad() {
                    for v in g.data_mut() {
                        *v *= scale;
                    }
                    p.zero_grad();
                    p.accumulate_grad(&g);
                }
            }
        }
        norm
    }

    /// Apply one update from the accumulated gradients, then clear them.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            let slot = self.state.entry(p.id()).or_insert_with(|| Slot {
                m: NdArray::zeros(g.shape().clone()),
                v: NdArray::zeros(g.shape().clone()),
            });
            let mut value = p.value();
            {
                let md = slot.m.data_mut();
                for (m, &gv) in md.iter_mut().zip(g.data().iter()) {
                    *m = self.beta1 * *m + (1.0 - self.beta1) * gv;
                }
            }
            {
                let vd = slot.v.data_mut();
                for (v, &gv) in vd.iter_mut().zip(g.data().iter()) {
                    *v = self.beta2 * *v + (1.0 - self.beta2) * gv * gv;
                }
            }
            {
                let out = value.data_mut();
                for ((x, &m), &v) in out.iter_mut().zip(slot.m.data()).zip(slot.v.data()) {
                    let mhat = m / bc1;
                    let vhat = v / bc2;
                    *x -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *x);
                }
            }
            p.set_value(value);
            p.zero_grad();
        }
    }

    /// Zero gradients for all parameters in the group.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::init::{seeded_rng, uniform};
    use resuformer_tensor::ops;

    #[test]
    fn converges_on_quadratic() {
        // min (x - 3)^2 — Adam should get close to 3.
        let x = Tensor::param(NdArray::scalar(0.0));
        let mut opt = Adam::new(vec![x.clone()], 0.1, 0.0);
        for _ in 0..300 {
            opt.zero_grad();
            let loss = ops::square(&ops::add_scalar(&x, -3.0));
            loss.backward();
            opt.step();
        }
        assert!((x.item() - 3.0).abs() < 0.05, "x = {}", x.item());
    }

    #[test]
    fn weight_decay_shrinks_unused_weights() {
        // A parameter with zero gradient but weight decay must decay only if
        // it has a gradient entry; with no backward it stays put (Adam skips
        // params without grads), and with a zero grad it decays.
        let x = Tensor::param(NdArray::scalar(1.0));
        let mut opt = Adam::new(vec![x.clone()], 0.01, 0.1);
        opt.step();
        assert_eq!(x.item(), 1.0, "no grad -> no update");
        for _ in 0..200 {
            x.accumulate_grad(&NdArray::scalar(0.0));
            opt.step();
        }
        assert!(
            x.item() < 0.9,
            "decay should shrink the weight: {}",
            x.item()
        );
    }

    #[test]
    fn first_step_matches_hand_computed_adam() {
        let x = Tensor::param(NdArray::scalar(2.0));
        let mut opt = Adam::new(vec![x.clone()], 0.5, 0.0);
        // d/dx x^2 = 4 at x=2.
        let loss = ops::square(&x);
        loss.backward();
        opt.step();
        // m̂ = g, v̂ = g², step = lr * g/|g| = lr (up to eps).
        assert!((x.item() - 1.5).abs() < 1e-3, "x = {}", x.item());
    }

    #[test]
    fn clip_grad_norm_scales_gradients() {
        let a = Tensor::param(uniform(&mut seeded_rng(1), [4], 1.0));
        let opt = Adam::new(vec![a.clone()], 0.1, 0.0);
        a.accumulate_grad(&NdArray::from_vec(vec![3.0, 4.0, 0.0, 0.0], [4]));
        let pre = opt.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = a.grad().unwrap();
        assert!((g.l2_norm() - 1.0).abs() < 1e-5);
    }
}
