//! LSTM and bidirectional LSTM layers (Eq. 8 of the paper).

use rand::Rng;
use resuformer_tensor::init;
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::module::Module;

/// A unidirectional LSTM processing a `[n, in_dim]` sequence into `[n, h]`
/// hidden states. Gate order in the packed weights is `i, f, g, o`.
pub struct Lstm {
    w_ih: Tensor,
    w_hh: Tensor,
    b: Tensor,
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// New LSTM with input dim `in_dim` and hidden size `hidden`. The forget
    /// gate bias is initialised to 1 (standard trick for gradient flow).
    pub fn new(rng: &mut impl Rng, in_dim: usize, hidden: usize) -> Self {
        let mut b = NdArray::zeros([4 * hidden]);
        for j in hidden..2 * hidden {
            b.data_mut()[j] = 1.0;
        }
        Lstm {
            w_ih: Tensor::param(init::xavier(rng, in_dim, 4 * hidden)),
            w_hh: Tensor::param(init::xavier(rng, hidden, 4 * hidden)),
            b: Tensor::param(b),
            in_dim,
            hidden,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Run over the sequence. `reverse = true` processes the rows back to
    /// front (the output is re-ordered to match the input order).
    pub fn forward(&self, x: &Tensor, reverse: bool) -> Tensor {
        let n = x.dims()[0];
        assert_eq!(x.dims()[1], self.in_dim, "Lstm input dim mismatch");
        let h = self.hidden;
        let mut hs: Vec<Option<Tensor>> = vec![None; n];
        let mut h_t = Tensor::constant(NdArray::zeros([1, h]));
        let mut c_t = Tensor::constant(NdArray::zeros([1, h]));

        let order: Vec<usize> = if reverse {
            (0..n).rev().collect()
        } else {
            (0..n).collect()
        };
        for &t in &order {
            let x_t = ops::slice_rows(x, t, 1);
            let pre = ops::add_broadcast_row(
                &ops::add(
                    &ops::matmul(&x_t, &self.w_ih),
                    &ops::matmul(&h_t, &self.w_hh),
                ),
                &self.b,
            );
            let i = ops::sigmoid(&ops::slice_cols(&pre, 0, h));
            let f = ops::sigmoid(&ops::slice_cols(&pre, h, h));
            let g = ops::tanh(&ops::slice_cols(&pre, 2 * h, h));
            let o = ops::sigmoid(&ops::slice_cols(&pre, 3 * h, h));
            c_t = ops::add(&ops::mul(&f, &c_t), &ops::mul(&i, &g));
            h_t = ops::mul(&o, &ops::tanh(&c_t));
            hs[t] = Some(h_t.clone());
        }
        let rows: Vec<Tensor> = hs
            .into_iter()
            .map(|t| t.expect("all steps filled"))
            .collect();
        ops::concat_rows(&rows)
    }
}

impl Module for Lstm {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.w_ih.clone(), self.w_hh.clone(), self.b.clone()]
    }
}

/// A bidirectional LSTM: forward and backward passes concatenated, producing
/// `[n, 2*hidden]` — exactly Eq. 8's `[h→ ; h←]`.
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

impl BiLstm {
    /// New BiLSTM; output dim is `2 * hidden`.
    pub fn new(rng: &mut impl Rng, in_dim: usize, hidden: usize) -> Self {
        BiLstm {
            fwd: Lstm::new(rng, in_dim, hidden),
            bwd: Lstm::new(rng, in_dim, hidden),
        }
    }

    /// Output feature dimension (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }

    /// Run both directions over a `[n, in_dim]` sequence → `[n, 2*hidden]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let f = self.fwd.forward(x, false);
        let b = self.bwd.forward(x, true);
        ops::concat_cols(&[f, b])
    }
}

impl Module for BiLstm {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.fwd.parameters();
        p.extend(self.bwd.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::check::assert_grads_close;
    use resuformer_tensor::init::{seeded_rng, uniform};

    #[test]
    fn shapes_and_state_flow() {
        let mut rng = seeded_rng(1);
        let lstm = Lstm::new(&mut rng, 3, 5);
        let x = Tensor::constant(uniform(&mut rng, [7, 3], 1.0));
        let y = lstm.forward(&x, false);
        assert_eq!(y.dims(), vec![7, 5]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn first_step_matches_hand_computed_cell() {
        // Verify the cell equations on a 1-step sequence against a scalar
        // hand computation (zero initial state, so the forget term drops).
        let lstm = Lstm {
            w_ih: Tensor::param(NdArray::from_vec(vec![0.5, -0.5, 0.3, 0.7], [1, 4])),
            w_hh: Tensor::param(NdArray::zeros([1, 4])),
            b: Tensor::param(NdArray::from_vec(vec![0.1, 1.0, -0.2, 0.0], [4])),
            in_dim: 1,
            hidden: 1,
        };
        let x = Tensor::constant(NdArray::from_vec(vec![2.0], [1, 1]));
        let y = lstm.forward(&x, false).value();
        let sig = |v: f32| 1.0 / (1.0 + (-v as f64).exp()) as f32;
        let i = sig(0.5 * 2.0 + 0.1);
        let g = (0.3f32 * 2.0 - 0.2).tanh();
        let o = sig(0.7 * 2.0);
        let c = i * g; // f * c0 = 0
        let expect = o * c.tanh();
        assert!(
            (y.data()[0] - expect).abs() < 1e-5,
            "{} vs {}",
            y.data()[0],
            expect
        );
    }

    #[test]
    fn reverse_direction_sees_future_context() {
        // In reverse mode, changing the LAST input must change the FIRST
        // output; in forward mode it must not.
        let mut rng = seeded_rng(2);
        let lstm = Lstm::new(&mut rng, 2, 3);
        let mut base = uniform(&mut seeded_rng(3), [4, 2], 1.0);
        let fwd1 = lstm.forward(&Tensor::constant(base.clone()), false).value();
        let rev1 = lstm.forward(&Tensor::constant(base.clone()), true).value();
        base.set(&[3, 0], 5.0);
        let fwd2 = lstm.forward(&Tensor::constant(base.clone()), false).value();
        let rev2 = lstm.forward(&Tensor::constant(base), true).value();
        assert_eq!(fwd1.row(0), fwd2.row(0), "forward must be causal");
        assert_ne!(rev1.row(0), rev2.row(0), "reverse must see the future");
    }

    #[test]
    fn bilstm_concatenates_directions() {
        let mut rng = seeded_rng(4);
        let bi = BiLstm::new(&mut rng, 2, 3);
        assert_eq!(bi.out_dim(), 6);
        let x = Tensor::constant(uniform(&mut rng, [5, 2], 1.0));
        let y = bi.forward(&x);
        assert_eq!(y.dims(), vec![5, 6]);
    }

    #[test]
    fn lstm_gradients_correct() {
        let mut rng = seeded_rng(5);
        let lstm = Lstm::new(&mut rng, 2, 2);
        let x = Tensor::constant(uniform(&mut rng, [3, 2], 1.0));
        assert_grads_close(
            &lstm.parameters(),
            |_| ops::mean_all(&ops::square(&lstm.forward(&x, false))),
            1e-2,
            5e-2,
        );
    }

    #[test]
    fn bilstm_gradients_correct() {
        let mut rng = seeded_rng(6);
        let bi = BiLstm::new(&mut rng, 2, 2);
        let x = Tensor::constant(uniform(&mut rng, [3, 2], 1.0));
        assert_grads_close(
            &bi.parameters(),
            |_| ops::mean_all(&ops::square(&bi.forward(&x))),
            1e-2,
            5e-2,
        );
    }
}
