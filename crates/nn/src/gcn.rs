//! Graph convolution layer for the RoBERTa+GCN baseline.
//!
//! The baseline of Wei et al. (SIGIR 2020) encodes 2-D layout by message
//! passing over a spatial-adjacency graph of text segments. A [`GcnLayer`]
//! computes `relu(Â X W)` where `Â` is a (pre-)normalised adjacency matrix
//! supplied by the caller.

use rand::Rng;
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::linear::Linear;
use crate::module::Module;

/// One GCN layer: `relu(Â X W + b)`.
pub struct GcnLayer {
    proj: Linear,
}

impl GcnLayer {
    /// New layer mapping `in_dim` → `out_dim` node features.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        GcnLayer {
            proj: Linear::new(rng, in_dim, out_dim),
        }
    }

    /// Forward: `adj_norm` is `[n, n]`, `x` is `[n, in_dim]`.
    pub fn forward(&self, adj_norm: &NdArray, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        assert_eq!(adj_norm.dims(), &[n, n], "adjacency must be [n, n]");
        let agg = ops::matmul(&Tensor::constant(adj_norm.clone()), x);
        ops::relu(&self.proj.forward(&agg))
    }
}

impl Module for GcnLayer {
    fn parameters(&self) -> Vec<Tensor> {
        self.proj.parameters()
    }
}

/// Symmetrically normalise an adjacency matrix with self-loops:
/// `Â = D^{-1/2} (A + I) D^{-1/2}` (Kipf & Welling).
pub fn normalize_adjacency(adj: &NdArray) -> NdArray {
    let n = adj.dims()[0];
    assert_eq!(adj.dims(), &[n, n], "adjacency must be square");
    let mut a = adj.clone();
    {
        let d = a.data_mut();
        for i in 0..n {
            d[i * n + i] += 1.0;
        }
    }
    let deg: Vec<f32> = (0..n)
        .map(|i| a.row(i).iter().sum::<f32>().max(1e-12).sqrt())
        .collect();
    let mut out = NdArray::zeros([n, n]);
    {
        let o = out.data_mut();
        for i in 0..n {
            for j in 0..n {
                o[i * n + j] = a.at(&[i, j]) / (deg[i] * deg[j]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::check::assert_grads_close;
    use resuformer_tensor::init::{seeded_rng, uniform};

    #[test]
    fn normalized_adjacency_is_symmetric_with_self_loops() {
        let mut adj = NdArray::zeros([3, 3]);
        adj.set(&[0, 1], 1.0);
        adj.set(&[1, 0], 1.0);
        let norm = normalize_adjacency(&adj);
        for i in 0..3 {
            assert!(norm.at(&[i, i]) > 0.0, "self loop missing at {}", i);
            for j in 0..3 {
                assert!((norm.at(&[i, j]) - norm.at(&[j, i])).abs() < 1e-6);
            }
        }
        // Isolated node 2: Â[2][2] = 1.
        assert!((norm.at(&[2, 2]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gcn_aggregates_neighbours() {
        // With identity weights, a node's output mixes its neighbours.
        let mut rng = seeded_rng(1);
        let layer = GcnLayer::new(&mut rng, 2, 2);
        let mut adj = NdArray::zeros([2, 2]);
        adj.set(&[0, 1], 1.0);
        adj.set(&[1, 0], 1.0);
        let norm = normalize_adjacency(&adj);
        let x1 = Tensor::constant(NdArray::from_vec(vec![1.0, 0.0, 0.0, 0.0], [2, 2]));
        let x2 = Tensor::constant(NdArray::from_vec(vec![1.0, 0.0, 5.0, 0.0], [2, 2]));
        let y1 = layer.forward(&norm, &x1).value();
        let y2 = layer.forward(&norm, &x2).value();
        // Node 0's output must change when node 1's feature changes.
        assert_ne!(y1.row(0), y2.row(0));
    }

    #[test]
    fn gcn_gradients_correct() {
        let mut rng = seeded_rng(2);
        let layer = GcnLayer::new(&mut rng, 3, 2);
        let adj = normalize_adjacency(&NdArray::ones([4, 4]));
        let x = Tensor::constant(uniform(&mut rng, [4, 3], 1.0));
        assert_grads_close(
            &layer.parameters(),
            |_| ops::mean_all(&ops::square(&layer.forward(&adj, &x))),
            1e-2,
            5e-2,
        );
    }
}
