//! Multi-head scaled dot-product self-attention.

use rand::Rng;
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::linear::Linear;
use crate::module::Module;

/// Multi-head self-attention over a `[n, d]` sequence.
///
/// An optional additive mask `[n, n]` (0 = attend, `-1e9` = block) is added
/// to the attention scores before softmax; this implements the paper's
/// "adaptive attention" over variable-length sentence sequences.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// New attention with `heads` heads over model dim `dim` (must divide).
    pub fn new(rng: &mut impl Rng, dim: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && dim % heads == 0,
            "dim {} not divisible by heads {}",
            dim,
            heads
        );
        MultiHeadAttention {
            wq: Linear::new(rng, dim, dim),
            wk: Linear::new(rng, dim, dim),
            wv: Linear::new(rng, dim, dim),
            wo: Linear::new(rng, dim, dim),
            heads,
            head_dim: dim / heads,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Self-attention forward: `[n, d]` (+ optional `[n, n]` additive mask)
    /// → `[n, d]`.
    pub fn forward(&self, x: &Tensor, mask: Option<&NdArray>) -> Tensor {
        let n = x.dims()[0];
        if let Some(m) = mask {
            assert_eq!(m.dims(), &[n, n], "attention mask must be [n, n]");
        }
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.head_dim;
            let qh = ops::slice_cols(&q, off, self.head_dim);
            let kh = ops::slice_cols(&k, off, self.head_dim);
            let vh = ops::slice_cols(&v, off, self.head_dim);
            let mut scores = ops::mul_scalar(&ops::matmul(&qh, &ops::transpose(&kh)), scale);
            if let Some(m) = mask {
                scores = ops::add(&scores, &Tensor::constant(m.clone()));
            }
            let attn = ops::softmax_rows(&scores);
            head_outputs.push(ops::matmul(&attn, &vh));
        }
        let concat = ops::concat_cols(&head_outputs);
        self.wo.forward(&concat)
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<Tensor> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.parameters())
            .collect()
    }
}

/// Build an additive attention mask that blocks positions `>= valid` (used
/// when padding a batch of sequences to a common length).
pub fn padding_mask(n: usize, valid: usize) -> NdArray {
    let mut m = NdArray::zeros([n, n]);
    {
        let d = m.data_mut();
        for i in 0..n {
            for j in valid..n {
                d[i * n + j] = -1e9;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::check::assert_grads_close;
    use resuformer_tensor::init::{seeded_rng, uniform};

    #[test]
    fn output_shape_matches_input() {
        let mut rng = seeded_rng(1);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = Tensor::constant(uniform(&mut rng, [5, 8], 1.0));
        let y = attn.forward(&x, None);
        assert_eq!(y.dims(), vec![5, 8]);
        assert_eq!(attn.heads(), 2);
    }

    #[test]
    fn masked_positions_do_not_influence_output() {
        // With a padding mask over positions >= 3, the outputs at positions
        // 0..3 must not change when padded content changes.
        let mut rng = seeded_rng(2);
        let attn = MultiHeadAttention::new(&mut rng, 4, 2);
        let mask = padding_mask(5, 3);

        let mut base = uniform(&mut seeded_rng(3), [5, 4], 1.0);
        let y1 = attn
            .forward(&Tensor::constant(base.clone()), Some(&mask))
            .value();
        // Perturb the padded rows only.
        for j in 0..4 {
            base.set(&[3, j], 9.0);
            base.set(&[4, j], -9.0);
        }
        let y2 = attn.forward(&Tensor::constant(base), Some(&mask)).value();
        for i in 0..3 {
            for j in 0..4 {
                assert!(
                    (y1.at(&[i, j]) - y2.at(&[i, j])).abs() < 1e-5,
                    "visible output changed at ({}, {})",
                    i,
                    j
                );
            }
        }
    }

    #[test]
    fn gradients_flow_through_all_projections() {
        let mut rng = seeded_rng(4);
        let attn = MultiHeadAttention::new(&mut rng, 4, 2);
        let x = Tensor::constant(uniform(&mut rng, [3, 4], 1.0));
        assert_grads_close(
            &attn.parameters(),
            |_| ops::mean_all(&ops::square(&attn.forward(&x, None))),
            1e-2,
            5e-2,
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_heads() {
        MultiHeadAttention::new(&mut seeded_rng(5), 6, 4);
    }
}
