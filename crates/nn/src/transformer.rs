//! Post-norm Transformer encoder (BERT-style).

use rand::Rng;
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::attention::MultiHeadAttention;
use crate::dropout::Dropout;
use crate::linear::Linear;
use crate::module::Module;
use crate::norm::LayerNorm;

/// One encoder layer: self-attention + GELU feed-forward, residuals and
/// post-layer-norm, as in the original BERT encoder the paper builds on.
pub struct TransformerLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
    dropout: Dropout,
}

impl TransformerLayer {
    /// New layer with model dim `dim`, `heads` heads, feed-forward dim `ff`.
    pub fn new(rng: &mut impl Rng, dim: usize, heads: usize, ff: usize, dropout: f32) -> Self {
        TransformerLayer {
            attn: MultiHeadAttention::new(rng, dim, heads),
            ln1: LayerNorm::new(dim),
            ff1: Linear::new(rng, dim, ff),
            ff2: Linear::new(rng, ff, dim),
            ln2: LayerNorm::new(dim),
            dropout: Dropout::new(dropout),
        }
    }

    /// Forward a `[n, dim]` sequence.
    pub fn forward(
        &self,
        x: &Tensor,
        mask: Option<&NdArray>,
        train: bool,
        rng: &mut impl Rng,
    ) -> Tensor {
        let a = self.attn.forward(x, mask);
        let a = self.dropout.forward(&a, train, rng);
        let h = self.ln1.forward(&ops::add(x, &a));
        let f = self.ff2.forward(&ops::gelu(&self.ff1.forward(&h)));
        let f = self.dropout.forward(&f, train, rng);
        self.ln2.forward(&ops::add(&h, &f))
    }
}

impl Module for TransformerLayer {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.attn.parameters();
        p.extend(self.ln1.parameters());
        p.extend(self.ff1.parameters());
        p.extend(self.ff2.parameters());
        p.extend(self.ln2.parameters());
        p
    }
}

/// A stack of [`TransformerLayer`]s.
pub struct TransformerEncoder {
    layers: Vec<TransformerLayer>,
    dim: usize,
}

impl TransformerEncoder {
    /// New encoder: `n_layers` layers of width `dim` with `heads` heads and
    /// feed-forward width `ff`.
    pub fn new(
        rng: &mut impl Rng,
        n_layers: usize,
        dim: usize,
        heads: usize,
        ff: usize,
        dropout: f32,
    ) -> Self {
        TransformerEncoder {
            layers: (0..n_layers)
                .map(|_| TransformerLayer::new(rng, dim, heads, ff, dropout))
                .collect(),
            dim,
        }
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward a `[n, dim]` sequence through all layers.
    pub fn forward(
        &self,
        x: &Tensor,
        mask: Option<&NdArray>,
        train: bool,
        rng: &mut impl Rng,
    ) -> Tensor {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h, mask, train, rng);
        }
        h
    }
}

impl Module for TransformerEncoder {
    fn parameters(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::init::{seeded_rng, uniform};

    #[test]
    fn encoder_shape_and_param_count() {
        let mut rng = seeded_rng(1);
        let enc = TransformerEncoder::new(&mut rng, 2, 8, 2, 16, 0.0);
        assert_eq!(enc.n_layers(), 2);
        assert_eq!(enc.dim(), 8);
        // per layer: attn 4*(8*8+8) + 2 LN 2*(8+8) + ff 8*16+16 + 16*8+8
        let per_layer = 4 * (64 + 8) + 2 * 16 + (128 + 16) + (128 + 8);
        assert_eq!(enc.num_parameters(), 2 * per_layer);
        let x = Tensor::constant(uniform(&mut rng, [5, 8], 1.0));
        let y = enc.forward(&x, None, false, &mut rng);
        assert_eq!(y.dims(), vec![5, 8]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn eval_forward_is_deterministic() {
        let mut rng = seeded_rng(2);
        let enc = TransformerEncoder::new(&mut rng, 1, 4, 2, 8, 0.5);
        let x = Tensor::constant(uniform(&mut rng, [3, 4], 1.0));
        let y1 = enc.forward(&x, None, false, &mut seeded_rng(10)).value();
        let y2 = enc.forward(&x, None, false, &mut seeded_rng(99)).value();
        assert_eq!(y1.data(), y2.data());
    }

    #[test]
    fn train_dropout_differs_from_eval() {
        let mut rng = seeded_rng(3);
        let enc = TransformerEncoder::new(&mut rng, 1, 4, 2, 8, 0.5);
        let x = Tensor::constant(uniform(&mut rng, [3, 4], 1.0));
        let eval = enc.forward(&x, None, false, &mut seeded_rng(1)).value();
        let train = enc.forward(&x, None, true, &mut seeded_rng(1)).value();
        assert_ne!(eval.data(), train.data());
    }

    #[test]
    fn encoder_trains_to_memorise_mapping() {
        // Overfit a tiny encoder + readout to map a fixed input to targets.
        let mut rng = seeded_rng(4);
        let enc = TransformerEncoder::new(&mut rng, 1, 4, 2, 8, 0.0);
        let readout = crate::linear::Linear::new(&mut rng, 4, 2);
        let x = Tensor::constant(uniform(&mut rng, [4, 4], 1.0));
        let target = Tensor::constant(uniform(&mut rng, [4, 2], 1.0));
        let mut params = enc.parameters();
        params.extend(readout.parameters());

        let loss_at = |rng: &mut rand_chacha::ChaCha8Rng| {
            ops::mse(
                &readout.forward(&enc.forward(&x, None, false, rng)),
                &target,
            )
        };
        let loss0 = loss_at(&mut rng).item();
        for _ in 0..150 {
            for p in &params {
                p.zero_grad();
            }
            let loss = loss_at(&mut rng);
            loss.backward();
            for p in &params {
                if let Some(g) = p.grad() {
                    let mut v = p.value();
                    v.axpy(-0.05, &g);
                    p.set_value(v);
                }
            }
        }
        let loss1 = loss_at(&mut rng).item();
        assert!(loss1 < loss0 * 0.3, "loss {} -> {}", loss0, loss1);
    }
}
