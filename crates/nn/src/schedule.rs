//! Learning-rate schedules.
//!
//! BERT-family training uses linear warmup followed by linear decay; the
//! experiment harness applies [`LinearWarmupDecay`] to its Adam groups.

/// Linear warmup to `peak_lr` over `warmup_steps`, then linear decay to
/// `final_lr` at `total_steps` (constant afterwards).
#[derive(Clone, Copy, Debug)]
pub struct LinearWarmupDecay {
    /// Peak learning rate reached at the end of warmup.
    pub peak_lr: f32,
    /// Final learning rate at `total_steps`.
    pub final_lr: f32,
    /// Warmup steps.
    pub warmup_steps: usize,
    /// Total schedule length.
    pub total_steps: usize,
}

impl LinearWarmupDecay {
    /// Standard 10%-warmup schedule.
    pub fn with_warmup_ratio(peak_lr: f32, total_steps: usize, ratio: f32) -> Self {
        LinearWarmupDecay {
            peak_lr,
            final_lr: 0.0,
            warmup_steps: ((total_steps as f32) * ratio).round() as usize,
            total_steps: total_steps.max(1),
        }
    }

    /// Learning rate at a (0-based) step.
    pub fn lr_at(&self, step: usize) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            self.peak_lr * (step + 1) as f32 / self.warmup_steps as f32
        } else if step >= self.total_steps {
            self.final_lr
        } else {
            let span = (self.total_steps - self.warmup_steps).max(1) as f32;
            let progress = (step - self.warmup_steps) as f32 / span;
            self.peak_lr + (self.final_lr - self.peak_lr) * progress
        }
    }

    /// Apply the step's learning rate to an optimizer.
    pub fn apply(&self, opt: &mut crate::adam::Adam, step: usize) {
        opt.lr = self.lr_at(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_up_then_decays() {
        let s = LinearWarmupDecay {
            peak_lr: 1.0,
            final_lr: 0.0,
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(10) <= 1.0);
        assert!(s.lr_at(60) < s.lr_at(20));
        assert!((s.lr_at(110)).abs() < 1e-6);
        assert_eq!(s.lr_at(10_000), 0.0);
    }

    #[test]
    fn ratio_constructor() {
        let s = LinearWarmupDecay::with_warmup_ratio(2e-3, 100, 0.1);
        assert_eq!(s.warmup_steps, 10);
        assert!((s.lr_at(9) - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn zero_warmup_starts_at_peak() {
        let s = LinearWarmupDecay {
            peak_lr: 0.5,
            final_lr: 0.1,
            warmup_steps: 0,
            total_steps: 10,
        };
        assert!((s.lr_at(0) - 0.5).abs() < 1e-6);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn applies_to_optimizer() {
        use resuformer_tensor::{NdArray, Tensor};
        let p = Tensor::param(NdArray::scalar(1.0));
        let mut opt = crate::adam::Adam::new(vec![p], 1.0, 0.0);
        let s = LinearWarmupDecay::with_warmup_ratio(1e-2, 100, 0.1);
        s.apply(&mut opt, 0);
        assert!(opt.lr < 1e-2);
        s.apply(&mut opt, 9);
        assert!((opt.lr - 1e-2).abs() < 1e-9);
    }
}
