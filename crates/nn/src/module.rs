//! The [`Module`] trait: parameter enumeration, counting, and byte-level
//! serialization of weights.
//!
//! Serialization is a simple self-describing binary format (no external
//! format dependency): a header, then per-parameter shape + little-endian
//! `f32` data, in the order [`Module::parameters`] yields them. Loading
//! validates shapes, so architecture drift between save and load fails fast.

use resuformer_tensor::{NdArray, Tensor};

const MAGIC: &[u8; 8] = b"RESUFMR1";

/// A trainable component exposing its parameter tensors.
pub trait Module {
    /// All trainable tensors, in a stable order.
    fn parameters(&self) -> Vec<Tensor>;

    /// Total number of trainable scalars.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.value().numel()).sum()
    }

    /// Zero all parameter gradients.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Serialize all parameter values to bytes.
    fn save_bytes(&self) -> Vec<u8> {
        let params = self.parameters();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(params.len() as u64).to_le_bytes());
        for p in &params {
            let v = p.value();
            let dims = v.dims();
            out.extend_from_slice(&(dims.len() as u64).to_le_bytes());
            for &d in dims {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &x in v.data() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Restore parameter values from bytes produced by [`Module::save_bytes`]
    /// on an identically-shaped module.
    fn load_bytes(&self, bytes: &[u8]) -> Result<(), LoadError> {
        let params = self.parameters();
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let n = r.u64()? as usize;
        if n != params.len() {
            return Err(LoadError::ParamCountMismatch {
                expected: params.len(),
                found: n,
            });
        }
        for (i, p) in params.iter().enumerate() {
            let rank = r.u64()? as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u64()? as usize);
            }
            if dims != p.dims() {
                return Err(LoadError::ShapeMismatch {
                    param: i,
                    expected: p.dims(),
                    found: dims,
                });
            }
            let numel: usize = dims.iter().product::<usize>().max(1);
            let raw = r.take(numel * 4)?;
            let data: Vec<f32> = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            p.set_value(NdArray::from_vec(data, dims));
        }
        Ok(())
    }

    /// Copy parameter values from another identically-shaped module.
    ///
    /// This is how the self-distillation loop (Algorithm 2) initialises the
    /// student from the teacher and re-initialises the teacher from the
    /// student.
    fn copy_parameters_from(&self, other: &dyn Module) {
        let dst = self.parameters();
        let src = other.parameters();
        assert_eq!(
            dst.len(),
            src.len(),
            "copy_parameters_from: module parameter count mismatch"
        );
        for (d, s) in dst.iter().zip(src.iter()) {
            d.set_value(s.value());
        }
    }
}

/// Errors from [`Module::load_bytes`].
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The byte stream does not start with the expected magic.
    BadMagic,
    /// Truncated input.
    UnexpectedEof,
    /// Parameter count differs from the target module.
    ParamCountMismatch {
        /// parameters in the target module
        expected: usize,
        /// parameters recorded in the byte stream
        found: usize,
    },
    /// A parameter's recorded shape differs from the target module's.
    ShapeMismatch {
        /// index of the offending parameter
        param: usize,
        /// shape in the target module
        expected: Vec<usize>,
        /// shape recorded in the byte stream
        found: Vec<usize>,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "bad magic header"),
            LoadError::UnexpectedEof => write!(f, "unexpected end of input"),
            LoadError::ParamCountMismatch { expected, found } => {
                write!(
                    f,
                    "parameter count mismatch: expected {expected}, found {found}"
                )
            }
            LoadError::ShapeMismatch {
                param,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch at parameter {param}: expected {expected:?}, found {found:?}"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if self.pos + n > self.bytes.len() {
            return Err(LoadError::UnexpectedEof);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, LoadError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// A module made of a plain list of parameters (used in tests and for
/// ad-hoc parameter groups such as the SCL mask vector).
pub struct ParamList(pub Vec<Tensor>);

impl Module for ParamList {
    fn parameters(&self) -> Vec<Tensor> {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::NdArray;

    fn sample() -> ParamList {
        ParamList(vec![
            Tensor::param(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])),
            Tensor::param(NdArray::from_vec(vec![5.0], [1])),
        ])
    }

    #[test]
    fn save_load_round_trip() {
        let a = sample();
        let bytes = a.save_bytes();
        let b = ParamList(vec![
            Tensor::param(NdArray::zeros([2, 2])),
            Tensor::param(NdArray::zeros([1])),
        ]);
        b.load_bytes(&bytes).unwrap();
        assert_eq!(b.0[0].value().data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.0[1].value().data(), &[5.0]);
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let a = sample();
        let bytes = a.save_bytes();
        let b = ParamList(vec![
            Tensor::param(NdArray::zeros([4])),
            Tensor::param(NdArray::zeros([1])),
        ]);
        assert!(matches!(
            b.load_bytes(&bytes),
            Err(LoadError::ShapeMismatch { param: 0, .. })
        ));
    }

    #[test]
    fn load_rejects_bad_magic_and_truncation() {
        let a = sample();
        let mut bytes = a.save_bytes();
        assert!(matches!(a.load_bytes(&bytes[..10]), Err(_)));
        bytes[0] = b'X';
        assert_eq!(a.load_bytes(&bytes), Err(LoadError::BadMagic));
    }

    #[test]
    fn copy_parameters_between_modules() {
        let a = sample();
        let b = ParamList(vec![
            Tensor::param(NdArray::zeros([2, 2])),
            Tensor::param(NdArray::zeros([1])),
        ]);
        b.copy_parameters_from(&a);
        assert_eq!(b.0[0].value().data(), a.0[0].value().data());
        assert_eq!(a.num_parameters(), 5);
    }
}
