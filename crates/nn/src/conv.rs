//! Convolutional building blocks for the visual region-feature extractor.
//!
//! The paper feeds each sentence's rendered image crop through a frozen
//! Faster R-CNN to obtain a region feature. Our substitution (DESIGN.md §2)
//! rasterises the crop and runs a small CNN; [`Conv2dLayer`] is its building
//! block.

use rand::Rng;
use resuformer_tensor::init;
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::module::Module;

/// A conv layer with bias and optional ReLU: `[ci,h,w] -> [co,h',w']`.
pub struct Conv2dLayer {
    weight: Tensor,
    bias: Tensor,
    stride: usize,
    pad: usize,
    relu: bool,
}

impl Conv2dLayer {
    /// New conv layer with a `k × k` kernel.
    pub fn new(
        rng: &mut impl Rng,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        relu: bool,
    ) -> Self {
        let fan_in = in_ch * k * k;
        let limit = (6.0 / (fan_in + out_ch * k * k) as f32).sqrt();
        Conv2dLayer {
            weight: Tensor::param(init::uniform(rng, [out_ch, in_ch, k, k], limit)),
            bias: Tensor::param(NdArray::zeros([out_ch])),
            stride,
            pad,
            relu,
        }
    }

    /// Forward a `[ci,h,w]` image.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let y = ops::conv2d(x, &self.weight, self.stride, self.pad);
        let dims = y.dims();
        let (co, oh, ow) = (dims[0], dims[1], dims[2]);
        // Broadcast the per-channel bias over the spatial map.
        let flat = ops::reshape(&y, [co, oh * ow]);
        let biased = ops::add_broadcast_col(&flat, &self.bias);
        let out = ops::reshape(&biased, [co, oh, ow]);
        if self.relu {
            ops::relu(&out)
        } else {
            out
        }
    }
}

impl Module for Conv2dLayer {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::check::assert_grads_close;
    use resuformer_tensor::init::{seeded_rng, uniform};

    #[test]
    fn output_shape_with_stride_and_pad() {
        let mut rng = seeded_rng(1);
        let conv = Conv2dLayer::new(&mut rng, 1, 4, 3, 2, 1, true);
        let x = Tensor::constant(uniform(&mut rng, [1, 8, 16], 1.0));
        let y = conv.forward(&x);
        assert_eq!(y.dims(), vec![4, 4, 8]);
        // ReLU output is non-negative.
        assert!(y.value().data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn bias_broadcasts_per_channel() {
        let mut rng = seeded_rng(2);
        let conv = Conv2dLayer::new(&mut rng, 1, 2, 1, 1, 0, false);
        // Zero the weights; output should equal the bias per channel.
        conv.weight.set_value(NdArray::zeros([2, 1, 1, 1]));
        conv.bias.set_value(NdArray::from_vec(vec![1.5, -2.0], [2]));
        let x = Tensor::constant(uniform(&mut rng, [1, 3, 3], 1.0));
        let y = conv.forward(&x).value();
        for p in 0..9 {
            assert_eq!(y.data()[p], 1.5);
            assert_eq!(y.data()[9 + p], -2.0);
        }
    }

    #[test]
    fn conv_layer_gradients_correct() {
        let mut rng = seeded_rng(3);
        let conv = Conv2dLayer::new(&mut rng, 2, 3, 3, 1, 1, false);
        let x = Tensor::constant(uniform(&mut rng, [2, 4, 4], 1.0));
        assert_grads_close(
            &conv.parameters(),
            |_| ops::mean_all(&ops::square(&conv.forward(&x))),
            1e-2,
            5e-2,
        );
    }
}
