//! Wall-clock latency measurement (the Time/Resume row of Table II and the
//! Figure 3 timings).

use std::time::Instant;

/// Accumulates wall-clock samples and reports the mean.
#[derive(Clone, Debug, Default)]
pub struct Stopwatch {
    samples: Vec<f64>,
}

impl Stopwatch {
    /// New empty stopwatch.
    pub fn new() -> Self {
        Stopwatch::default()
    }

    /// Time a closure and record the sample; returns its output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.samples.push(t0.elapsed().as_secs_f64());
        out
    }

    /// Record an externally-measured sample (seconds).
    pub fn record(&mut self, seconds: f64) {
        self.samples.push(seconds);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean seconds per sample.
    pub fn mean_seconds(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The `p`-th percentile (nearest rank over the sorted samples),
    /// `p` in `[0, 100]`. Returns 0.0 with no samples. The math is the
    /// workspace-wide reference implementation in
    /// `resuformer_telemetry::quantile`.
    pub fn percentile(&self, p: f64) -> f64 {
        resuformer_telemetry::quantile::nearest_rank(&self.samples, p)
    }

    /// Median seconds (p50).
    pub fn p50_seconds(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th-percentile seconds.
    pub fn p95_seconds(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th-percentile seconds.
    pub fn p99_seconds(&self) -> f64 {
        self.percentile(99.0)
    }

    /// All recorded samples (seconds), in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Absorb another stopwatch's samples (for merging per-thread timers).
    pub fn merge(&mut self, other: &Stopwatch) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut sw = Stopwatch::new();
        sw.record(1.0);
        sw.record(3.0);
        assert_eq!(sw.len(), 2);
        assert!((sw.mean_seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let mut sw = Stopwatch::new();
        for i in 1..=100 {
            sw.record(i as f64);
        }
        assert!((sw.percentile(0.0) - 1.0).abs() < 1e-9);
        assert!((sw.percentile(100.0) - 100.0).abs() < 1e-9);
        assert!(
            (sw.p50_seconds() - 50.0).abs() <= 1.5,
            "{}",
            sw.p50_seconds()
        );
        assert!(
            (sw.p95_seconds() - 95.0).abs() <= 1.5,
            "{}",
            sw.p95_seconds()
        );
        assert!(
            (sw.p99_seconds() - 99.0).abs() <= 1.5,
            "{}",
            sw.p99_seconds()
        );
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = Stopwatch::new();
        assert_eq!(empty.percentile(50.0), 0.0);
        let mut one = Stopwatch::new();
        one.record(7.0);
        assert_eq!(one.percentile(0.0), 7.0);
        assert_eq!(one.percentile(99.0), 7.0);
        assert_eq!(one.samples(), &[7.0]);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Stopwatch::new();
        a.record(1.0);
        let mut b = Stopwatch::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean_seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn time_measures_closures() {
        // Bound the sample by an outer stopwatch instead of a fixed upper
        // constant: sleep can overshoot arbitrarily on a loaded machine,
        // but the inner sample can never exceed the enclosing wall-clock.
        let outer = Instant::now();
        let mut sw = Stopwatch::new();
        let v = sw.time(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        let outer_seconds = outer.elapsed().as_secs_f64();
        assert_eq!(v, 42);
        assert!(sw.mean_seconds() >= 0.004, "{}", sw.mean_seconds());
        assert!(
            sw.mean_seconds() <= outer_seconds,
            "sample {} exceeds enclosing wall-clock {}",
            sw.mean_seconds(),
            outer_seconds
        );
        assert!(!sw.is_empty());
    }
}
