//! Wall-clock latency measurement (the Time/Resume row of Table II and the
//! Figure 3 timings).

use std::time::Instant;

/// Accumulates wall-clock samples and reports the mean.
#[derive(Clone, Debug, Default)]
pub struct Stopwatch {
    samples: Vec<f64>,
}

impl Stopwatch {
    /// New empty stopwatch.
    pub fn new() -> Self {
        Stopwatch::default()
    }

    /// Time a closure and record the sample; returns its output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.samples.push(t0.elapsed().as_secs_f64());
        out
    }

    /// Record an externally-measured sample (seconds).
    pub fn record(&mut self, seconds: f64) {
        self.samples.push(seconds);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean seconds per sample.
    pub fn mean_seconds(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut sw = Stopwatch::new();
        sw.record(1.0);
        sw.record(3.0);
        assert_eq!(sw.len(), 2);
        assert!((sw.mean_seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn time_measures_closures() {
        let mut sw = Stopwatch::new();
        let v = sw.time(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(sw.mean_seconds() >= 0.004, "{}", sw.mean_seconds());
        assert!(!sw.is_empty());
    }
}
