//! Paper-style table rendering and JSON manifests.
//!
//! Tables II–V present cells as `F1 (Recall / Precision)` percentages with
//! row tags and column methods; [`format_f1_table`] renders the same shape
//! for terminal output, and [`to_json`] dumps the raw numbers for
//! EXPERIMENTS.md.

use serde::Serialize;

/// One table cell: F1 with recall and precision, in percent.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Cell {
    /// F1 (%).
    pub f1: f32,
    /// Recall (%).
    pub recall: f32,
    /// Precision (%).
    pub precision: f32,
}

impl Cell {
    /// From fractional metrics.
    pub fn from_fractions(f1: f32, recall: f32, precision: f32) -> Self {
        Cell {
            f1: f1 * 100.0,
            recall: recall * 100.0,
            precision: precision * 100.0,
        }
    }

    fn render(&self) -> String {
        format!(
            "{:5.2} ({:5.2}/{:5.2})",
            self.f1, self.recall, self.precision
        )
    }
}

/// Render a `rows × cols` grid of cells with headers, paper style.
pub fn format_f1_table(
    title: &str,
    row_names: &[&str],
    col_names: &[&str],
    cells: &[Vec<Option<Cell>>],
) -> String {
    assert_eq!(cells.len(), row_names.len(), "row count mismatch");
    let col_w = 22usize;
    let row_w = row_names.iter().map(|r| r.len()).max().unwrap_or(4).max(8);

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:row_w$}", ""));
    for c in col_names {
        out.push_str(&format!(" | {:>col_w$}", c));
    }
    out.push('\n');
    out.push_str(&"-".repeat(row_w + col_names.len() * (col_w + 3)));
    out.push('\n');
    for (rn, row) in row_names.iter().zip(cells.iter()) {
        assert_eq!(
            row.len(),
            col_names.len(),
            "column count mismatch in row {rn}"
        );
        out.push_str(&format!("{:row_w$}", rn));
        for cell in row {
            match cell {
                Some(c) => out.push_str(&format!(" | {:>col_w$}", c.render())),
                None => out.push_str(&format!(" | {:>col_w$}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Serialize any metric structure to pretty JSON for run manifests.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("metrics serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_scales_to_percent() {
        let c = Cell::from_fractions(0.935, 0.92, 0.95);
        assert!((c.f1 - 93.5).abs() < 1e-4);
        assert!(c.render().contains("93.50"));
    }

    #[test]
    fn table_renders_all_rows_and_columns() {
        let cells = vec![
            vec![Some(Cell::from_fractions(0.9, 0.8, 0.95)), None],
            vec![
                Some(Cell::from_fractions(0.5, 0.5, 0.5)),
                Some(Cell::from_fractions(1.0, 1.0, 1.0)),
            ],
        ];
        let s = format_f1_table("Table X", &["PInfo", "EduExp"], &["BERT", "Ours"], &cells);
        assert!(s.contains("Table X"));
        assert!(s.contains("PInfo"));
        assert!(s.contains("EduExp"));
        assert!(s.contains("BERT"));
        assert!(s.contains("Ours"));
        assert!(s.contains("90.00"));
        assert!(s.contains(" -"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let cells = vec![vec![None]];
        format_f1_table("T", &["r"], &["a", "b"], &cells);
    }

    #[test]
    fn json_round_trip() {
        let c = Cell::from_fractions(0.5, 0.4, 0.6);
        let s = to_json(&c);
        assert!(s.contains("f1"));
    }
}

/// A class-confusion matrix for sentence/token classification diagnostics
/// (not a paper artifact, but the first thing a user debugging a model
/// wants to see).
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    n: usize,
    names: Vec<String>,
}

impl ConfusionMatrix {
    /// New matrix over the given class names (plus an implicit "other"
    /// bucket for out-of-range labels).
    pub fn new(names: &[&str]) -> Self {
        let n = names.len() + 1;
        ConfusionMatrix {
            counts: vec![0; n * n],
            n,
            names: names
                .iter()
                .map(|s| s.to_string())
                .chain(std::iter::once("other".to_string()))
                .collect(),
        }
    }

    fn clamp(&self, c: usize) -> usize {
        c.min(self.n - 1)
    }

    /// Record one (gold, predicted) pair.
    pub fn record(&mut self, gold: usize, pred: usize) {
        let (g, p) = (self.clamp(gold), self.clamp(pred));
        self.counts[g * self.n + p] += 1;
    }

    /// Count at (gold, pred).
    pub fn at(&self, gold: usize, pred: usize) -> usize {
        self.counts[self.clamp(gold) * self.n + self.clamp(pred)]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let correct: usize = (0..self.n).map(|i| self.counts[i * self.n + i]).sum();
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }

    /// Render as a row-gold × column-pred grid.
    pub fn render(&self) -> String {
        let w = self.names.iter().map(|s| s.len()).max().unwrap_or(5).max(5);
        let mut out = String::new();
        out.push_str(&format!("{:w$}", "g\\p"));
        for name in &self.names {
            out.push_str(&format!(" {:>w$}", name));
        }
        out.push('\n');
        for (g, name) in self.names.iter().enumerate() {
            out.push_str(&format!("{:w$}", name));
            for p in 0..self.n {
                out.push_str(&format!(" {:>w$}", self.counts[g * self.n + p]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod confusion_tests {
    use super::*;

    #[test]
    fn records_and_scores() {
        let mut m = ConfusionMatrix::new(&["A", "B"]);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        m.record(1, 1);
        assert_eq!(m.at(0, 1), 1);
        assert_eq!(m.at(1, 1), 2);
        assert!((m.accuracy() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_labels_fold_into_other() {
        let mut m = ConfusionMatrix::new(&["A"]);
        m.record(7, 9);
        assert_eq!(m.at(1, 1), 1, "clamped to the 'other' bucket");
        let r = m.render();
        assert!(r.contains("other"));
    }
}
