//! Entity-level IOB precision/recall/F1 (Eq. 16–18).
//!
//! A predicted entity counts as a true positive only on an exact span +
//! class match (the standard conlleval criterion the paper follows for
//! intra-block information extraction).

use resuformer_text::{decode_spans, Span, TagScheme};
use serde::Serialize;

/// Precision / recall / F1 with raw counts.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct Prf {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Prf {
    /// Eq. 16.
    pub fn precision(&self) -> f32 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f32 / (self.tp + self.fp) as f32
        }
    }

    /// Eq. 17.
    pub fn recall(&self) -> f32 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f32 / (self.tp + self.fn_) as f32
        }
    }

    /// Eq. 18.
    pub fn f1(&self) -> f32 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Per-class entity scorer over IOB tag sequences.
pub struct EntityScorer {
    per_class: Vec<Prf>,
}

impl EntityScorer {
    /// New scorer over `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        EntityScorer {
            per_class: vec![Prf::default(); n_classes],
        }
    }

    /// Score one sequence pair (gold vs predicted IOB labels).
    pub fn add(&mut self, scheme: &TagScheme, gold: &[usize], pred: &[usize]) {
        assert_eq!(gold.len(), pred.len(), "gold/pred length mismatch");
        let gold_spans = decode_spans(scheme, gold);
        let pred_spans = decode_spans(scheme, pred);
        self.add_spans(&gold_spans, &pred_spans);
    }

    /// Score pre-decoded span sets.
    pub fn add_spans(&mut self, gold: &[Span], pred: &[Span]) {
        for p in pred {
            if gold.contains(p) {
                self.per_class[p.class].tp += 1;
            } else {
                self.per_class[p.class].fp += 1;
            }
        }
        for g in gold {
            if !pred.contains(g) {
                self.per_class[g.class].fn_ += 1;
            }
        }
    }

    /// Counts for one class.
    pub fn class(&self, class: usize) -> Prf {
        self.per_class[class]
    }

    /// Micro-averaged counts over all classes.
    pub fn micro(&self) -> Prf {
        let mut total = Prf::default();
        for c in &self.per_class {
            total.tp += c.tp;
            total.fp += c.fp;
            total.fn_ += c.fn_;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> TagScheme {
        TagScheme::new(&["A", "B"])
    }

    #[test]
    fn exact_match_counts_tp() {
        let s = scheme();
        let mut scorer = EntityScorer::new(2);
        // gold: A at [0,2); pred identical.
        let gold = vec![s.begin(0), s.inside(0), s.outside()];
        scorer.add(&s, &gold, &gold);
        let m = scorer.class(0);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 0, 0));
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn boundary_error_is_both_fp_and_fn() {
        let s = scheme();
        let mut scorer = EntityScorer::new(2);
        let gold = vec![s.begin(0), s.inside(0), s.outside()];
        let pred = vec![s.begin(0), s.outside(), s.outside()];
        scorer.add(&s, &gold, &pred);
        let m = scorer.class(0);
        assert_eq!((m.tp, m.fp, m.fn_), (0, 1, 1));
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn class_confusion_is_scored_per_class() {
        let s = scheme();
        let mut scorer = EntityScorer::new(2);
        let gold = vec![s.begin(0)];
        let pred = vec![s.begin(1)];
        scorer.add(&s, &gold, &pred);
        assert_eq!(scorer.class(0).fn_, 1);
        assert_eq!(scorer.class(1).fp, 1);
        let micro = scorer.micro();
        assert_eq!((micro.tp, micro.fp, micro.fn_), (0, 1, 1));
    }

    #[test]
    fn hand_computed_prf() {
        let mut m = Prf {
            tp: 3,
            fp: 1,
            fn_: 2,
        };
        assert!((m.precision() - 0.75).abs() < 1e-6);
        assert!((m.recall() - 0.6).abs() < 1e-6);
        assert!((m.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-6);
        m = Prf::default();
        assert_eq!(m.f1(), 0.0);
    }
}
