//! # resuformer-eval
//!
//! Evaluation metrics and reporting for the ResuFormer reproduction:
//!
//! * [`area`]: the area-based precision/recall/F1 of Eq. 13–15 (DocBank /
//!   document-layout-analysis convention) used for Table II/III;
//! * [`entity`]: entity-level IOB precision/recall/F1 of Eq. 16–18 used
//!   for Table IV/V;
//! * [`timing`]: wall-clock per-resume latency measurement (the
//!   Time/Resume row);
//! * [`report`]: paper-style table rendering and JSON manifests.

#![warn(missing_docs)]

pub mod area;
pub mod entity;
pub mod report;
pub mod timing;

pub use area::{area_metrics, AreaMetrics};
pub use entity::{EntityScorer, Prf};
pub use report::{format_f1_table, Cell};
pub use timing::Stopwatch;
