//! Area-based precision/recall/F1 (Eq. 13–15).
//!
//! Following the document-layout-analysis convention the paper adopts
//! (DocBank), precision for a class is the token *area* of ground-truth
//! tokens among detected tokens over the area of all detected tokens;
//! recall divides by the area of all ground-truth tokens instead.

use resuformer_doc::Document;
use serde::Serialize;

/// Precision / recall / F1 triple.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct AreaMetrics {
    /// Eq. 13.
    pub precision: f32,
    /// Eq. 14.
    pub recall: f32,
    /// Eq. 15.
    pub f1: f32,
}

impl AreaMetrics {
    /// Combine raw areas into the metric triple.
    pub fn from_areas(intersection: f32, detected: f32, truth: f32) -> Self {
        let precision = if detected > 0.0 {
            intersection / detected
        } else {
            0.0
        };
        let recall = if truth > 0.0 {
            intersection / truth
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        AreaMetrics {
            precision,
            recall,
            f1,
        }
    }
}

/// Per-class raw-area accumulator across documents.
#[derive(Clone, Debug)]
pub struct AreaAccumulator {
    intersection: Vec<f32>,
    detected: Vec<f32>,
    truth: Vec<f32>,
}

impl AreaAccumulator {
    /// New accumulator over `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        AreaAccumulator {
            intersection: vec![0.0; n_classes],
            detected: vec![0.0; n_classes],
            truth: vec![0.0; n_classes],
        }
    }

    /// Add one document: per-token gold and predicted class assignments
    /// (`None` = no class).
    pub fn add(&mut self, doc: &Document, gold: &[Option<usize>], pred: &[Option<usize>]) {
        assert_eq!(gold.len(), doc.num_tokens(), "gold/token mismatch");
        assert_eq!(pred.len(), doc.num_tokens(), "pred/token mismatch");
        for (i, token) in doc.tokens.iter().enumerate() {
            let area = token.bbox.area();
            if let Some(g) = gold[i] {
                self.truth[g] += area;
            }
            if let Some(p) = pred[i] {
                self.detected[p] += area;
                if gold[i] == Some(p) {
                    self.intersection[p] += area;
                }
            }
        }
    }

    /// Metrics for one class.
    pub fn metrics(&self, class: usize) -> AreaMetrics {
        AreaMetrics::from_areas(
            self.intersection[class],
            self.detected[class],
            self.truth[class],
        )
    }

    /// Metrics for every class.
    pub fn all_metrics(&self) -> Vec<AreaMetrics> {
        (0..self.truth.len()).map(|c| self.metrics(c)).collect()
    }

    /// Macro-averaged F1 over classes with ground truth.
    pub fn macro_f1(&self) -> f32 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in 0..self.truth.len() {
            if self.truth[c] > 0.0 {
                sum += self.metrics(c).f1;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f32
        }
    }
}

/// One-shot per-class metrics for a single document.
pub fn area_metrics(
    doc: &Document,
    gold: &[Option<usize>],
    pred: &[Option<usize>],
    n_classes: usize,
) -> Vec<AreaMetrics> {
    let mut acc = AreaAccumulator::new(n_classes);
    acc.add(doc, gold, pred);
    acc.all_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_doc::{BBox, Page, Token};

    fn doc_with_areas(areas: &[f32]) -> Document {
        let tokens = areas
            .iter()
            .enumerate()
            .map(|(i, &a)| Token {
                text: format!("t{i}"),
                // width a, height 1 → area a.
                bbox: BBox::new(0.0, i as f32 * 2.0, a, i as f32 * 2.0 + 1.0),
                page: 0,
                font_size: 10.0,
                bold: false,
            })
            .collect();
        Document {
            tokens,
            pages: vec![Page::a4()],
        }
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let doc = doc_with_areas(&[10.0, 20.0, 30.0]);
        let gold = vec![Some(0), Some(1), Some(0)];
        let m = area_metrics(&doc, &gold, &gold, 2);
        assert!((m[0].f1 - 1.0).abs() < 1e-6);
        assert!((m[1].f1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn areas_weight_the_metrics() {
        // Gold class 0 covers tokens of area 10 and 30; prediction catches
        // only the area-30 token and falsely claims an area-20 token.
        let doc = doc_with_areas(&[10.0, 20.0, 30.0]);
        let gold = vec![Some(0), None, Some(0)];
        let pred = vec![None, Some(0), Some(0)];
        let m = area_metrics(&doc, &gold, &pred, 1)[0];
        assert!((m.precision - 30.0 / 50.0).abs() < 1e-6);
        assert!((m.recall - 30.0 / 40.0).abs() < 1e-6);
        let expect_f1 = 2.0 * 0.6 * 0.75 / (0.6 + 0.75);
        assert!((m.f1 - expect_f1).abs() < 1e-6);
    }

    #[test]
    fn empty_classes_score_zero_without_nan() {
        let doc = doc_with_areas(&[10.0]);
        let m = area_metrics(&doc, &[None], &[None], 3);
        for c in m {
            assert_eq!(c.f1, 0.0);
            assert!(!c.precision.is_nan());
        }
    }

    #[test]
    fn accumulator_merges_documents() {
        let d1 = doc_with_areas(&[10.0]);
        let d2 = doc_with_areas(&[30.0]);
        let mut acc = AreaAccumulator::new(1);
        acc.add(&d1, &[Some(0)], &[Some(0)]);
        acc.add(&d2, &[Some(0)], &[None]);
        let m = acc.metrics(0);
        assert!((m.precision - 1.0).abs() < 1e-6);
        assert!((m.recall - 0.25).abs() < 1e-6);
        assert!(acc.macro_f1() > 0.0);
    }
}
