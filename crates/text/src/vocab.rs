//! Vocabulary with BERT-style special tokens.

use std::collections::HashMap;

/// Padding token id.
pub const PAD: usize = 0;
/// Unknown token id.
pub const UNK: usize = 1;
/// Classification token id (sentence representation).
pub const CLS: usize = 2;
/// Separator token id.
pub const SEP: usize = 3;
/// Mask token id (MLM).
pub const MASK: usize = 4;

/// The special tokens, in id order.
pub const SPECIALS: [&str; 5] = ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"];

/// A token vocabulary with stable ids and the five BERT specials.
#[derive(Clone, Debug)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// A vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            token_to_id: HashMap::new(),
            id_to_token: Vec::new(),
        };
        for s in SPECIALS {
            v.add(s);
        }
        v
    }

    /// Add a token if absent; returns its id.
    pub fn add(&mut self, token: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len();
        self.id_to_token.push(token.to_string());
        self.token_to_id.insert(token.to_string(), id);
        id
    }

    /// Id of a token, or [`UNK`] if absent.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id.get(token).copied().unwrap_or(UNK)
    }

    /// Id of a token only if present.
    pub fn get(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).copied()
    }

    /// Token for an id. Panics on out-of-range ids.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Vocabulary size including specials.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only specials are present is impossible — never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Build from an iterator of words with a minimum frequency cutoff.
    /// Words are lowercased; ties are broken alphabetically for determinism.
    pub fn build(words: impl Iterator<Item = String>, min_freq: usize) -> Self {
        let mut freq: HashMap<String, usize> = HashMap::new();
        for w in words {
            *freq.entry(w.to_lowercase()).or_insert(0) += 1;
        }
        let mut entries: Vec<(String, usize)> = freq.into_iter().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut v = Vocab::new();
        for (w, f) in entries {
            if f >= min_freq {
                v.add(&w);
            }
        }
        v
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Vocab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::new();
        assert_eq!(v.id("[PAD]"), PAD);
        assert_eq!(v.id("[UNK]"), UNK);
        assert_eq!(v.id("[CLS]"), CLS);
        assert_eq!(v.id("[SEP]"), SEP);
        assert_eq!(v.id("[MASK]"), MASK);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn add_is_idempotent_and_lookup_round_trips() {
        let mut v = Vocab::new();
        let id1 = v.add("hello");
        let id2 = v.add("hello");
        assert_eq!(id1, id2);
        assert_eq!(v.token(id1), "hello");
        assert_eq!(v.id("missing"), UNK);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn build_respects_min_freq_and_is_deterministic() {
        let words = ["a", "a", "b", "b", "b", "c"];
        let v1 = Vocab::build(words.iter().map(|s| s.to_string()), 2);
        let v2 = Vocab::build(words.iter().map(|s| s.to_string()), 2);
        assert!(v1.get("a").is_some());
        assert!(v1.get("b").is_some());
        assert_eq!(v1.get("c"), None, "below cutoff");
        assert_eq!(v1.id("a"), v2.id("a"));
        // Highest-frequency first after specials.
        assert_eq!(v1.id("b"), 5);
    }
}
