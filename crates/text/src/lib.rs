//! # resuformer-text
//!
//! Text-processing substrate for the ResuFormer reproduction:
//!
//! * [`Vocab`] and the [`wordpiece`] tokenizer (the paper tokenizes with
//!   WordPiece, §IV-A1);
//! * [`iob`]: IOB tagging schemes for both sentence-level block labels and
//!   token-level entity labels, plus the "Tie or Break" scheme used by the
//!   AutoNER baseline;
//! * [`matchers`]: hand-rolled finite-state matchers standing in for the
//!   paper's regular expressions (email / phone / date / age, §IV-B2);
//! * [`trie`]: token-sequence dictionary matching for distant supervision.

#![warn(missing_docs)]

pub mod iob;
pub mod matchers;
pub mod trie;
pub mod vocab;
pub mod wordpiece;

pub use iob::{decode_spans, encode_spans, Span, TagScheme};
pub use trie::DictTrie;
pub use vocab::Vocab;
pub use wordpiece::WordPiece;
