//! Token-sequence trie for dictionary entity matching.
//!
//! Distant supervision (§IV-B2) matches entity mentions "with exactly the
//! same surface names in the dictionaries". [`DictTrie`] indexes
//! multi-token surface forms and scans a token stream with longest-match
//! semantics, case-insensitively.

use std::collections::HashMap;

/// A match found by [`DictTrie::find_all`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DictMatch {
    /// First matched token index.
    pub start: usize,
    /// One past the last matched token index.
    pub end: usize,
    /// Class payload supplied at insert time.
    pub class: usize,
}

#[derive(Default)]
struct Node {
    children: HashMap<String, Node>,
    /// Terminal payload: the entity class, if a surface form ends here.
    class: Option<usize>,
}

/// A trie over lowercased token sequences with class payloads.
#[derive(Default)]
pub struct DictTrie {
    root: Node,
    entries: usize,
}

impl DictTrie {
    /// Empty trie.
    pub fn new() -> Self {
        DictTrie::default()
    }

    /// Number of inserted surface forms.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the trie holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Insert a surface form (sequence of tokens) with a class payload.
    /// Later inserts of the same form overwrite the class.
    pub fn insert(&mut self, tokens: &[&str], class: usize) {
        assert!(!tokens.is_empty(), "cannot insert empty surface form");
        let mut node = &mut self.root;
        for t in tokens {
            node = node.children.entry(t.to_lowercase()).or_default();
        }
        if node.class.is_none() {
            self.entries += 1;
        }
        node.class = Some(class);
    }

    /// Insert a whitespace-separated phrase.
    pub fn insert_phrase(&mut self, phrase: &str, class: usize) {
        let tokens: Vec<&str> = phrase.split_whitespace().collect();
        self.insert(&tokens, class);
    }

    /// Longest match starting at `start`, if any.
    pub fn longest_match_at(&self, tokens: &[&str], start: usize) -> Option<DictMatch> {
        let mut node = &self.root;
        let mut best: Option<DictMatch> = None;
        for (off, t) in tokens[start..].iter().enumerate() {
            match node.children.get(&t.to_lowercase()) {
                Some(next) => {
                    node = next;
                    if let Some(class) = node.class {
                        best = Some(DictMatch {
                            start,
                            end: start + off + 1,
                            class,
                        });
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Scan the whole stream, greedy longest-match, non-overlapping.
    pub fn find_all(&self, tokens: &[&str]) -> Vec<DictMatch> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            match self.longest_match_at(tokens, i) {
                Some(m) => {
                    i = m.end;
                    out.push(m);
                }
                None => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DictTrie {
        let mut t = DictTrie::new();
        t.insert_phrase("Tsinghua University", 0);
        t.insert_phrase("Peking University", 0);
        t.insert_phrase("Alibaba", 1);
        t.insert_phrase("Alibaba Cloud", 1);
        t
    }

    #[test]
    fn finds_multi_token_entities() {
        let t = sample();
        let toks = vec!["studied", "at", "Tsinghua", "University", "in", "Beijing"];
        let m = t.find_all(&toks);
        assert_eq!(
            m,
            vec![DictMatch {
                start: 2,
                end: 4,
                class: 0
            }]
        );
    }

    #[test]
    fn longest_match_wins() {
        let t = sample();
        let toks = vec!["Alibaba", "Cloud", "team"];
        let m = t.find_all(&toks);
        assert_eq!(
            m,
            vec![DictMatch {
                start: 0,
                end: 2,
                class: 1
            }]
        );
    }

    #[test]
    fn prefix_without_terminal_does_not_match() {
        let t = sample();
        let toks = vec!["Tsinghua", "Campus"];
        assert!(t.find_all(&toks).is_empty());
    }

    #[test]
    fn matching_is_case_insensitive() {
        let t = sample();
        let toks = vec!["TSINGHUA", "university"];
        assert_eq!(t.find_all(&toks).len(), 1);
    }

    #[test]
    fn non_overlapping_scan_continues_after_match() {
        let t = sample();
        let toks = vec!["Alibaba", "then", "Peking", "University"];
        let m = t.find_all(&toks);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].class, 1);
        assert_eq!(m[1].class, 0);
    }

    #[test]
    fn len_counts_unique_forms() {
        let mut t = sample();
        assert_eq!(t.len(), 4);
        t.insert_phrase("Alibaba", 2); // overwrite, not a new entry
        assert_eq!(t.len(), 4);
        let m = t.find_all(&["Alibaba", "x"]);
        assert_eq!(m[0].class, 2);
        assert!(!t.is_empty());
    }
}
