//! IOB tagging schemes and span codecs.
//!
//! Both of the paper's tasks are sequence labeling with IOB tags
//! (sentence-level block labels, §III-A; token-level entity labels, §III-B).
//! [`TagScheme`] maps class names to label ids (`O`, `B-x`, `I-x`);
//! [`encode_spans`] / [`decode_spans`] convert between typed spans and tag
//! sequences. The "Tie or Break" scheme used by the AutoNER baseline lives
//! in [`tie_or_break`].

use serde::{Deserialize, Serialize};

/// A typed, half-open span `[start, end)` over a sequence.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// First covered index.
    pub start: usize,
    /// One past the last covered index.
    pub end: usize,
    /// Class index into the owning [`TagScheme`]'s class list.
    pub class: usize,
}

impl Span {
    /// New span; panics on empty or inverted ranges.
    pub fn new(start: usize, end: usize, class: usize) -> Self {
        assert!(end > start, "span must be non-empty: [{start}, {end})");
        Span { start, end, class }
    }

    /// Span length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Spans are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// An IOB tag scheme over a fixed list of class names.
///
/// Label ids: `0 = O`, then `B-class_k = 1 + 2k`, `I-class_k = 2 + 2k`.
#[derive(Clone, Debug)]
pub struct TagScheme {
    classes: Vec<String>,
}

impl TagScheme {
    /// New scheme over the given class names.
    pub fn new(classes: &[&str]) -> Self {
        assert!(!classes.is_empty(), "scheme needs at least one class");
        TagScheme {
            classes: classes.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of labels (`2 * classes + 1`).
    pub fn num_labels(&self) -> usize {
        2 * self.classes.len() + 1
    }

    /// The outside label.
    pub fn outside(&self) -> usize {
        0
    }

    /// `B-` label for a class.
    pub fn begin(&self, class: usize) -> usize {
        assert!(class < self.classes.len());
        1 + 2 * class
    }

    /// `I-` label for a class.
    pub fn inside(&self, class: usize) -> usize {
        assert!(class < self.classes.len());
        2 + 2 * class
    }

    /// Class of a label, if it is not `O`.
    pub fn class_of(&self, label: usize) -> Option<usize> {
        if label == 0 || label >= self.num_labels() {
            None
        } else {
            Some((label - 1) / 2)
        }
    }

    /// Whether a label is a `B-` label.
    pub fn is_begin(&self, label: usize) -> bool {
        label != 0 && label < self.num_labels() && (label - 1) % 2 == 0
    }

    /// Class name.
    pub fn class_name(&self, class: usize) -> &str {
        &self.classes[class]
    }

    /// Index of a class name.
    pub fn class_index(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c == name)
    }

    /// Human-readable tag string for a label (`O`, `B-X`, `I-X`).
    pub fn label_name(&self, label: usize) -> String {
        if label == 0 {
            "O".to_string()
        } else {
            let class = self.class_of(label).expect("valid label");
            let prefix = if self.is_begin(label) { "B" } else { "I" };
            format!("{}-{}", prefix, self.classes[class])
        }
    }
}

/// Encode typed spans into an IOB tag sequence of length `len`.
/// Spans must be in-bounds and non-overlapping.
pub fn encode_spans(scheme: &TagScheme, len: usize, spans: &[Span]) -> Vec<usize> {
    let mut tags = vec![scheme.outside(); len];
    for s in spans {
        assert!(s.end <= len, "span {:?} exceeds sequence length {}", s, len);
        for i in s.start..s.end {
            assert_eq!(
                tags[i],
                scheme.outside(),
                "overlapping spans at position {i}"
            );
            tags[i] = if i == s.start {
                scheme.begin(s.class)
            } else {
                scheme.inside(s.class)
            };
        }
    }
    tags
}

/// Decode an IOB tag sequence into spans.
///
/// Tolerates ill-formed sequences (an `I-` without a preceding `B-` of the
/// same class starts a new span), matching standard conlleval behaviour.
pub fn decode_spans(scheme: &TagScheme, tags: &[usize]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut open: Option<(usize, usize)> = None; // (start, class)
    for (i, &t) in tags.iter().enumerate() {
        let class = scheme.class_of(t);
        match (open, class) {
            (Some((start, oc)), Some(c)) if !scheme.is_begin(t) && oc == c => {
                // continuation
                let _ = (start, oc);
            }
            (prev, Some(c)) => {
                if let Some((start, oc)) = prev {
                    spans.push(Span::new(start, i, oc));
                }
                open = Some((i, c));
            }
            (Some((start, oc)), None) => {
                spans.push(Span::new(start, i, oc));
                open = None;
            }
            (None, None) => {}
        }
    }
    if let Some((start, oc)) = open {
        spans.push(Span::new(start, tags.len(), oc));
    }
    spans
}

/// The "Tie or Break" tagging scheme of AutoNER (Shang et al., EMNLP 2018).
///
/// Instead of IOB tags per token, AutoNER labels the *gap* between adjacent
/// tokens: `Tie` (same entity continues across the gap), `Break` (an entity
/// boundary), or `Unknown` (ambiguous under distant supervision, skipped in
/// the loss).
pub mod tie_or_break {
    use super::Span;

    /// A gap label between tokens `i` and `i+1`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Gap {
        /// Tokens belong to the same mention.
        Tie,
        /// A mention boundary (or both tokens outside mentions).
        Break,
        /// Ambiguous — excluded from the training loss.
        Unknown,
    }

    /// Encode spans into `len - 1` gap labels plus per-token type labels
    /// (`None` = outside all mentions).
    pub fn encode(len: usize, spans: &[Span]) -> (Vec<Gap>, Vec<Option<usize>>) {
        let mut types = vec![None; len];
        for s in spans {
            for i in s.start..s.end {
                types[i] = Some(s.class);
            }
        }
        let gaps = (0..len.saturating_sub(1))
            .map(|i| {
                let same_span = spans.iter().any(|s| i >= s.start && i + 1 < s.end);
                if same_span {
                    Gap::Tie
                } else {
                    Gap::Break
                }
            })
            .collect();
        (gaps, types)
    }

    /// Decode gap labels + type labels into spans. `Unknown` is treated as
    /// `Break` at inference time.
    pub fn decode(gaps: &[Gap], types: &[Option<usize>]) -> Vec<Span> {
        let len = types.len();
        let mut spans = Vec::new();
        let mut i = 0;
        while i < len {
            if let Some(c) = types[i] {
                let mut j = i;
                while j + 1 < len && gaps[j] == Gap::Tie && types[j + 1] == Some(c) {
                    j += 1;
                }
                spans.push(Span::new(i, j + 1, c));
                i = j + 1;
            } else {
                i += 1;
            }
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> TagScheme {
        TagScheme::new(&["PER", "ORG", "LOC"])
    }

    #[test]
    fn label_layout() {
        let s = scheme();
        assert_eq!(s.num_labels(), 7);
        assert_eq!(s.outside(), 0);
        assert_eq!(s.begin(0), 1);
        assert_eq!(s.inside(0), 2);
        assert_eq!(s.begin(2), 5);
        assert_eq!(s.class_of(5), Some(2));
        assert_eq!(s.class_of(0), None);
        assert!(s.is_begin(1));
        assert!(!s.is_begin(2));
        assert_eq!(s.label_name(0), "O");
        assert_eq!(s.label_name(3), "B-ORG");
        assert_eq!(s.label_name(4), "I-ORG");
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = scheme();
        let spans = vec![Span::new(0, 2, 0), Span::new(3, 4, 1), Span::new(4, 7, 2)];
        let tags = encode_spans(&s, 8, &spans);
        assert_eq!(tags, vec![1, 2, 0, 3, 5, 6, 6, 0]);
        assert_eq!(decode_spans(&s, &tags), spans);
    }

    #[test]
    fn adjacent_same_class_spans_stay_separate() {
        let s = scheme();
        let spans = vec![Span::new(0, 2, 0), Span::new(2, 3, 0)];
        let tags = encode_spans(&s, 3, &spans);
        assert_eq!(tags, vec![1, 2, 1]);
        assert_eq!(decode_spans(&s, &tags), spans);
    }

    #[test]
    fn decode_tolerates_orphan_inside() {
        let s = scheme();
        // I-PER with no B: starts a span anyway (conlleval behaviour).
        let spans = decode_spans(&s, &[0, 2, 2, 0]);
        assert_eq!(spans, vec![Span::new(1, 3, 0)]);
        // Class switch without B.
        let spans = decode_spans(&s, &[2, 4]);
        assert_eq!(spans, vec![Span::new(0, 1, 0), Span::new(1, 2, 1)]);
    }

    #[test]
    fn span_ends_at_sequence_end() {
        let s = scheme();
        let spans = decode_spans(&s, &[0, 1, 2]);
        assert_eq!(spans, vec![Span::new(1, 3, 0)]);
    }

    #[test]
    #[should_panic(expected = "overlapping spans")]
    fn encode_rejects_overlap() {
        let s = scheme();
        encode_spans(&s, 5, &[Span::new(0, 3, 0), Span::new(2, 4, 1)]);
    }

    #[test]
    fn tie_or_break_round_trip() {
        use tie_or_break::*;
        let spans = vec![Span::new(1, 3, 0), Span::new(4, 5, 2)];
        let (gaps, types) = encode(6, &spans);
        assert_eq!(gaps.len(), 5);
        assert_eq!(gaps[1], Gap::Tie);
        assert_eq!(gaps[0], Gap::Break);
        assert_eq!(types[4], Some(2));
        assert_eq!(decode(&gaps, &types), spans);
    }

    #[test]
    fn tie_or_break_splits_adjacent_entities() {
        use tie_or_break::*;
        // Two adjacent single-token entities of the same class: gap is Break.
        let spans = vec![Span::new(0, 1, 1), Span::new(1, 2, 1)];
        let (gaps, types) = encode(2, &spans);
        assert_eq!(gaps, vec![Gap::Break]);
        assert_eq!(decode(&gaps, &types), spans);
    }
}
