//! Hand-rolled finite-state matchers for the paper's "regular expression"
//! entity classes (§IV-B2): email, phone number, dates/date ranges, and age.
//!
//! Each matcher is a small deterministic scanner over ASCII; they accept the
//! surface forms produced by the synthetic resume generator and common
//! real-world variants, and deliberately reject close negatives (tested
//! below). No `regex` dependency: the grammar of each class is tiny.

/// True if `s` looks like an email address: `local@domain.tld[...]`, with a
/// non-empty alphanumeric/`._-` local part and at least one dot in the
/// domain.
pub fn is_email(s: &str) -> bool {
    let bytes = s.as_bytes();
    let Some(at) = s.find('@') else { return false };
    if at == 0 || at + 1 >= s.len() {
        return false;
    }
    let local = &bytes[..at];
    if !local
        .iter()
        .all(|&c| c.is_ascii_alphanumeric() || c == b'.' || c == b'_' || c == b'-')
    {
        return false;
    }
    let domain = &s[at + 1..];
    if s[at + 1..].contains('@') {
        return false;
    }
    let labels: Vec<&str> = domain.split('.').collect();
    if labels.len() < 2 {
        return false;
    }
    labels.iter().all(|l| {
        !l.is_empty()
            && l.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'-')
            && !l.starts_with('-')
            && !l.ends_with('-')
    })
}

/// True if `s` looks like a phone number: 7–15 digits, optionally grouped by
/// `-` or spaces, with an optional leading `+`.
pub fn is_phone(s: &str) -> bool {
    let s = s.strip_prefix('+').unwrap_or(s);
    if s.is_empty() {
        return false;
    }
    let mut digits = 0usize;
    let mut prev_sep = true; // cannot start with a separator
    for c in s.chars() {
        match c {
            '0'..='9' => {
                digits += 1;
                prev_sep = false;
            }
            '-' | ' ' => {
                if prev_sep {
                    return false;
                }
                prev_sep = true;
            }
            _ => return false,
        }
    }
    !prev_sep && (7..=15).contains(&digits)
}

/// True if `s` is a year-month token: `YYYY.MM`, `YYYY-MM`, or `YYYY/MM`
/// with a plausible year (1950–2035) and month (01–12).
pub fn is_year_month(s: &str) -> bool {
    let bytes = s.as_bytes();
    if bytes.len() != 7 {
        return false;
    }
    if !matches!(bytes[4], b'.' | b'-' | b'/') {
        return false;
    }
    let year: u32 = match s[..4].parse() {
        Ok(y) => y,
        Err(_) => return false,
    };
    let month: u32 = match s[5..7].parse() {
        Ok(m) => m,
        Err(_) => return false,
    };
    (1950..=2035).contains(&year) && (1..=12).contains(&month)
}

/// True if `s` is a bare plausible year (1950–2035).
pub fn is_year(s: &str) -> bool {
    s.len() == 4
        && s.parse::<u32>()
            .map(|y| (1950..=2035).contains(&y))
            .unwrap_or(false)
}

/// True if `s` is a date-range terminator meaning "ongoing".
pub fn is_present_marker(s: &str) -> bool {
    matches!(
        s.to_ascii_lowercase().as_str(),
        "present" | "now" | "current" | "today"
    )
}

/// True if `s` is a plausible age value (16–70).
pub fn is_age_value(s: &str) -> bool {
    s.parse::<u32>()
        .map(|a| (16..=70).contains(&a))
        .unwrap_or(false)
}

/// A date-range match inside a token stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DateRange {
    /// Index of the first token of the range.
    pub start: usize,
    /// One past the last token of the range.
    pub end: usize,
}

/// Find date ranges in a token stream.
///
/// Accepted shapes (each element is one token):
/// * `YYYY.MM - YYYY.MM` (three tokens) and the `Present` variant;
/// * `YYYY.MM-YYYY.MM` (single token containing an inner dash);
/// * a lone `YYYY.MM` token.
pub fn find_date_ranges(tokens: &[&str]) -> Vec<DateRange> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i];
        // Single-token compound range: "2018.09-2022.06".
        if t.len() == 15
            && is_year_month(&t[..7])
            && t.as_bytes()[7] == b'-'
            && is_year_month(&t[8..])
        {
            out.push(DateRange {
                start: i,
                end: i + 1,
            });
            i += 1;
            continue;
        }
        if is_year_month(t) {
            // Three-token range?
            if i + 2 < tokens.len()
                && tokens[i + 1] == "-"
                && (is_year_month(tokens[i + 2]) || is_present_marker(tokens[i + 2]))
            {
                out.push(DateRange {
                    start: i,
                    end: i + 3,
                });
                i += 3;
                continue;
            }
            out.push(DateRange {
                start: i,
                end: i + 1,
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn email_positive_and_negative_cases() {
        for good in [
            "li.wei@example.com",
            "zhang_3@mail.corp.cn",
            "a@b.co",
            "first-last@sub.domain.org",
        ] {
            assert!(is_email(good), "{good}");
        }
        for bad in [
            "@example.com",
            "liwei@",
            "liwei",
            "li wei@example.com",
            "liwei@nodot",
            "a@@b.com",
            "a@b..com",
            "a@-b.com",
        ] {
            assert!(!is_email(bad), "{bad}");
        }
    }

    #[test]
    fn phone_positive_and_negative_cases() {
        for good in [
            "13812345678",
            "+8613812345678",
            "010-6552-1234",
            "555 123 4567",
        ] {
            assert!(is_phone(good), "{good}");
        }
        for bad in [
            "123",
            "phone",
            "138-",
            "-138123456",
            "12345678901234567",
            "13 8a5678901",
        ] {
            assert!(!is_phone(bad), "{bad}");
        }
    }

    #[test]
    fn year_month_cases() {
        for good in ["2018.09", "1999-12", "2035/01"] {
            assert!(is_year_month(good), "{good}");
        }
        for bad in [
            "2018.13", "1949.05", "2036.01", "201809", "2018.9", "abcd.09",
        ] {
            assert!(!is_year_month(bad), "{bad}");
        }
        assert!(is_year("2020"));
        assert!(!is_year("1800"));
        assert!(!is_year("20x0"));
    }

    #[test]
    fn age_and_present() {
        assert!(is_age_value("27"));
        assert!(!is_age_value("12"));
        assert!(!is_age_value("99"));
        assert!(is_present_marker("Present"));
        assert!(is_present_marker("now"));
        assert!(!is_present_marker("presently"));
    }

    #[test]
    fn date_range_three_token_and_compound() {
        let toks = vec!["2018.09", "-", "2022.06", "x", "2019.01", "-", "Present"];
        let r = find_date_ranges(&toks);
        assert_eq!(
            r,
            vec![
                DateRange { start: 0, end: 3 },
                DateRange { start: 4, end: 7 }
            ]
        );

        let toks2 = vec!["2018.09-2022.06"];
        assert_eq!(
            find_date_ranges(&toks2),
            vec![DateRange { start: 0, end: 1 }]
        );

        let toks3 = vec!["joined", "2020.05", "as"];
        assert_eq!(
            find_date_ranges(&toks3),
            vec![DateRange { start: 1, end: 2 }]
        );
    }

    proptest! {
        #[test]
        fn prop_generated_emails_match(local in "[a-z][a-z0-9._]{0,10}", dom in "[a-z]{1,8}", tld in "[a-z]{2,4}") {
            let email = format!("{}@{}.{}", local, dom, tld);
            prop_assert!(is_email(&email));
        }

        #[test]
        fn prop_generated_phones_match(d in proptest::collection::vec(0u8..10, 7..=15)) {
            let s: String = d.iter().map(|x| char::from(b'0' + x)).collect();
            prop_assert!(is_phone(&s));
        }

        #[test]
        fn prop_valid_year_months_match(y in 1950u32..=2035, m in 1u32..=12) {
            let dotted = format!("{}.{:02}", y, m);
            let dashed = format!("{}-{:02}", y, m);
            prop_assert!(is_year_month(&dotted));
            prop_assert!(is_year_month(&dashed));
        }

        #[test]
        fn prop_random_words_rarely_match(s in "[a-z]{1,12}") {
            prop_assert!(!is_email(&s));
            prop_assert!(!is_phone(&s));
            prop_assert!(!is_year_month(&s));
        }
    }
}

/// True if `s` looks like a URL (`http://` / `https://` / `www.` with a
/// dotted host). Resume headers often carry portfolio links.
pub fn is_url(s: &str) -> bool {
    let rest = if let Some(r) = s.strip_prefix("https://") {
        r
    } else if let Some(r) = s.strip_prefix("http://") {
        r
    } else if s.starts_with("www.") {
        s
    } else {
        return false;
    };
    let host = rest.split('/').next().unwrap_or("");
    host.contains('.')
        && !host.starts_with('.')
        && !host.ends_with('.')
        && host
            .bytes()
            .all(|c| c.is_ascii_alphanumeric() || c == b'.' || c == b'-')
}

/// Month-name table for textual dates.
const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// True if `s` is a month name or a standard 3-letter abbreviation
/// ("Sep", "September").
pub fn is_month_name(s: &str) -> bool {
    let l = s.to_ascii_lowercase();
    let l = l.trim_end_matches('.');
    MONTHS
        .iter()
        .any(|m| *m == l || (l.len() == 3 && m.starts_with(l)))
}

/// True if the two tokens form a textual year-month ("Sep 2018").
pub fn is_textual_year_month(month: &str, year: &str) -> bool {
    is_month_name(month) && is_year(year)
}

#[cfg(test)]
mod extra_matcher_tests {
    use super::*;

    #[test]
    fn urls() {
        for good in [
            "https://github.com/liwei",
            "http://a.b.c/x",
            "www.example.com",
        ] {
            assert!(is_url(good), "{good}");
        }
        for bad in [
            "github.com",
            "https://nohost",
            "ftp://x.y",
            "www.",
            "https://.com",
        ] {
            assert!(!is_url(bad), "{bad}");
        }
    }

    #[test]
    fn month_names_and_textual_dates() {
        assert!(is_month_name("September"));
        assert!(is_month_name("Sep"));
        assert!(is_month_name("sep."));
        assert!(!is_month_name("Sept")); // 4-letter abbreviation not standard
        assert!(!is_month_name("Smarch"));
        assert!(is_textual_year_month("Sep", "2018"));
        assert!(!is_textual_year_month("Sep", "18"));
        assert!(!is_textual_year_month("Tuesday", "2018"));
    }
}
