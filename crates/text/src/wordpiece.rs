//! WordPiece tokenisation (greedy longest-match-first), as used to tokenize
//! sentence text in §IV-A1 of the paper.
//!
//! The vocabulary contains whole words and `##`-prefixed continuation
//! pieces. [`WordPiece::build`] derives both from a corpus: frequent words
//! become whole-word entries and all single characters (plus their `##`
//! forms) guarantee that tokenisation never fails for ASCII input.

use std::collections::HashMap;

use crate::vocab::{Vocab, UNK};

/// A WordPiece tokenizer over a shared [`Vocab`].
///
/// ```
/// use resuformer_text::WordPiece;
///
/// let corpus = ["data", "data", "base"].iter().map(|s| s.to_string());
/// let wp = WordPiece::build(corpus, 2);
/// let ids = wp.tokenize_word("database"); // "data" + "##b" "##a" ...
/// assert!(ids.len() > 1);
/// assert_eq!(wp.vocab.token(ids[0]), "data");
/// ```
#[derive(Clone, Debug)]
pub struct WordPiece {
    /// The underlying vocabulary (whole words + `##` pieces + specials).
    pub vocab: Vocab,
    max_chars_per_word: usize,
}

impl WordPiece {
    /// Wrap an existing vocabulary.
    pub fn from_vocab(vocab: Vocab) -> Self {
        WordPiece {
            vocab,
            max_chars_per_word: 64,
        }
    }

    /// Build a tokenizer from a word corpus.
    ///
    /// Words with frequency ≥ `min_freq` enter whole; every character seen
    /// enters both bare and as a `##` continuation so any word decomposes.
    pub fn build(words: impl Iterator<Item = String>, min_freq: usize) -> Self {
        let mut freq: HashMap<String, usize> = HashMap::new();
        let mut chars: Vec<char> = Vec::new();
        for w in words {
            let lw = w.to_lowercase();
            for c in lw.chars() {
                if !chars.contains(&c) {
                    chars.push(c);
                }
            }
            *freq.entry(lw).or_insert(0) += 1;
        }
        chars.sort_unstable();
        let mut vocab = Vocab::new();
        for &c in &chars {
            vocab.add(&c.to_string());
            vocab.add(&format!("##{c}"));
        }
        let mut entries: Vec<(String, usize)> = freq.into_iter().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (w, f) in entries {
            if f >= min_freq && w.chars().count() > 1 {
                vocab.add(&w);
            }
        }
        WordPiece::from_vocab(vocab)
    }

    /// Tokenize a single word into piece ids (greedy longest match).
    ///
    /// Unknown characters map the whole word to `[UNK]`, as in BERT.
    pub fn tokenize_word(&self, word: &str) -> Vec<usize> {
        let lw = word.to_lowercase();
        let chars: Vec<char> = lw.chars().collect();
        if chars.is_empty() {
            return Vec::new();
        }
        if chars.len() > self.max_chars_per_word {
            return vec![UNK];
        }
        let mut pieces = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut end = chars.len();
            let mut found = None;
            while end > start {
                let sub: String = chars[start..end].iter().collect();
                let candidate = if start == 0 { sub } else { format!("##{sub}") };
                if let Some(id) = self.vocab.get(&candidate) {
                    found = Some(id);
                    break;
                }
                end -= 1;
            }
            match found {
                Some(id) => {
                    pieces.push(id);
                    start = end;
                }
                None => return vec![UNK],
            }
        }
        pieces
    }

    /// Tokenize a sequence of words; returns piece ids and, for each piece,
    /// the index of the word it came from (needed to map layout boxes and
    /// word-level labels onto pieces).
    pub fn tokenize_words(&self, words: &[String]) -> (Vec<usize>, Vec<usize>) {
        let mut ids = Vec::new();
        let mut origins = Vec::new();
        for (wi, w) in words.iter().enumerate() {
            for id in self.tokenize_word(w) {
                ids.push(id);
                origins.push(wi);
            }
        }
        (ids, origins)
    }

    /// Reassemble piece ids into a display string (inverse up to casing).
    pub fn detokenize(&self, ids: &[usize]) -> String {
        let mut out = String::new();
        for &id in ids {
            let tok = self.vocab.token(id);
            if let Some(stripped) = tok.strip_prefix("##") {
                out.push_str(stripped);
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(tok);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WordPiece {
        let corpus = [
            "engineer",
            "engineer",
            "engineering",
            "beijing",
            "beijing",
            "ring",
        ];
        WordPiece::build(corpus.iter().map(|s| s.to_string()), 2)
    }

    #[test]
    fn frequent_words_stay_whole() {
        let wp = sample();
        let ids = wp.tokenize_word("engineer");
        assert_eq!(ids.len(), 1);
        assert_eq!(wp.vocab.token(ids[0]), "engineer");
    }

    #[test]
    fn rare_words_decompose_with_continuation_pieces() {
        let wp = sample();
        // "engineering" occurs only once (below min_freq), so it decomposes
        // into the frequent stem plus single-character continuations.
        let ids = wp.tokenize_word("engineering");
        assert!(ids.len() > 1, "should split into pieces");
        assert_eq!(wp.vocab.token(ids[0]), "engineer");
        assert!(ids[1..]
            .iter()
            .all(|&i| wp.vocab.token(i).starts_with("##")));
    }

    #[test]
    fn unknown_charset_maps_to_unk() {
        let wp = sample();
        assert_eq!(wp.tokenize_word("数据"), vec![UNK]);
    }

    #[test]
    fn tokenize_words_tracks_origins() {
        let wp = sample();
        let words = vec!["engineer".to_string(), "engineers".to_string()];
        let (ids, origins) = wp.tokenize_words(&words);
        assert_eq!(ids.len(), origins.len());
        assert_eq!(origins[0], 0);
        assert!(origins[1..].iter().all(|&o| o == 1));
    }

    #[test]
    fn detokenize_round_trips_lowercased() {
        let wp = sample();
        let words = vec!["Engineer".to_string(), "ring".to_string()];
        let (ids, _) = wp.tokenize_words(&words);
        assert_eq!(wp.detokenize(&ids), "engineer ring");
    }

    #[test]
    fn case_insensitive() {
        let wp = sample();
        assert_eq!(wp.tokenize_word("BEIJING"), wp.tokenize_word("beijing"));
    }
}
