//! The hierarchical multi-modal Transformer encoder (§IV-A1, Figure 2).
//!
//! * [`SentenceEncoder`]: a BERT-style encoder over WordPiece tokens with
//!   text (Eq. 1) + layout (Eq. 2) input embeddings; the `[CLS]` output is
//!   passed through a dense layer and L2-normalised to give the sentence
//!   representation `h_j`.
//! * [`DocumentEncoder`]: consumes the two-modal sentence embeddings
//!   `h*_j = [h_j ; v_j]` (sentence rep ⊕ visual region feature) plus
//!   sentence-level layout/position/segment embeddings, producing
//!   contextual representations `h'_j`.
//! * [`HierarchicalEncoder`] wires both together with the frozen
//!   [`VisualExtractor`], and exposes the intermediates the pre-training
//!   objectives need.

use rand::Rng;
use resuformer_doc::LayoutTuple;
use resuformer_nn::{Embedding, Linear, Module, TransformerEncoder};
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

use crate::config::ModelConfig;
use crate::data::{DocumentInput, SentenceInput};
use crate::embeddings::{LayoutEmbedding, TextEmbedding};
use crate::visual::VisualExtractor;

/// Modality switches for the document-level encoder (used by the extra
/// ablation benches; both on reproduces the paper's model).
#[derive(Clone, Copy, Debug)]
pub struct ModalityConfig {
    /// Feed visual region features (off → zeros).
    pub use_visual: bool,
    /// Feed sentence-level layout embeddings (off → omitted).
    pub use_layout: bool,
}

impl Default for ModalityConfig {
    fn default() -> Self {
        ModalityConfig {
            use_visual: true,
            use_layout: true,
        }
    }
}

/// Sentence-level Transformer encoder (6 layers in the paper).
pub struct SentenceEncoder {
    text: TextEmbedding,
    layout: LayoutEmbedding,
    encoder: TransformerEncoder,
    pool: Linear,
}

impl SentenceEncoder {
    /// New sentence encoder.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig) -> Self {
        SentenceEncoder {
            text: TextEmbedding::new(rng, config, config.max_sent_tokens),
            layout: LayoutEmbedding::new(rng, config),
            encoder: TransformerEncoder::new(
                rng,
                config.sent_layers,
                config.hidden,
                config.heads,
                config.ff,
                config.dropout,
            ),
            pool: Linear::new(rng, config.hidden, config.hidden),
        }
    }

    /// Input embeddings `o + u` (Eq. 1 + Eq. 2) for a token sequence.
    fn input_embeddings(&self, ids: &[usize], layouts: &[LayoutTuple]) -> Tensor {
        ops::add(&self.text.forward(ids), &self.layout.forward(layouts))
    }

    /// Contextual token outputs `[T, hidden]` (used by the MLM objective
    /// and the token-level baselines).
    pub fn forward_tokens(
        &self,
        ids: &[usize],
        layouts: &[LayoutTuple],
        train: bool,
        rng: &mut impl Rng,
    ) -> Tensor {
        let x = self.input_embeddings(ids, layouts);
        self.encoder.forward(&x, None, train, rng)
    }

    /// Sentence representation `h_j`: `[CLS]` output → dense → L2 norm,
    /// as a `[1, hidden]` row.
    pub fn encode(&self, s: &SentenceInput, train: bool, rng: &mut impl Rng) -> Tensor {
        let out = self.forward_tokens(&s.token_ids, &s.token_layouts, train, rng);
        let cls = ops::slice_rows(&out, 0, 1);
        ops::l2_normalize_rows(&self.pool.forward(&cls), 1e-6)
    }

    /// The word-embedding table (tied MLM output head).
    pub fn word_table(&self) -> &Tensor {
        self.text.word_table()
    }

    /// Apply the pooling dense layer (exposed for the pre-trainer, which
    /// computes sentence reps from its own masked token pass).
    pub fn pool_forward(&self, cls: &Tensor) -> Tensor {
        self.pool.forward(cls)
    }
}

impl Module for SentenceEncoder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.text.parameters();
        p.extend(self.layout.parameters());
        p.extend(self.encoder.parameters());
        p.extend(self.pool.parameters());
        p
    }
}

/// Document-level Transformer encoder (4 layers in the paper).
pub struct DocumentEncoder {
    proj: Linear,
    layout: LayoutEmbedding,
    position: Embedding,
    segment: Embedding,
    encoder: TransformerEncoder,
    hidden: usize,
    visual_dim: usize,
}

impl DocumentEncoder {
    /// New document encoder.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig) -> Self {
        DocumentEncoder {
            proj: Linear::new(rng, config.hidden + config.visual_dim, config.hidden),
            layout: LayoutEmbedding::new(rng, config),
            position: Embedding::new(rng, config.max_doc_sentences, config.hidden),
            segment: Embedding::new(rng, 2, config.hidden),
            encoder: TransformerEncoder::new(
                rng,
                config.doc_layers,
                config.hidden,
                config.heads,
                config.ff,
                config.dropout,
            ),
            hidden: config.hidden,
            visual_dim: config.visual_dim,
        }
    }

    /// Width of the two-modal concat `[h ; v]` this encoder consumes.
    pub fn input_dim(&self) -> usize {
        self.hidden + self.visual_dim
    }

    /// Build the document-level input embeddings from the two-modal
    /// sentence embeddings `h*` (`[m, hidden + visual]`): projection +
    /// layout + 1-D position + segment.
    pub fn input_reps(
        &self,
        h_star: &Tensor,
        layouts: &[LayoutTuple],
        modality: ModalityConfig,
    ) -> Tensor {
        let m = h_star.dims()[0];
        assert_eq!(layouts.len(), m, "layouts/sentences mismatch");
        // Clamp positions so over-long documents degrade (shared final
        // position) instead of panicking on the table lookup.
        let max_pos = self.position.num() - 1;
        let positions: Vec<usize> = (0..m).map(|i| i.min(max_pos)).collect();
        let segments = vec![0usize; m];
        let mut x = self.proj.forward(h_star);
        if modality.use_layout {
            x = ops::add(&x, &self.layout.forward(layouts));
        }
        x = ops::add(&x, &self.position.forward(&positions));
        ops::add(&x, &self.segment.forward(&segments))
    }

    /// Run the encoder over prepared input embeddings → `[m, hidden]`.
    pub fn forward(&self, input_reps: &Tensor, train: bool, rng: &mut impl Rng) -> Tensor {
        self.encoder.forward(input_reps, None, train, rng)
    }
}

impl Module for DocumentEncoder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.proj.parameters();
        p.extend(self.layout.parameters());
        p.extend(self.position.parameters());
        p.extend(self.segment.parameters());
        p.extend(self.encoder.parameters());
        p
    }
}

/// The full hierarchical multi-modal encoder.
pub struct HierarchicalEncoder {
    /// Sentence-level encoder.
    pub sentence: SentenceEncoder,
    /// Document-level encoder.
    pub document: DocumentEncoder,
    /// Frozen visual extractor.
    pub visual: VisualExtractor,
    /// Modality switches (both on = the paper's model).
    pub modality: ModalityConfig,
    hidden: usize,
}

impl HierarchicalEncoder {
    /// New encoder with all modalities enabled.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig) -> Self {
        config.validate();
        HierarchicalEncoder {
            sentence: SentenceEncoder::new(rng, config),
            document: DocumentEncoder::new(rng, config),
            visual: VisualExtractor::new(rng, config.visual_dim),
            modality: ModalityConfig::default(),
            hidden: config.hidden,
        }
    }

    /// Model width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Two-modal sentence embeddings `H* = {[h_j ; v_j]}` → `[m, h+v]`.
    pub fn sentence_reps(&self, doc: &DocumentInput, train: bool, rng: &mut impl Rng) -> Tensor {
        assert!(!doc.is_empty(), "cannot encode an empty document");
        let h_rows: Vec<Tensor> = doc
            .sentences
            .iter()
            .map(|s| self.sentence.encode(s, train, rng))
            .collect();
        let h = ops::concat_rows(&h_rows);
        let v = if self.modality.use_visual {
            let patches: Vec<Vec<f32>> = doc.sentences.iter().map(|s| s.patch.clone()).collect();
            self.visual.extract_batch(&patches)
        } else {
            Tensor::constant(NdArray::zeros([doc.len(), self.visual.dim()]))
        };
        ops::concat_cols(&[h, v])
    }

    /// Sentence-level layout tuples of a document.
    pub fn doc_layouts(doc: &DocumentInput) -> Vec<LayoutTuple> {
        doc.sentences.iter().map(|s| s.layout).collect()
    }

    /// Full forward: document → contextual sentence representations
    /// `H_d = {h'_j}` (`[m, hidden]`).
    pub fn encode_document(&self, doc: &DocumentInput, train: bool, rng: &mut impl Rng) -> Tensor {
        let h_star = self.sentence_reps(doc, train, rng);
        let layouts = Self::doc_layouts(doc);
        let input = self.document.input_reps(&h_star, &layouts, self.modality);
        self.document.forward(&input, train, rng)
    }
}

impl Module for HierarchicalEncoder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.sentence.parameters();
        p.extend(self.document.parameters());
        // visual is frozen: contributes nothing.
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{build_tokenizer, prepare_document};
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_tensor::init::seeded_rng;

    fn sample_input() -> (DocumentInput, ModelConfig) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(r.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let (input, _) = prepare_document(&r.doc, &wp, &config);
        (input, config)
    }

    #[test]
    fn sentence_reps_are_unit_norm() {
        let (input, config) = sample_input();
        let enc = HierarchicalEncoder::new(&mut seeded_rng(2), &config);
        let mut rng = seeded_rng(3);
        let h = enc
            .sentence
            .encode(&input.sentences[0], false, &mut rng)
            .value();
        let norm: f32 = h.data().iter().map(|&v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "norm {}", norm);
    }

    #[test]
    fn encode_document_shape() {
        let (input, config) = sample_input();
        let enc = HierarchicalEncoder::new(&mut seeded_rng(4), &config);
        let mut rng = seeded_rng(5);
        let out = enc.encode_document(&input, false, &mut rng);
        assert_eq!(out.dims(), vec![input.len(), config.hidden]);
        assert!(out.value().all_finite());
    }

    #[test]
    fn disabling_visual_changes_output() {
        let (input, config) = sample_input();
        let mut enc = HierarchicalEncoder::new(&mut seeded_rng(6), &config);
        let a = enc
            .encode_document(&input, false, &mut seeded_rng(0))
            .value();
        enc.modality.use_visual = false;
        let b = enc
            .encode_document(&input, false, &mut seeded_rng(0))
            .value();
        assert_ne!(a.data(), b.data(), "visual modality must affect the output");
    }

    #[test]
    fn gradients_flow_to_both_levels() {
        let (input, config) = sample_input();
        let enc = HierarchicalEncoder::new(&mut seeded_rng(7), &config);
        let mut rng = seeded_rng(8);
        let out = enc.encode_document(&input, false, &mut rng);
        ops::mean_all(&ops::square(&out)).backward();
        let with_grad = enc
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        // Every parameter except unused embedding rows should get a grad;
        // at minimum, both encoders contribute.
        assert!(with_grad > enc.document.parameters().len());
    }

    #[test]
    fn paper_config_parameter_count_is_plausible() {
        // Sanity: the paper-scale encoder should land in the tens of
        // millions of parameters (RoBERTa-6L class).
        let config = ModelConfig::paper(21_128);
        let enc = HierarchicalEncoder::new(&mut seeded_rng(9), &config);
        let n = enc.num_parameters();
        assert!(n > 30_000_000 && n < 200_000_000, "params {}", n);
    }
}
