//! The distantly-supervised NER model (§IV-B3): BERT + BiLSTM + MLP.
//!
//! Token-level, text-only (the paper's intra-block extractor does not use
//! layout), producing per-token logits over the 25 entity IOB labels.
//! Prediction is per-token argmax (the MLP head of the paper, in contrast
//! to the CRF-decoding baselines).

use rand::Rng;
use resuformer_nn::linear::Activation;
use resuformer_nn::{BiLstm, Mlp, Module, TransformerEncoder};
use resuformer_tensor::ops;
use resuformer_tensor::Tensor;
use resuformer_text::TagScheme;

use crate::config::ModelConfig;
use crate::data::entity_tag_scheme;
use crate::embeddings::TextEmbedding;

/// Architecture of the NER tagger.
#[derive(Clone, Copy, Debug)]
pub struct NerConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Encoder width.
    pub hidden: usize,
    /// Encoder depth (paper: 12-layer RoBERTa; scaled down here).
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width.
    pub ff: usize,
    /// BiLSTM hidden size per direction (paper: 256).
    pub lstm_hidden: usize,
    /// Maximum sequence length.
    pub max_len: usize,
}

impl NerConfig {
    /// CPU-scale configuration.
    pub fn tiny(vocab_size: usize) -> Self {
        NerConfig {
            vocab_size,
            hidden: 32,
            layers: 2,
            heads: 2,
            ff: 64,
            lstm_hidden: 16,
            max_len: 96,
        }
    }

    /// Derive from a [`ModelConfig`].
    pub fn from_model(config: &ModelConfig) -> Self {
        NerConfig {
            vocab_size: config.vocab_size,
            hidden: config.hidden,
            layers: config.sent_layers,
            heads: config.heads,
            ff: config.ff,
            lstm_hidden: (config.hidden / 2).max(4),
            max_len: 128,
        }
    }
}

/// BERT+BiLSTM+MLP token tagger over the entity IOB labels.
pub struct NerModel {
    embed: TextEmbedding,
    encoder: TransformerEncoder,
    bilstm: BiLstm,
    mlp: Mlp,
    scheme: TagScheme,
    config: NerConfig,
}

impl NerModel {
    /// New model.
    pub fn new(rng: &mut impl Rng, config: NerConfig) -> Self {
        let scheme = entity_tag_scheme();
        let model_cfg = ModelConfig {
            vocab_size: config.vocab_size,
            hidden: config.hidden,
            sent_layers: config.layers,
            doc_layers: 1,
            heads: config.heads,
            ff: config.ff,
            dropout: 0.0,
            max_sent_tokens: config.max_len,
            max_doc_sentences: 2,
            visual_dim: 8,
            coord_buckets: 8,
            max_pages: 2,
        };
        NerModel {
            embed: TextEmbedding::new(rng, &model_cfg, config.max_len),
            encoder: TransformerEncoder::new(
                rng,
                config.layers,
                config.hidden,
                config.heads,
                config.ff,
                0.0,
            ),
            bilstm: BiLstm::new(rng, config.hidden, config.lstm_hidden),
            mlp: Mlp::new(
                rng,
                &[2 * config.lstm_hidden, config.hidden, scheme.num_labels()],
                Activation::Tanh,
            ),
            scheme,
            config,
        }
    }

    /// A fresh model with identical architecture (for the teacher/student
    /// pair of Algorithm 2).
    pub fn new_like(&self, rng: &mut impl Rng) -> NerModel {
        NerModel::new(rng, self.config)
    }

    /// The entity tag scheme.
    pub fn scheme(&self) -> &TagScheme {
        &self.scheme
    }

    /// The architecture this model was built with (for persistence).
    pub fn config(&self) -> &NerConfig {
        &self.config
    }

    /// Truncate ids to the model maximum.
    fn clip<'a>(&self, ids: &'a [usize]) -> &'a [usize] {
        &ids[..ids.len().min(self.config.max_len)]
    }

    /// Per-token logits `[T, labels]`.
    pub fn logits(&self, token_ids: &[usize], train: bool, rng: &mut impl Rng) -> Tensor {
        let ids = self.clip(token_ids);
        assert!(!ids.is_empty(), "empty NER input");
        let x = self.embed.forward(ids);
        let h = self.encoder.forward(&x, None, train, rng);
        self.mlp.forward(&self.bilstm.forward(&h))
    }

    /// Per-token probability rows `[T, labels]` (softmax of logits).
    pub fn probs(&self, token_ids: &[usize], rng: &mut impl Rng) -> Tensor {
        ops::softmax_rows(&self.logits(token_ids, false, rng))
    }

    /// Cross-entropy loss against hard labels.
    pub fn loss(&self, token_ids: &[usize], labels: &[usize], rng: &mut impl Rng) -> Tensor {
        let ids = self.clip(token_ids);
        let labels = &labels[..ids.len()];
        let logits = self.logits(ids, true, rng);
        ops::cross_entropy_rows(&logits, labels, None)
    }

    /// Argmax-decoded labels (clipped to `max_len`, padded with O beyond).
    pub fn predict(&self, token_ids: &[usize], rng: &mut impl Rng) -> Vec<usize> {
        let ids = self.clip(token_ids);
        if ids.is_empty() {
            return vec![self.scheme.outside(); token_ids.len()];
        }
        let logits = self.logits(ids, false, rng).value();
        let labels = self.scheme.num_labels();
        let mut out: Vec<usize> = (0..ids.len())
            .map(|t| {
                let row = logits.row(t);
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate().take(labels) {
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
                best
            })
            .collect();
        out.resize(token_ids.len(), self.scheme.outside());
        out
    }
}

impl Module for NerModel {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.embed.parameters();
        p.extend(self.encoder.parameters());
        p.extend(self.bilstm.parameters());
        p.extend(self.mlp.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_nn::Adam;
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn shapes_and_prediction_range() {
        let mut rng = seeded_rng(1);
        let m = NerModel::new(&mut rng, NerConfig::tiny(50));
        let ids = vec![2, 10, 11, 12];
        let logits = m.logits(&ids, false, &mut rng);
        assert_eq!(logits.dims(), vec![4, m.scheme().num_labels()]);
        let pred = m.predict(&ids, &mut rng);
        assert_eq!(pred.len(), 4);
        assert!(pred.iter().all(|&l| l < m.scheme().num_labels()));
    }

    #[test]
    fn long_inputs_clip_and_pad_with_outside() {
        let mut rng = seeded_rng(2);
        let mut cfg = NerConfig::tiny(50);
        cfg.max_len = 4;
        let m = NerModel::new(&mut rng, cfg);
        let ids = vec![7; 10];
        let pred = m.predict(&ids, &mut rng);
        assert_eq!(pred.len(), 10);
        assert!(pred[4..].iter().all(|&l| l == m.scheme().outside()));
    }

    #[test]
    fn new_like_matches_architecture() {
        let mut rng = seeded_rng(3);
        let a = NerModel::new(&mut rng, NerConfig::tiny(50));
        let b = a.new_like(&mut rng);
        assert_eq!(a.num_parameters(), b.num_parameters());
        // Parameters can be copied across (used by Algorithm 2).
        b.copy_parameters_from(&a);
        let mut r1 = seeded_rng(4);
        let mut r2 = seeded_rng(4);
        let ids = vec![2, 9, 9];
        assert_eq!(
            a.logits(&ids, false, &mut r1).value().data(),
            b.logits(&ids, false, &mut r2).value().data()
        );
    }

    #[test]
    fn trains_to_memorise_tags() {
        let mut rng = seeded_rng(5);
        let m = NerModel::new(&mut rng, NerConfig::tiny(50));
        let ids = vec![2, 10, 11, 12, 13];
        let labels = vec![0, 1, 2, 0, 3];
        let mut opt = Adam::new(m.parameters(), 3e-3, 0.0);
        for _ in 0..60 {
            opt.zero_grad();
            let loss = m.loss(&ids, &labels, &mut rng);
            loss.backward();
            opt.step();
        }
        assert_eq!(m.predict(&ids, &mut rng), labels);
    }
}
