//! # resuformer
//!
//! A from-scratch Rust reproduction of **ResuFormer: Semantic Structure
//! Understanding for Resumes via Multi-Modal Pre-training** (ICDE 2023).
//!
//! ResuFormer decomposes resume understanding into two tasks:
//!
//! 1. **Resume block classification** — sentence-level IOB labeling of the
//!    eight semantic block classes, using a *hierarchical multi-modal
//!    Transformer*: a sentence-level encoder over tokens+layout
//!    ([`encoder::SentenceEncoder`]), and a document-level encoder over
//!    sentence representations + visual region features + sentence layout
//!    ([`encoder::DocumentEncoder`]). The encoder is pre-trained with three
//!    self-supervised objectives ([`pretrain`]): the masked layout-language
//!    model, self-supervised contrastive learning over dynamically masked
//!    sentences, and dynamic next-sentence prediction. Fine-tuning stacks a
//!    BiLSTM+MLP+CRF head ([`block_classifier::BlockClassifier`]), and
//!    knowledge distillation from a token-level teacher augments the
//!    labeled data ([`distill`], Algorithm 1).
//!
//! 2. **Intra-block information extraction** — token-level NER inside each
//!    segmented block, trained with *distant supervision*: dictionaries /
//!    matchers / heuristics auto-annotate the data ([`annotate`]), a
//!    BERT+BiLSTM+MLP tagger ([`ner::NerModel`]) is trained through the
//!    self-distillation self-training loop of Algorithm 2
//!    ([`self_training`]) with squared-re-weighted soft labels (Eq. 9) and
//!    high-confidence token selection (Eq. 11).
//!
//! [`pipeline::ResumeParser`] glues both stages into the end-to-end
//! resume → structured-record parser deployed in the paper's case study.

#![warn(missing_docs)]

pub mod annotate;
pub mod block_classifier;
pub mod config;
pub mod data;
pub mod distill;
pub mod embeddings;
pub mod encoder;
pub mod model_io;
pub mod ner;
pub mod pipeline;
pub mod pretrain;
pub mod self_training;
pub mod visual;

pub use block_classifier::BlockClassifier;
pub use config::{ModelConfig, PretrainConfig, SyncMode};
pub use data::{block_tag_scheme, entity_tag_scheme, DocumentInput};
pub use encoder::HierarchicalEncoder;
pub use model_io::{
    load_bundle, load_checkpoint, load_model, save_bundle, save_checkpoint, save_model,
    CheckpointMeta, ModelBundle, TrainCheckpoint,
};
pub use pipeline::{EntityExtractor, ResumeParser};
