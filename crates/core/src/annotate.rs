//! Automatic data annotation for distant supervision (§IV-B1/2).
//!
//! Blocks are labeled by three mechanisms, in precision order:
//!
//! 1. **pattern matchers** (the paper's regular expressions): email, phone
//!    number, date ranges;
//! 2. **dictionary matching**: exact surface matches against the entity
//!    dictionaries (college / major / company / position / project /
//!    degree / gender);
//! 3. **heuristic rules**: person names start with a common family name
//!    near the top of the personal-information block; ages are plausible
//!    numbers next to an `Age:` prefix or a `years old` suffix.
//!
//! Earlier mechanisms win on overlap. Because the dictionaries have
//! incomplete coverage, distant labels carry exactly the incomplete/noisy
//! label regime the self-training framework targets.

use resuformer_datagen::{BlockType, Dictionaries, EntityType, LabeledResume};
use resuformer_text::iob::{encode_spans, Span};
use resuformer_text::matchers;
use resuformer_text::{TagScheme, Vocab};

/// One NER instance: a segmented block with distant and gold labels.
#[derive(Clone, Debug)]
pub struct AnnotatedBlock {
    /// The block's semantic class.
    pub block_type: BlockType,
    /// Word tokens of the block, in reading order.
    pub tokens: Vec<String>,
    /// Vocabulary ids of the tokens (word-level; `[UNK]` for OOV).
    pub token_ids: Vec<usize>,
    /// Distantly-supervised IOB labels (dictionaries + matchers + rules).
    pub distant_labels: Vec<usize>,
    /// Gold IOB labels from the generator's ground truth.
    pub gold_labels: Vec<usize>,
}

impl AnnotatedBlock {
    /// Number of gold entities in the block.
    pub fn num_gold_entities(&self, scheme: &TagScheme) -> usize {
        resuformer_text::decode_spans(scheme, &self.gold_labels).len()
    }

    /// Number of distantly-matched entities in the block.
    pub fn num_distant_entities(&self, scheme: &TagScheme) -> usize {
        resuformer_text::decode_spans(scheme, &self.distant_labels).len()
    }
}

/// Group a labeled resume's tokens into block instances, in reading order.
pub fn extract_blocks(resume: &LabeledResume) -> Vec<(BlockType, Vec<usize>)> {
    let mut blocks: Vec<((BlockType, usize), Vec<usize>)> = Vec::new();
    for (i, &key) in resume.token_blocks.iter().enumerate() {
        match blocks.last_mut() {
            Some((k, idxs)) if *k == key => idxs.push(i),
            _ => blocks.push((key, vec![i])),
        }
    }
    blocks
        .into_iter()
        .map(|((ty, _), idxs)| (ty, idxs))
        .collect()
}

/// Gold IOB labels for a token-index run, from the generator ground truth.
pub fn gold_labels(resume: &LabeledResume, token_idx: &[usize], scheme: &TagScheme) -> Vec<usize> {
    let mut spans: Vec<Span> = Vec::new();
    let mut open: Option<(usize, EntityType)> = None;
    for (pos, &ti) in token_idx.iter().enumerate() {
        let ent = resume.token_entities[ti];
        match (open, ent) {
            (Some((_, oc)), Some(c)) if oc == c => {}
            (prev, cur) => {
                if let Some((start, oc)) = prev {
                    spans.push(Span::new(start, pos, oc.index()));
                }
                open = cur.map(|c| (pos, c));
            }
        }
    }
    if let Some((start, oc)) = open {
        spans.push(Span::new(start, token_idx.len(), oc.index()));
    }
    encode_spans(scheme, token_idx.len(), &spans)
}

/// Distant IOB labels for a block's tokens.
pub fn distant_labels(
    tokens: &[String],
    block_type: BlockType,
    dicts: &Dictionaries,
    scheme: &TagScheme,
) -> Vec<usize> {
    let refs: Vec<&str> = tokens.iter().map(|s| s.as_str()).collect();
    let mut taken = vec![false; tokens.len()];
    let mut spans: Vec<Span> = Vec::new();
    let claim =
        |start: usize, end: usize, class: usize, taken: &mut [bool], spans: &mut Vec<Span>| {
            if end <= start || end > taken.len() {
                return;
            }
            if taken[start..end].iter().any(|&t| t) {
                return;
            }
            for t in &mut taken[start..end] {
                *t = true;
            }
            spans.push(Span::new(start, end, class));
        };

    // 1) Pattern matchers: email, phone, date ranges.
    for (i, tok) in refs.iter().enumerate() {
        if matchers::is_email(tok) {
            claim(i, i + 1, EntityType::Email.index(), &mut taken, &mut spans);
        } else if matchers::is_phone(tok) && tok.chars().filter(|c| c.is_ascii_digit()).count() >= 7
        {
            claim(
                i,
                i + 1,
                EntityType::PhoneNum.index(),
                &mut taken,
                &mut spans,
            );
        }
    }
    for range in matchers::find_date_ranges(&refs) {
        claim(
            range.start,
            range.end,
            EntityType::Date.index(),
            &mut taken,
            &mut spans,
        );
    }

    // 2) Dictionary matching.
    for m in dicts.trie.find_all(&refs) {
        claim(m.start, m.end, m.class, &mut taken, &mut spans);
    }

    // 3) Heuristic rules.
    if block_type == BlockType::PInfo {
        // Person name: a family-name token near the top of the block,
        // optionally followed by one capitalised given-name token.
        for i in 0..refs.len().min(12) {
            if taken[i] {
                continue;
            }
            if dicts.family_names.iter().any(|f| f == refs[i]) {
                let mut end = i + 1;
                if end < refs.len()
                    && !taken[end]
                    && refs[end]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                    && refs[end].chars().all(|c| c.is_ascii_alphabetic())
                {
                    end += 1;
                }
                claim(i, end, EntityType::Name.index(), &mut taken, &mut spans);
                break;
            }
        }
        // Age: a plausible number next to an "Age :" prefix or a
        // "years old" suffix.
        for i in 0..refs.len() {
            if taken[i] || !matchers::is_age_value(refs[i]) {
                continue;
            }
            let has_prefix =
                i >= 2 && refs[i - 1] == ":" && refs[i - 2].eq_ignore_ascii_case("age");
            let has_suffix = i + 2 < refs.len()
                && refs[i + 1].eq_ignore_ascii_case("years")
                && refs[i + 2].eq_ignore_ascii_case("old");
            if has_prefix || has_suffix {
                claim(i, i + 1, EntityType::Age.index(), &mut taken, &mut spans);
            }
        }
    }

    spans.sort_by_key(|s| s.start);
    encode_spans(scheme, tokens.len(), &spans)
}

/// Build the NER dataset from a document set: every PInfo / EduExp /
/// WorkExp / ProjExp block becomes an instance carrying both label sets.
///
/// `require_match` keeps only instances with ≥ 1 distantly-matched entity
/// (the paper's training-set construction); validation/test sets keep all.
pub fn build_ner_dataset(
    resumes: &[LabeledResume],
    dicts: &Dictionaries,
    vocab: &Vocab,
    scheme: &TagScheme,
    require_match: bool,
) -> Vec<AnnotatedBlock> {
    let mut out = Vec::new();
    for resume in resumes {
        for (block_type, token_idx) in extract_blocks(resume) {
            if !matches!(
                block_type,
                BlockType::PInfo | BlockType::EduExp | BlockType::WorkExp | BlockType::ProjExp
            ) {
                continue;
            }
            let tokens: Vec<String> = token_idx
                .iter()
                .map(|&i| resume.doc.tokens[i].text.clone())
                .collect();
            let distant = distant_labels(&tokens, block_type, dicts, scheme);
            let gold = gold_labels(resume, &token_idx, scheme);
            let token_ids = tokens.iter().map(|w| vocab.id(&w.to_lowercase())).collect();
            let block = AnnotatedBlock {
                block_type,
                tokens,
                token_ids,
                distant_labels: distant,
                gold_labels: gold,
            };
            if !require_match || block.num_distant_entities(scheme) >= 1 {
                out.push(block);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::entity_tag_scheme;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_datagen::DictionaryConfig;
    use resuformer_text::decode_spans;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn matcher_classes_label_correctly() {
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let scheme = entity_tag_scheme();
        let toks = strs(&[
            "Email",
            ":",
            "li.wei3@example.com",
            "Phone",
            ":",
            "13812345678",
        ]);
        let labels = distant_labels(&toks, BlockType::PInfo, &dicts, &scheme);
        let spans = decode_spans(&scheme, &labels);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].class, EntityType::Email.index());
        assert_eq!(spans[1].class, EntityType::PhoneNum.index());
    }

    #[test]
    fn date_ranges_and_dictionary_entities() {
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let scheme = entity_tag_scheme();
        let toks = strs(&[
            "2018.09",
            "-",
            "2022.06",
            "Northlake",
            "University",
            "Computer",
            "Science",
            "Bachelor",
        ]);
        let labels = distant_labels(&toks, BlockType::EduExp, &dicts, &scheme);
        let spans = decode_spans(&scheme, &labels);
        let classes: Vec<usize> = spans.iter().map(|s| s.class).collect();
        assert!(classes.contains(&EntityType::Date.index()));
        assert!(classes.contains(&EntityType::College.index()));
        assert!(classes.contains(&EntityType::Major.index()));
        assert!(classes.contains(&EntityType::Degree.index()));
    }

    #[test]
    fn name_and_age_heuristics() {
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let scheme = entity_tag_scheme();
        let toks = strs(&["Li", "Wei", "Male", "|", "27", "years", "old"]);
        let labels = distant_labels(&toks, BlockType::PInfo, &dicts, &scheme);
        let spans = decode_spans(&scheme, &labels);
        let name = spans.iter().find(|s| s.class == EntityType::Name.index());
        assert_eq!(name.map(|s| (s.start, s.end)), Some((0, 2)));
        assert!(spans.iter().any(|s| s.class == EntityType::Age.index()));
        assert!(spans.iter().any(|s| s.class == EntityType::Gender.index()));
    }

    #[test]
    fn age_heuristic_requires_context() {
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let scheme = entity_tag_scheme();
        // A bare plausible number without Age:/years-old context: no label.
        let toks = strs(&["managed", "27", "services"]);
        let labels = distant_labels(&toks, BlockType::PInfo, &dicts, &scheme);
        assert!(labels.iter().all(|&l| l == scheme.outside()));
    }

    #[test]
    fn incomplete_dictionary_misses_entities() {
        let scheme = entity_tag_scheme();
        let toks = strs(&[
            "Skyline",
            "University",
            "of",
            "Science",
            "and",
            "Technology",
        ]);
        let full = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let sparse = Dictionaries::build(DictionaryConfig { coverage: 0.2 });
        let full_spans = decode_spans(
            &scheme,
            &distant_labels(&toks, BlockType::EduExp, &full, &scheme),
        );
        let sparse_spans = decode_spans(
            &scheme,
            &distant_labels(&toks, BlockType::EduExp, &sparse, &scheme),
        );
        assert!(!full_spans.is_empty());
        // "Skyline" is the last college stem — outside 20% coverage.
        assert!(sparse_spans
            .iter()
            .all(|s| s.class != EntityType::College.index()));
    }

    #[test]
    fn gold_labels_round_trip_generator_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let scheme = entity_tag_scheme();
        for (ty, idxs) in extract_blocks(&r) {
            let labels = gold_labels(&r, &idxs, &scheme);
            assert_eq!(labels.len(), idxs.len());
            // Every labeled token must map back to a ground-truth entity.
            for (pos, &ti) in idxs.iter().enumerate() {
                let has_gold = r.token_entities[ti].is_some();
                let has_label = labels[pos] != scheme.outside();
                assert_eq!(has_gold, has_label, "block {:?} pos {}", ty, pos);
            }
        }
    }

    #[test]
    fn dataset_covers_ner_blocks_and_filters() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let resumes: Vec<_> = (0..4)
            .map(|_| generate_resume(&mut rng, &GeneratorConfig::smoke()))
            .collect();
        let dicts = Dictionaries::build(DictionaryConfig::default());
        let scheme = entity_tag_scheme();
        let vocab = Vocab::build(
            resumes
                .iter()
                .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
            1,
        );
        let all = build_ner_dataset(&resumes, &dicts, &vocab, &scheme, false);
        let filtered = build_ner_dataset(&resumes, &dicts, &vocab, &scheme, true);
        assert!(!all.is_empty());
        assert!(filtered.len() <= all.len());
        assert!(filtered
            .iter()
            .all(|b| b.num_distant_entities(&scheme) >= 1));
        assert!(all.iter().all(|b| matches!(
            b.block_type,
            BlockType::PInfo | BlockType::EduExp | BlockType::WorkExp | BlockType::ProjExp
        )));
    }

    #[test]
    fn distant_recall_is_below_gold_at_partial_coverage() {
        // The designed noise: distant labels must systematically miss some
        // gold entities when coverage < 1.
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let resumes: Vec<_> = (0..6)
            .map(|_| generate_resume(&mut rng, &GeneratorConfig::smoke()))
            .collect();
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 0.5 });
        let scheme = entity_tag_scheme();
        let vocab = Vocab::build(
            resumes
                .iter()
                .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
            1,
        );
        let data = build_ner_dataset(&resumes, &dicts, &vocab, &scheme, false);
        let gold: usize = data.iter().map(|b| b.num_gold_entities(&scheme)).sum();
        let distant: usize = data.iter().map(|b| b.num_distant_entities(&scheme)).sum();
        assert!(gold > 0);
        assert!(
            distant < gold,
            "distant ({distant}) should miss some gold ({gold}) entities"
        );
    }
}

/// Expand a distant training set with augmented copies (§IV-B2): mention
/// replacement and entity reorder over the *distant* labels. Augmented
/// instances are for training only; their `gold_labels` mirror the distant
/// labels (they have no expert annotation).
pub fn augment_dataset(
    blocks: &[AnnotatedBlock],
    copies_per_block: usize,
    vocab: &resuformer_text::Vocab,
    rng: &mut impl rand::Rng,
) -> Vec<AnnotatedBlock> {
    use resuformer_datagen::augment::{reorder_entities, replace_mentions, NerInstance};

    let scheme = crate::data::entity_tag_scheme();
    let mut out = Vec::with_capacity(blocks.len() * (1 + copies_per_block));
    out.extend_from_slice(blocks);
    for block in blocks {
        // Rebuild the per-token entity view from the distant labels.
        let labels: Vec<Option<resuformer_datagen::EntityType>> = block
            .distant_labels
            .iter()
            .map(|&l| {
                scheme
                    .class_of(l)
                    .map(|c| resuformer_datagen::EntityType::ALL[c])
            })
            .collect();
        let inst = NerInstance {
            tokens: block.tokens.clone(),
            labels,
        };
        for _ in 0..copies_per_block {
            let replaced = replace_mentions(rng, &inst, 0.5);
            let shuffled = if rng.gen_bool(0.3) {
                reorder_entities(rng, &replaced)
            } else {
                replaced
            };
            // Re-encode to IOB over contiguous runs.
            let spans: Vec<resuformer_text::Span> = {
                let mut spans = Vec::new();
                for (start, end, class) in shuffled
                    .entity_runs()
                    .iter()
                    .map(|&(s, e, c)| (s, e, c.index()))
                {
                    spans.push(resuformer_text::Span::new(start, end, class));
                }
                spans
            };
            let labels = resuformer_text::encode_spans(&scheme, shuffled.tokens.len(), &spans);
            let token_ids = shuffled
                .tokens
                .iter()
                .map(|w| vocab.id(&w.to_lowercase()))
                .collect();
            out.push(AnnotatedBlock {
                block_type: block.block_type,
                tokens: shuffled.tokens,
                token_ids,
                distant_labels: labels.clone(),
                gold_labels: labels,
            });
        }
    }
    out
}

#[cfg(test)]
mod augment_tests {
    use super::*;
    use crate::data::entity_tag_scheme;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_datagen::DictionaryConfig;
    use resuformer_text::Vocab;

    #[test]
    fn augmentation_multiplies_and_stays_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(151);
        let resumes: Vec<_> = (0..2)
            .map(|_| generate_resume(&mut rng, &GeneratorConfig::smoke()))
            .collect();
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let scheme = entity_tag_scheme();
        let vocab = Vocab::build(
            resumes
                .iter()
                .flat_map(|r| r.doc.tokens.iter().map(|t| t.text.clone())),
            1,
        );
        let base = build_ner_dataset(&resumes, &dicts, &vocab, &scheme, true);
        let augmented = augment_dataset(&base, 2, &vocab, &mut rng);
        assert_eq!(augmented.len(), base.len() * 3);
        for block in &augmented {
            assert_eq!(block.tokens.len(), block.token_ids.len());
            assert_eq!(block.tokens.len(), block.distant_labels.len());
            // Entity class multiset is preserved per block family, so every
            // augmented instance still carries at least one entity.
            assert!(block.num_distant_entities(&scheme) >= 1);
        }
    }
}
