//! Self-distillation based self-training (Algorithm 2, §IV-B4/5).
//!
//! 1. Train a teacher on the distantly-supervised set with early stopping.
//! 2. Initialise a student identically (`θ_stu = θ_tea`).
//! 3. Each iteration: the teacher produces **soft pseudo-labels with
//!    squared re-weighting** (Eq. 9); low-confidence tokens are dropped by
//!    **high-confidence selection** (Eq. 11, γ = 0.8); the student
//!    minimises the soft cross-entropy (Eq. 10/12); when the student
//!    improves on validation, the teacher is re-initialised from it.
//!
//! The `use_soft` / `use_hcs` / `use_self_distillation` switches produce
//! the Table V ablation variants (w/o SL, w/o HCS, w/o SD).

use rand::seq::SliceRandom;
use rand::Rng;
use resuformer_nn::{Adam, Module};
use resuformer_tensor::NdArray;

use crate::annotate::AnnotatedBlock;
use crate::ner::NerModel;

/// Self-training hyper-parameters and ablation switches.
#[derive(Clone, Copy, Debug)]
pub struct SelfTrainingConfig {
    /// Teacher warm-up epochs over the distant data (upper bound; early
    /// stopping may end sooner).
    pub teacher_epochs: usize,
    /// Early-stopping patience (validation checks without improvement).
    pub patience: usize,
    /// Self-training iterations `T`.
    pub iterations: usize,
    /// Mini-batch size per iteration.
    pub batch: usize,
    /// Confidence threshold γ (paper: 0.8).
    pub gamma: f32,
    /// Learning rate.
    pub lr: f32,
    /// Use soft labels (w/o SL → hard pseudo-labels).
    pub use_soft: bool,
    /// Use high-confidence selection (w/o HCS → keep every token).
    pub use_hcs: bool,
    /// Use the self-distillation loop at all (w/o SD → teacher only).
    pub use_self_distillation: bool,
}

impl Default for SelfTrainingConfig {
    fn default() -> Self {
        SelfTrainingConfig {
            teacher_epochs: 6,
            patience: 2,
            iterations: 8,
            batch: 8,
            gamma: 0.8,
            lr: 1e-3,
            use_soft: true,
            use_hcs: true,
            use_self_distillation: true,
        }
    }
}

/// Eq. 9: squared re-weighted soft labels.
///
/// `probs` is the teacher's `[T, C]` softmax output; `freq` is the
/// unnormalised per-class token frequency `p_c` over the current corpus.
pub fn soft_labels(probs: &NdArray, freq: &[f32]) -> NdArray {
    let (t, c) = (probs.dims()[0], probs.dims()[1]);
    assert_eq!(freq.len(), c, "class frequency width mismatch");
    let mut out = vec![0.0f32; t * c];
    for i in 0..t {
        let row = probs.row(i);
        let mut z = 0.0f32;
        for (j, &p) in row.iter().enumerate() {
            let w = p * p / freq[j].max(1e-8);
            out[i * c + j] = w;
            z += w;
        }
        for v in &mut out[i * c..(i + 1) * c] {
            *v /= z.max(1e-12);
        }
    }
    NdArray::from_vec(out, [t, c])
}

/// Eq. 11: the high-confidence token set — row weights 1.0 where the
/// maximum soft probability exceeds γ, else 0.0.
pub fn high_confidence_weights(soft: &NdArray, gamma: f32) -> Vec<f32> {
    let (t, c) = (soft.dims()[0], soft.dims()[1]);
    (0..t)
        .map(|i| {
            let mx = soft.data()[i * c..(i + 1) * c]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            if mx > gamma {
                1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Token-level accuracy of a model on gold labels.
pub fn token_accuracy(model: &NerModel, data: &[AnnotatedBlock], rng: &mut impl Rng) -> f32 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for block in data {
        let pred = model.predict(&block.token_ids, rng);
        for (p, &g) in pred.iter().zip(block.gold_labels.iter()) {
            if *p == g {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f32 / total as f32
    }
}

/// Micro entity-level F1 on gold labels — the validation criterion of
/// Algorithm 2. Token accuracy is dominated by `O`, so a student that
/// silently drops a rare entity class can still look like an improvement
/// and poison the teacher; span-level F1 cannot be gamed that way.
pub fn entity_f1(model: &NerModel, data: &[AnnotatedBlock], rng: &mut impl Rng) -> f32 {
    use resuformer_text::decode_spans;
    let scheme = model.scheme();
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for block in data {
        let pred = model.predict(&block.token_ids, rng);
        let gold_spans = decode_spans(scheme, &block.gold_labels);
        let pred_spans = decode_spans(scheme, &pred);
        for p in &pred_spans {
            if gold_spans.contains(p) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        for g in &gold_spans {
            if !pred_spans.contains(g) {
                fn_ += 1;
            }
        }
    }
    let precision = tp as f32 / (tp + fp).max(1) as f32;
    let recall = tp as f32 / (tp + fn_).max(1) as f32;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Outcome of a self-training run.
pub struct SelfTrainingOutcome {
    /// The final student model.
    pub model: NerModel,
    /// Validation entity-F1 after the teacher warm-up.
    pub teacher_val: f32,
    /// Validation entity-F1 trace across self-training iterations.
    pub val_trace: Vec<f32>,
}

/// Train a teacher on distant labels with early stopping (Algorithm 2,
/// step 1; also the w/o-SD ablation's entire training).
pub fn train_teacher(
    model: &NerModel,
    train: &[AnnotatedBlock],
    validation: &[AnnotatedBlock],
    config: &SelfTrainingConfig,
    rng: &mut impl Rng,
) -> f32 {
    let mut opt = Adam::new(model.parameters(), config.lr, 0.01);
    let mut best = f32::NEG_INFINITY;
    let mut best_params: Option<Vec<u8>> = None;
    let mut bad = 0usize;
    for _ in 0..config.teacher_epochs {
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(rng);
        for &i in &order {
            let block = &train[i];
            if block.tokens.is_empty() {
                continue;
            }
            opt.zero_grad();
            let loss = model.loss(&block.token_ids, &block.distant_labels, rng);
            loss.backward();
            opt.clip_grad_norm(5.0);
            opt.step();
        }
        let val = entity_f1(model, validation, rng);
        if val > best {
            best = val;
            best_params = Some(model.save_bytes());
            bad = 0;
        } else {
            bad += 1;
            if bad > config.patience {
                break;
            }
        }
    }
    if let Some(bytes) = best_params {
        model.load_bytes(&bytes).expect("restoring best teacher");
    }
    best
}

/// Run the full Algorithm 2 loop. The model architecture is cloned from
/// `proto` (teacher and student share it).
pub fn self_train(
    proto: &NerModel,
    train: &[AnnotatedBlock],
    validation: &[AnnotatedBlock],
    config: &SelfTrainingConfig,
    rng: &mut impl Rng,
) -> SelfTrainingOutcome {
    // Step 1: teacher warm-up on distant labels.
    let teacher = proto.new_like(rng);
    let teacher_val = train_teacher(&teacher, train, validation, config, rng);

    if !config.use_self_distillation {
        return SelfTrainingOutcome {
            model: teacher,
            teacher_val,
            val_trace: vec![teacher_val],
        };
    }

    // Step 2: student initialised from the teacher.
    let student = proto.new_like(rng);
    student.copy_parameters_from(&teacher);
    let mut opt = Adam::new(student.parameters(), config.lr, 0.01);

    // Class frequencies p_c for Eq. 9, from teacher predictions over the
    // training pool.
    let scheme_labels = proto.scheme().num_labels();
    let mut freq = vec![1e-3f32; scheme_labels];
    for block in train.iter() {
        let p = teacher.probs(&block.token_ids, rng).value();
        for i in 0..p.dims()[0] {
            for (j, &v) in p.row(i).iter().enumerate() {
                freq[j] += v;
            }
        }
    }

    let mut best_val = entity_f1(&student, validation, rng);
    let mut val_trace = vec![best_val];
    // Early-stopping semantics: the returned model is the best-validated
    // student, not the last one (late iterations can drift, e.g. dropping
    // a class whose tokens HCS keeps filtering).
    let mut best_bytes = student.save_bytes();

    for _ in 0..config.iterations {
        // Step 5: sample a minibatch.
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(rng);
        for &i in order.iter().take(config.batch) {
            let block = &train[i];
            if block.tokens.is_empty() {
                continue;
            }
            let ids = &block.token_ids;

            // Step 6: teacher pseudo-labels.
            let probs = teacher.probs(ids, rng).value();
            let t = probs.dims()[0];

            let (soft, weights) = if config.use_soft {
                let s = soft_labels(&probs, &freq);
                let w = if config.use_hcs {
                    high_confidence_weights(&s, config.gamma)
                } else {
                    vec![1.0; t]
                };
                (s, w)
            } else {
                // Hard labels: one-hot argmax of the teacher.
                let c = probs.dims()[1];
                let mut hard = vec![0.0f32; t * c];
                let mut w = vec![1.0f32; t];
                for ti in 0..t {
                    let row = probs.row(ti);
                    let mut best = 0;
                    let mut bv = f32::NEG_INFINITY;
                    for (j, &v) in row.iter().enumerate() {
                        if v > bv {
                            bv = v;
                            best = j;
                        }
                    }
                    hard[ti * c + best] = 1.0;
                    if config.use_hcs && bv <= config.gamma {
                        w[ti] = 0.0;
                    }
                }
                (NdArray::from_vec(hard, [t, c]), w)
            };

            if weights.iter().all(|&w| w == 0.0) {
                continue; // every token filtered out
            }

            // Step 7: student update on the soft objective (Eq. 10/12).
            opt.zero_grad();
            let logits = student.logits(ids, true, rng);
            let loss =
                resuformer_tensor::ops::soft_cross_entropy_rows(&logits, &soft, Some(&weights));
            loss.backward();
            opt.clip_grad_norm(5.0);
            opt.step();
        }

        // Step 8–9: if the student improved on validation, re-initialise
        // the teacher from it.
        let val = entity_f1(&student, validation, rng);
        val_trace.push(val);
        if val > best_val {
            best_val = val;
            best_bytes = student.save_bytes();
            teacher.copy_parameters_from(&student);
        }
    }

    student
        .load_bytes(&best_bytes)
        .expect("restoring best student checkpoint");
    SelfTrainingOutcome {
        model: student,
        teacher_val,
        val_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::entity_tag_scheme;
    use crate::ner::NerConfig;
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn eq9_soft_labels_are_distributions_preferring_confident_classes() {
        let probs = NdArray::from_vec(vec![0.7, 0.2, 0.1, 0.34, 0.33, 0.33], [2, 3]);
        let freq = vec![1.0, 1.0, 1.0];
        let s = soft_labels(&probs, &freq);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Squaring sharpens: 0.7 → more than 0.7 of the mass.
        assert!(s.at(&[0, 0]) > 0.7);
        // Near-uniform rows stay near-uniform.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn eq9_frequency_normalisation_downweights_common_classes() {
        let probs = NdArray::from_vec(vec![0.5, 0.5], [1, 2]);
        // Class 0 is 10x more frequent: its soft weight should drop.
        let s = soft_labels(&probs, &[10.0, 1.0]);
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
    }

    #[test]
    fn eq11_threshold_selects_confident_rows() {
        let soft = NdArray::from_vec(vec![0.9, 0.1, 0.5, 0.5], [2, 2]);
        let w = high_confidence_weights(&soft, 0.8);
        assert_eq!(w, vec![1.0, 0.0]);
    }

    fn toy_dataset(n: usize, noisy: bool) -> Vec<AnnotatedBlock> {
        // Alternating "Northlake University" style blocks; distant labels
        // miss entities when noisy.
        let scheme = entity_tag_scheme();
        (0..n)
            .map(|i| {
                let tokens: Vec<String> = ["2018.09", "-", "2022.06", "Northlake", "University"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let gold = {
                    use resuformer_text::iob::{encode_spans, Span};
                    encode_spans(
                        &scheme,
                        5,
                        &[Span::new(0, 3, 11), Span::new(3, 5, 5)], // Date, College
                    )
                };
                let distant = if noisy && i % 2 == 0 {
                    // Incomplete: college unmatched.
                    use resuformer_text::iob::{encode_spans, Span};
                    encode_spans(&scheme, 5, &[Span::new(0, 3, 11)])
                } else {
                    gold.clone()
                };
                AnnotatedBlock {
                    token_ids: (0..tokens.len()).map(|k| 6 + k).collect(),
                    block_type: resuformer_datagen::BlockType::EduExp,
                    tokens,
                    distant_labels: distant,
                    gold_labels: gold,
                }
            })
            .collect()
    }

    #[test]
    fn teacher_learns_from_distant_labels() {
        let mut rng = seeded_rng(51);
        let model = NerModel::new(&mut rng, NerConfig::tiny(64));
        let train = toy_dataset(8, false);
        let val = toy_dataset(2, false);
        let cfg = SelfTrainingConfig {
            teacher_epochs: 10,
            ..Default::default()
        };
        let val_acc = train_teacher(&model, &train, &val, &cfg, &mut rng);
        assert!(val_acc > 0.9, "teacher val accuracy {}", val_acc);
    }

    #[test]
    fn self_training_runs_and_reports_trace() {
        let mut rng = seeded_rng(52);
        let proto = NerModel::new(&mut rng, NerConfig::tiny(64));
        let train = toy_dataset(8, true);
        let val = toy_dataset(2, false);
        let cfg = SelfTrainingConfig {
            teacher_epochs: 6,
            iterations: 4,
            batch: 4,
            ..Default::default()
        };
        let out = self_train(&proto, &train, &val, &cfg, &mut rng);
        assert_eq!(out.val_trace.len(), 5);
        assert!(out.val_trace.iter().all(|v| (0.0..=1.0).contains(v)));
        // The final student should not be worse than the plain teacher by
        // a large margin (usually better under label noise).
        let last = *out.val_trace.last().unwrap();
        assert!(
            last + 0.15 >= out.teacher_val,
            "{} vs {}",
            last,
            out.teacher_val
        );
    }

    #[test]
    fn without_sd_returns_teacher_directly() {
        let mut rng = seeded_rng(53);
        let proto = NerModel::new(&mut rng, NerConfig::tiny(64));
        let train = toy_dataset(4, false);
        let val = toy_dataset(2, false);
        let cfg = SelfTrainingConfig {
            teacher_epochs: 3,
            use_self_distillation: false,
            ..Default::default()
        };
        let out = self_train(&proto, &train, &val, &cfg, &mut rng);
        assert_eq!(out.val_trace.len(), 1);
    }
}

#[cfg(test)]
mod criterion_tests {
    use super::*;
    use crate::data::entity_tag_scheme;
    use crate::ner::NerConfig;
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn entity_f1_and_token_accuracy_disagree_on_dropped_classes() {
        // A model that predicts all-O scores high token accuracy on sparse
        // data but zero entity F1 — the failure mode that motivated the
        // F1 validation criterion.
        let mut rng = seeded_rng(71);
        let model = NerModel::new(&mut rng, NerConfig::tiny(64));
        let scheme = entity_tag_scheme();
        // An untrained tiny model predicts near-uniform labels; build a
        // block where gold is mostly O plus one entity.
        let mut gold = vec![scheme.outside(); 12];
        gold[3] = scheme.begin(5);
        gold[4] = scheme.inside(5);
        let block = AnnotatedBlock {
            block_type: resuformer_datagen::BlockType::EduExp,
            tokens: (0..12).map(|i| format!("w{i}")).collect(),
            token_ids: (6..18).collect(),
            distant_labels: gold.clone(),
            gold_labels: gold,
        };
        let data = vec![block];
        let acc = token_accuracy(&model, &data, &mut rng);
        let f1 = entity_f1(&model, &data, &mut rng);
        // Both metrics are defined and bounded.
        assert!((0.0..=1.0).contains(&acc));
        assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn entity_f1_is_one_on_perfect_predictions() {
        // Train a model to memorise one block; F1 must reach 1.0 there.
        use resuformer_nn::{Adam, Module};
        let mut rng = seeded_rng(72);
        let model = NerModel::new(&mut rng, NerConfig::tiny(64));
        let scheme = entity_tag_scheme();
        let mut gold = vec![scheme.outside(); 5];
        gold[1] = scheme.begin(3);
        gold[2] = scheme.inside(3);
        let block = AnnotatedBlock {
            block_type: resuformer_datagen::BlockType::PInfo,
            tokens: (0..5).map(|i| format!("w{i}")).collect(),
            token_ids: vec![6, 7, 8, 9, 10],
            distant_labels: gold.clone(),
            gold_labels: gold.clone(),
        };
        let mut opt = Adam::new(model.parameters(), 3e-3, 0.0);
        for _ in 0..60 {
            opt.zero_grad();
            let loss = model.loss(&block.token_ids, &gold, &mut rng);
            loss.backward();
            opt.step();
        }
        let data = vec![block];
        assert!((entity_f1(&model, &data, &mut rng) - 1.0).abs() < 1e-6);
        assert!((token_accuracy(&model, &data, &mut rng) - 1.0).abs() < 1e-6);
    }
}
