//! Input preparation: documents → model-ready tensors-of-ids, plus the tag
//! schemes shared by models and metrics.

use resuformer_datagen::{BlockType, EntityType, LabeledResume};
use resuformer_doc::{
    concat_sentences, normalize_bbox, rasterize_sentence, Document, LayoutTuple, Sentence,
    SentenceConfig,
};
use resuformer_text::vocab::CLS;
use resuformer_text::{TagScheme, WordPiece};

use crate::config::ModelConfig;

/// The sentence-level block tag scheme (8 classes, 17 IOB labels).
pub fn block_tag_scheme() -> TagScheme {
    let names: Vec<&str> = BlockType::ALL.iter().map(|b| b.name()).collect();
    TagScheme::new(&names)
}

/// The token-level entity tag scheme (12 classes, 25 IOB labels).
pub fn entity_tag_scheme() -> TagScheme {
    let names: Vec<&str> = EntityType::ALL.iter().map(|e| e.name()).collect();
    TagScheme::new(&names)
}

/// One sentence, ready for the sentence-level encoder.
#[derive(Clone, Debug)]
pub struct SentenceInput {
    /// WordPiece ids, `[CLS]` first.
    pub token_ids: Vec<usize>,
    /// Per-piece layout tuples (the `[CLS]` slot carries the sentence box).
    pub token_layouts: Vec<LayoutTuple>,
    /// Sentence-level layout tuple.
    pub layout: LayoutTuple,
    /// Rasterised visual patch (`doc::raster` dimensions).
    pub patch: Vec<f32>,
}

/// A document prepared for the hierarchical encoder.
#[derive(Clone, Debug)]
pub struct DocumentInput {
    /// Sentences in reading order (truncated to the model maximum).
    pub sentences: Vec<SentenceInput>,
}

impl DocumentInput {
    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether the document produced no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }
}

/// Prepare a document: concatenate sentences, tokenize, attach layout and
/// visual patches. Returns the prepared input and the sentence segmentation
/// (needed to map predictions back to tokens/areas).
pub fn prepare_document(
    doc: &Document,
    wp: &WordPiece,
    config: &ModelConfig,
) -> (DocumentInput, Vec<Sentence>) {
    let sent_cfg = SentenceConfig {
        max_tokens: config.max_sent_tokens.saturating_sub(1).max(1),
        ..SentenceConfig::default()
    };
    let mut sentences = concat_sentences(doc, &sent_cfg);
    sentences.truncate(config.max_doc_sentences);

    let inputs = sentences
        .iter()
        .map(|s| prepare_sentence(doc, s, wp, config))
        .collect();
    (DocumentInput { sentences: inputs }, sentences)
}

/// Prepare a single sentence (exposed for token-level baselines).
pub fn prepare_sentence(
    doc: &Document,
    sentence: &Sentence,
    wp: &WordPiece,
    config: &ModelConfig,
) -> SentenceInput {
    let page_geom = &doc.pages[sentence.page];
    let sent_layout = normalize_bbox(&sentence.bbox, page_geom, sentence.page);

    let words: Vec<String> = sentence
        .token_indices
        .iter()
        .map(|&i| doc.tokens[i].text.clone())
        .collect();
    let (piece_ids, origins) = wp.tokenize_words(&words);

    let mut token_ids = Vec::with_capacity(piece_ids.len() + 1);
    let mut token_layouts = Vec::with_capacity(piece_ids.len() + 1);
    token_ids.push(CLS);
    token_layouts.push(sent_layout);
    for (pid, &origin) in piece_ids.iter().zip(origins.iter()) {
        if token_ids.len() >= config.max_sent_tokens {
            break;
        }
        let tok = &doc.tokens[sentence.token_indices[origin]];
        token_ids.push(*pid);
        token_layouts.push(normalize_bbox(&tok.bbox, page_geom, tok.page));
    }

    SentenceInput {
        token_ids,
        token_layouts,
        layout: sent_layout,
        patch: rasterize_sentence(doc, sentence, page_geom),
    }
}

/// Derive sentence-level IOB labels for a labeled resume: `B-` on the first
/// sentence of each block instance, `I-` on continuations (§III-A).
pub fn sentence_iob_labels(
    resume: &LabeledResume,
    sentences: &[Sentence],
    scheme: &TagScheme,
) -> Vec<usize> {
    let blocks = resume.sentence_blocks(sentences);
    let mut labels = Vec::with_capacity(blocks.len());
    let mut prev: Option<(BlockType, usize)> = None;
    for &(ty, inst) in &blocks {
        let class = ty.index();
        let label = if prev == Some((ty, inst)) {
            scheme.inside(class)
        } else {
            scheme.begin(class)
        };
        labels.push(label);
        prev = Some((ty, inst));
    }
    labels
}

/// Build a WordPiece tokenizer over a corpus word stream.
pub fn build_tokenizer(words: impl Iterator<Item = String>, min_freq: usize) -> WordPiece {
    WordPiece::build(words, min_freq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};

    fn sample() -> (LabeledResume, WordPiece) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(r.doc.tokens.iter().map(|t| t.text.clone()), 1);
        (r, wp)
    }

    #[test]
    fn schemes_have_expected_sizes() {
        assert_eq!(block_tag_scheme().num_labels(), 17);
        assert_eq!(entity_tag_scheme().num_labels(), 25);
        assert_eq!(block_tag_scheme().class_name(0), "PInfo");
    }

    #[test]
    fn prepared_document_is_consistent() {
        let (r, wp) = sample();
        let config = ModelConfig::tiny(wp.vocab.len());
        let (input, sentences) = prepare_document(&r.doc, &wp, &config);
        assert_eq!(input.len(), sentences.len());
        assert!(!input.is_empty());
        for s in &input.sentences {
            assert_eq!(s.token_ids.len(), s.token_layouts.len());
            assert!(s.token_ids.len() <= config.max_sent_tokens);
            assert_eq!(s.token_ids[0], CLS);
            assert_eq!(
                s.patch.len(),
                resuformer_doc::raster::PATCH_H * resuformer_doc::raster::PATCH_W
            );
            for l in &s.token_layouts {
                assert!(l.x_max <= 1000 && l.y_max <= 1000);
            }
        }
    }

    #[test]
    fn iob_labels_mark_block_starts() {
        let (r, wp) = sample();
        let config = ModelConfig::tiny(wp.vocab.len());
        let (_, sentences) = prepare_document(&r.doc, &wp, &config);
        let scheme = block_tag_scheme();
        let labels = sentence_iob_labels(&r, &sentences, &scheme);
        assert_eq!(labels.len(), sentences.len());
        // First sentence must be a B- label; every label non-O.
        assert!(scheme.is_begin(labels[0]));
        assert!(labels.iter().all(|&l| l != scheme.outside()));
        // Multi-sentence blocks produce at least one I-.
        let n_inside = labels.iter().filter(|&&l| !scheme.is_begin(l)).count();
        assert!(n_inside > 0, "expected continuation sentences");
    }

    #[test]
    fn truncation_respects_config() {
        let (r, wp) = sample();
        let mut config = ModelConfig::tiny(wp.vocab.len());
        config.max_doc_sentences = 3;
        let (input, sentences) = prepare_document(&r.doc, &wp, &config);
        assert_eq!(input.len(), 3);
        assert_eq!(sentences.len(), 3);
    }
}
