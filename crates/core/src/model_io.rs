//! Self-contained model persistence for the deployment path.
//!
//! A saved file carries the block classifier's weight bytes plus a JSON
//! header with the tokenizer vocabulary and configuration, so it loads
//! without the training corpus. The format is versioned by an 8-byte
//! magic:
//!
//! * `RESUCLI1` — classifier only: `magic | u64 header_len | header |
//!   classifier weights to EOF` (the original CLI format, still written
//!   when no NER stage is attached and still readable).
//! * `RESUFMT2` — classifier + optional NER stage: `magic | u64
//!   header_len | header | u64 clf_len | clf weights | u64 ner_len |
//!   ner weights`. The header records both architectures and both
//!   vocabularies.
//! * `RESUTRN3` — pre-training checkpoint: `magic | u64 header_len |
//!   header | u64 weights_len | encoder+pretrainer weights | u64
//!   n_states | (u64 len | optimizer state)*`. The header carries the
//!   full model + pre-training hyper-parameters, the RNG seeds and the
//!   epoch cursor; the trailing blobs are per-worker Adam states. A
//!   killed run restored from one of these continues bit-identically.
//!
//! Byte-slice variants (`*_bytes`) back the serving layer, which keeps one
//! copy of the file in memory and builds a single warm parser shared by all
//! worker threads (the autograd graph is `Arc`-based and `Sync`).

use std::io::Write;

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer_datagen::{Dictionaries, DictionaryConfig};
use resuformer_nn::{Module, ParamList};
use resuformer_text::{Vocab, WordPiece};
use serde::{Deserialize, Serialize};

use crate::block_classifier::BlockClassifier;
use crate::config::{ModelConfig, PretrainConfig, SyncMode};
use crate::encoder::HierarchicalEncoder;
use crate::ner::{NerConfig, NerModel};
use crate::pipeline::{EntityExtractor, ResumeParser};
use crate::pretrain::{build_pretrain_model, ObjectiveSwitches, Pretrainer};

const MAGIC_V1: &[u8; 8] = b"RESUCLI1";
const MAGIC_V2: &[u8; 8] = b"RESUFMT2";
const MAGIC_V3: &[u8; 8] = b"RESUTRN3";

/// Serializable classifier configuration (mirrors [`ModelConfig`]).
#[derive(Serialize, Deserialize)]
struct ConfigHeader {
    vocab_size: usize,
    hidden: usize,
    sent_layers: usize,
    doc_layers: usize,
    heads: usize,
    ff: usize,
    max_sent_tokens: usize,
    max_doc_sentences: usize,
    visual_dim: usize,
    coord_buckets: usize,
    max_pages: usize,
    init_seed: u64,
    vocab: Vec<String>,
    /// NER stage description; absent/`null` in classifier-only files.
    ner: Option<NerHeader>,
}

/// Serializable NER architecture + vocabulary (mirrors [`NerConfig`]).
#[derive(Serialize, Deserialize)]
struct NerHeader {
    vocab_size: usize,
    hidden: usize,
    layers: usize,
    heads: usize,
    ff: usize,
    lstm_hidden: usize,
    max_len: usize,
    init_seed: u64,
    vocab: Vec<String>,
}

impl ConfigHeader {
    fn from_config(config: &ModelConfig, wp: &WordPiece, init_seed: u64) -> Self {
        ConfigHeader {
            vocab_size: config.vocab_size,
            hidden: config.hidden,
            sent_layers: config.sent_layers,
            doc_layers: config.doc_layers,
            heads: config.heads,
            ff: config.ff,
            max_sent_tokens: config.max_sent_tokens,
            max_doc_sentences: config.max_doc_sentences,
            visual_dim: config.visual_dim,
            coord_buckets: config.coord_buckets,
            max_pages: config.max_pages,
            init_seed,
            vocab: (0..wp.vocab.len())
                .map(|i| wp.vocab.token(i).to_string())
                .collect(),
            ner: None,
        }
    }

    fn to_config(&self) -> ModelConfig {
        ModelConfig {
            vocab_size: self.vocab_size,
            hidden: self.hidden,
            sent_layers: self.sent_layers,
            doc_layers: self.doc_layers,
            heads: self.heads,
            ff: self.ff,
            dropout: 0.0,
            max_sent_tokens: self.max_sent_tokens,
            max_doc_sentences: self.max_doc_sentences,
            visual_dim: self.visual_dim,
            coord_buckets: self.coord_buckets,
            max_pages: self.max_pages,
        }
    }

    fn to_wordpiece(&self) -> WordPiece {
        WordPiece::from_vocab(rebuild_vocab(&self.vocab))
    }
}

impl NerHeader {
    fn from_parts(config: &NerConfig, vocab: &Vocab, init_seed: u64) -> Self {
        NerHeader {
            vocab_size: config.vocab_size,
            hidden: config.hidden,
            layers: config.layers,
            heads: config.heads,
            ff: config.ff,
            lstm_hidden: config.lstm_hidden,
            max_len: config.max_len,
            init_seed,
            vocab: (0..vocab.len())
                .map(|i| vocab.token(i).to_string())
                .collect(),
        }
    }

    fn to_config(&self) -> NerConfig {
        NerConfig {
            vocab_size: self.vocab_size,
            hidden: self.hidden,
            layers: self.layers,
            heads: self.heads,
            ff: self.ff,
            lstm_hidden: self.lstm_hidden,
            max_len: self.max_len,
        }
    }
}

fn rebuild_vocab(tokens: &[String]) -> Vocab {
    let mut vocab = Vocab::new();
    for t in tokens {
        vocab.add(t);
    }
    vocab
}

/// The NER stage of a bundle, ready for [`EntityExtractor::Ner`].
pub struct NerBundle {
    /// The restored tagger.
    pub model: NerModel,
    /// Its architecture.
    pub config: NerConfig,
    /// Word-level vocabulary the tagger was trained with.
    pub vocab: Vocab,
}

/// Everything a deployed parser needs, restored from one file.
pub struct ModelBundle {
    /// The restored block classifier.
    pub classifier: BlockClassifier,
    /// Classifier configuration.
    pub config: ModelConfig,
    /// WordPiece tokenizer for document preparation.
    pub wordpiece: WordPiece,
    /// Optional NER stage; `None` for classifier-only files.
    pub ner: Option<NerBundle>,
}

impl ModelBundle {
    /// Build an end-to-end parser. Bundles without an NER stage fall back
    /// to the dictionary/matcher rules for intra-block extraction.
    pub fn into_parser(self) -> ResumeParser {
        let extractor = match self.ner {
            Some(n) => EntityExtractor::Ner {
                model: n.model,
                vocab: n.vocab,
            },
            None => EntityExtractor::Rules(Dictionaries::build(DictionaryConfig::default())),
        };
        ResumeParser {
            classifier: self.classifier,
            extractor,
            wordpiece: self.wordpiece,
            config: self.config,
        }
    }
}

/// Borrowed NER stage to persist alongside the classifier.
pub struct NerArtifacts<'a> {
    /// The trained tagger.
    pub model: &'a NerModel,
    /// Its architecture.
    pub config: &'a NerConfig,
    /// Word-level vocabulary it was trained with.
    pub vocab: &'a Vocab,
    /// RNG seed used to initialise the architecture (shapes must rebuild
    /// identically before the weights are overwritten).
    pub init_seed: u64,
}

/// Serialize a classifier (+ optional NER stage) to bytes.
pub fn save_bundle_bytes(
    classifier: &BlockClassifier,
    config: &ModelConfig,
    wp: &WordPiece,
    init_seed: u64,
    ner: Option<&NerArtifacts>,
) -> Result<Vec<u8>, String> {
    let mut header = ConfigHeader::from_config(config, wp, init_seed);
    if let Some(n) = ner {
        header.ner = Some(NerHeader::from_parts(n.config, n.vocab, n.init_seed));
    }
    let header_bytes =
        serde_json::to_vec(&header).map_err(|e| format!("serializing header: {e}"))?;
    let clf_weights = classifier.save_bytes();

    let mut out = Vec::new();
    match ner {
        None => {
            // Classifier-only files keep the original v1 layout.
            out.extend_from_slice(MAGIC_V1);
            out.extend_from_slice(&(header_bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&header_bytes);
            out.extend_from_slice(&clf_weights);
        }
        Some(n) => {
            let ner_weights = n.model.save_bytes();
            out.extend_from_slice(MAGIC_V2);
            out.extend_from_slice(&(header_bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&header_bytes);
            out.extend_from_slice(&(clf_weights.len() as u64).to_le_bytes());
            out.extend_from_slice(&clf_weights);
            out.extend_from_slice(&(ner_weights.len() as u64).to_le_bytes());
            out.extend_from_slice(&ner_weights);
        }
    }
    Ok(out)
}

/// Save a classifier (+ optional NER stage) to a file.
pub fn save_bundle(
    path: &str,
    classifier: &BlockClassifier,
    config: &ModelConfig,
    wp: &WordPiece,
    init_seed: u64,
    ner: Option<&NerArtifacts>,
) -> Result<(), String> {
    let bytes = save_bundle_bytes(classifier, config, wp, init_seed, ner)?;
    let mut f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    f.write_all(&bytes).map_err(|e| e.to_string())
}

/// Save a trained classifier + tokenizer to a file (no NER stage).
pub fn save_model(
    path: &str,
    classifier: &BlockClassifier,
    config: &ModelConfig,
    wp: &WordPiece,
    init_seed: u64,
) -> Result<(), String> {
    save_bundle(path, classifier, config, wp, init_seed, None)
}

/// A bounds-checked reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| "model file truncated".to_string())?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let raw = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(u64::from_le_bytes(b))
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }
}

/// Restore a bundle from bytes produced by [`save_bundle_bytes`] (either
/// format version).
pub fn load_bundle_bytes(bytes: &[u8]) -> Result<ModelBundle, String> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8)?;
    let v2 = if magic == MAGIC_V1 {
        false
    } else if magic == MAGIC_V2 {
        true
    } else {
        return Err("not a resuformer model file".to_string());
    };
    let header_len = r.u64()? as usize;
    let header: ConfigHeader =
        serde_json::from_slice(r.take(header_len)?).map_err(|e| format!("parsing header: {e}"))?;
    let (clf_weights, ner_weights) = if v2 {
        let clf_len = r.u64()? as usize;
        let clf = r.take(clf_len)?;
        let ner = if header.ner.is_some() {
            let ner_len = r.u64()? as usize;
            Some(r.take(ner_len)?)
        } else {
            None
        };
        (clf, ner)
    } else {
        (r.rest(), None)
    };

    let config = header.to_config();
    let wordpiece = header.to_wordpiece();
    // Rebuild the architecture with the recorded init seed (shapes must
    // match exactly), then overwrite the weights.
    let mut rng = ChaCha8Rng::seed_from_u64(header.init_seed);
    let encoder = HierarchicalEncoder::new(&mut rng, &config);
    let classifier = BlockClassifier::new(&mut rng, &config, encoder);
    classifier
        .load_bytes(clf_weights)
        .map_err(|e| format!("loading classifier weights: {e}"))?;

    let ner = match (&header.ner, ner_weights) {
        (Some(nh), Some(weights)) => {
            let ner_config = nh.to_config();
            let mut nrng = ChaCha8Rng::seed_from_u64(nh.init_seed);
            let model = NerModel::new(&mut nrng, ner_config);
            model
                .load_bytes(weights)
                .map_err(|e| format!("loading NER weights: {e}"))?;
            Some(NerBundle {
                model,
                config: ner_config,
                vocab: rebuild_vocab(&nh.vocab),
            })
        }
        _ => None,
    };

    Ok(ModelBundle {
        classifier,
        config,
        wordpiece,
        ner,
    })
}

/// Restore a bundle from a file saved by [`save_bundle`].
pub fn load_bundle(path: &str) -> Result<ModelBundle, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("opening {path}: {e}"))?;
    load_bundle_bytes(&bytes)
}

/// Load a classifier + tokenizer from a file (any format version),
/// discarding the NER stage if present.
pub fn load_model(path: &str) -> Result<(BlockClassifier, ModelConfig, WordPiece), String> {
    let bundle = load_bundle(path)?;
    Ok((bundle.classifier, bundle.config, bundle.wordpiece))
}

// ---------------------------------------------------------------------------
// v3: pre-training checkpoints
// ---------------------------------------------------------------------------

/// Serializable v3 checkpoint header: architecture + pre-training
/// hyper-parameters + seeds + epoch cursor.
#[derive(Serialize, Deserialize)]
struct TrainHeader {
    // Model architecture. Unlike the inference formats, dropout is kept:
    // a resumed run must train with the original regularisation.
    vocab_size: usize,
    hidden: usize,
    sent_layers: usize,
    doc_layers: usize,
    heads: usize,
    ff: usize,
    dropout: f32,
    max_sent_tokens: usize,
    max_doc_sentences: usize,
    visual_dim: usize,
    coord_buckets: usize,
    max_pages: usize,
    vocab: Vec<String>,
    // Pre-training hyper-parameters (Eq. 7 weights, ratios, optimizer).
    mlm_ratio: f32,
    scl_ratio: f32,
    dnsp_ratio: f32,
    tau: f32,
    lambda_wp: f32,
    lambda_cl: f32,
    lambda_ns: f32,
    lr: f32,
    weight_decay: f32,
    wmp: bool,
    scl: bool,
    dnsp: bool,
    dynamic_masking: bool,
    // Seeds and training cursor.
    init_seed: u64,
    base_seed: u64,
    next_epoch: usize,
    total_epochs: usize,
    workers: usize,
    // Staleness cursor (v3-compatible extension: absent in files written
    // before bounded-staleness averaging existed, and unknown to — hence
    // ignored by — readers from before it; `None`/0 mean barrier mode).
    #[serde(default)]
    sync_max_lag: Option<usize>,
    #[serde(default)]
    rounds_folded: u64,
}

/// Run description + epoch cursor stored in a v3 training checkpoint.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointMeta {
    /// Seed the model architecture was initialised from.
    pub init_seed: u64,
    /// Seed driving data order and objective sampling.
    pub base_seed: u64,
    /// First epoch a resumed run should execute.
    pub next_epoch: usize,
    /// Epoch target of the run that wrote the checkpoint.
    pub total_epochs: usize,
    /// Worker count of the writing run (optimizer states are per-worker).
    pub workers: usize,
    /// Parameter-synchronisation mode of the writing run. A resumed run
    /// must use the same mode to stay bit-identical with an uninterrupted
    /// one; files from before this field existed read as `Barrier`.
    pub sync: SyncMode,
    /// Staleness cursor: total rounds folded into the global parameters
    /// so far (advances in both modes; checkpoints are written at epoch
    /// boundaries, after the staleness window has drained).
    pub rounds_folded: u64,
}

/// A restored pre-training checkpoint, ready to continue training.
pub struct TrainCheckpoint {
    /// The restored hierarchical encoder.
    pub encoder: HierarchicalEncoder,
    /// The restored pre-training heads (`ĥ`, `W_d`) and objective config.
    pub pretrainer: Pretrainer,
    /// WordPiece tokenizer for document preparation.
    pub wordpiece: WordPiece,
    /// Model architecture (dropout preserved).
    pub config: ModelConfig,
    /// Seeds and epoch cursor.
    pub meta: CheckpointMeta,
    /// Per-worker serialized Adam states, in worker order.
    pub optimizer_states: Vec<Vec<u8>>,
}

fn checkpoint_params(encoder: &HierarchicalEncoder, pretrainer: &Pretrainer) -> ParamList {
    let mut params = encoder.parameters();
    params.extend(pretrainer.parameters());
    ParamList(params)
}

/// Serialize a pre-training checkpoint (v3) to bytes.
pub fn save_checkpoint_bytes(
    encoder: &HierarchicalEncoder,
    pretrainer: &Pretrainer,
    wp: &WordPiece,
    config: &ModelConfig,
    meta: &CheckpointMeta,
    optimizer_states: &[Vec<u8>],
) -> Result<Vec<u8>, String> {
    let pc = pretrainer.config;
    let header = TrainHeader {
        vocab_size: config.vocab_size,
        hidden: config.hidden,
        sent_layers: config.sent_layers,
        doc_layers: config.doc_layers,
        heads: config.heads,
        ff: config.ff,
        dropout: config.dropout,
        max_sent_tokens: config.max_sent_tokens,
        max_doc_sentences: config.max_doc_sentences,
        visual_dim: config.visual_dim,
        coord_buckets: config.coord_buckets,
        max_pages: config.max_pages,
        vocab: (0..wp.vocab.len())
            .map(|i| wp.vocab.token(i).to_string())
            .collect(),
        mlm_ratio: pc.mlm_ratio,
        scl_ratio: pc.scl_ratio,
        dnsp_ratio: pc.dnsp_ratio,
        tau: pc.tau,
        lambda_wp: pc.lambda_wp,
        lambda_cl: pc.lambda_cl,
        lambda_ns: pc.lambda_ns,
        lr: pc.lr,
        weight_decay: pc.weight_decay,
        wmp: pretrainer.switches.wmp,
        scl: pretrainer.switches.scl,
        dnsp: pretrainer.switches.dnsp,
        dynamic_masking: pretrainer.dynamic_masking,
        init_seed: meta.init_seed,
        base_seed: meta.base_seed,
        next_epoch: meta.next_epoch,
        total_epochs: meta.total_epochs,
        workers: meta.workers,
        sync_max_lag: meta.sync.max_lag(),
        rounds_folded: meta.rounds_folded,
    };
    let header_bytes =
        serde_json::to_vec(&header).map_err(|e| format!("serializing header: {e}"))?;
    let weights = checkpoint_params(encoder, pretrainer).save_bytes();

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V3);
    out.extend_from_slice(&(header_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&header_bytes);
    out.extend_from_slice(&(weights.len() as u64).to_le_bytes());
    out.extend_from_slice(&weights);
    out.extend_from_slice(&(optimizer_states.len() as u64).to_le_bytes());
    for state in optimizer_states {
        out.extend_from_slice(&(state.len() as u64).to_le_bytes());
        out.extend_from_slice(state);
    }
    Ok(out)
}

/// Save a pre-training checkpoint (v3) to a file.
pub fn save_checkpoint(
    path: &str,
    encoder: &HierarchicalEncoder,
    pretrainer: &Pretrainer,
    wp: &WordPiece,
    config: &ModelConfig,
    meta: &CheckpointMeta,
    optimizer_states: &[Vec<u8>],
) -> Result<(), String> {
    let bytes = save_checkpoint_bytes(encoder, pretrainer, wp, config, meta, optimizer_states)?;
    let mut f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    f.write_all(&bytes).map_err(|e| e.to_string())
}

/// Restore a pre-training checkpoint from bytes produced by
/// [`save_checkpoint_bytes`].
pub fn load_checkpoint_bytes(bytes: &[u8]) -> Result<TrainCheckpoint, String> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC_V3 {
        return Err("not a resuformer training checkpoint".to_string());
    }
    let header_len = r.u64()? as usize;
    let header: TrainHeader =
        serde_json::from_slice(r.take(header_len)?).map_err(|e| format!("parsing header: {e}"))?;
    let weights_len = r.u64()? as usize;
    let weights = r.take(weights_len)?;
    let n_states = r.u64()? as usize;
    let mut optimizer_states = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        let len = r.u64()? as usize;
        optimizer_states.push(r.take(len)?.to_vec());
    }

    let config = ModelConfig {
        vocab_size: header.vocab_size,
        hidden: header.hidden,
        sent_layers: header.sent_layers,
        doc_layers: header.doc_layers,
        heads: header.heads,
        ff: header.ff,
        dropout: header.dropout,
        max_sent_tokens: header.max_sent_tokens,
        max_doc_sentences: header.max_doc_sentences,
        visual_dim: header.visual_dim,
        coord_buckets: header.coord_buckets,
        max_pages: header.max_pages,
    };
    let pretrain_config = PretrainConfig {
        mlm_ratio: header.mlm_ratio,
        scl_ratio: header.scl_ratio,
        dnsp_ratio: header.dnsp_ratio,
        tau: header.tau,
        lambda_wp: header.lambda_wp,
        lambda_cl: header.lambda_cl,
        lambda_ns: header.lambda_ns,
        lr: header.lr,
        weight_decay: header.weight_decay,
    };
    let wordpiece = WordPiece::from_vocab(rebuild_vocab(&header.vocab));

    // Rebuild the architecture from the recorded init seed — this also
    // restores the frozen visual extractor, which is excluded from the
    // serialized parameters — then overwrite the trainable weights.
    let (encoder, mut pretrainer) =
        build_pretrain_model(header.init_seed, &config, pretrain_config);
    pretrainer.switches = ObjectiveSwitches {
        wmp: header.wmp,
        scl: header.scl,
        dnsp: header.dnsp,
    };
    pretrainer.dynamic_masking = header.dynamic_masking;
    checkpoint_params(&encoder, &pretrainer)
        .load_bytes(weights)
        .map_err(|e| format!("loading checkpoint weights: {e}"))?;

    Ok(TrainCheckpoint {
        encoder,
        pretrainer,
        wordpiece,
        config,
        meta: CheckpointMeta {
            init_seed: header.init_seed,
            base_seed: header.base_seed,
            next_epoch: header.next_epoch,
            total_epochs: header.total_epochs,
            workers: header.workers,
            sync: SyncMode::from_max_lag(header.sync_max_lag),
            rounds_folded: header.rounds_folded,
        },
        optimizer_states,
    })
}

/// Restore a pre-training checkpoint from a file saved by
/// [`save_checkpoint`].
pub fn load_checkpoint(path: &str) -> Result<TrainCheckpoint, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("opening {path}: {e}"))?;
    load_checkpoint_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{build_tokenizer, prepare_document};
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("resuformer_core_model_io");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn save_load_round_trips_predictions() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let resume = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(resume.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let init_seed = 99;
        let mut mrng = ChaCha8Rng::seed_from_u64(init_seed);
        let encoder = HierarchicalEncoder::new(&mut mrng, &config);
        let classifier = BlockClassifier::new(&mut mrng, &config, encoder);

        let path = temp_path("model.bin");
        save_model(&path, &classifier, &config, &wp, init_seed).unwrap();

        let (loaded, loaded_config, loaded_wp) = load_model(&path).unwrap();
        assert_eq!(loaded_config.hidden, config.hidden);
        assert_eq!(loaded_wp.vocab.len(), wp.vocab.len());

        let (input, _) = prepare_document(&resume.doc, &wp, &config);
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            classifier.predict(&input, &mut r1),
            loaded.predict(&input, &mut r2),
            "loaded model must predict identically"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_round_trips_weights_and_meta() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let resume = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(resume.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let (encoder, pretrainer) =
            build_pretrain_model(42, &config, crate::config::PretrainConfig::default());

        let meta = CheckpointMeta {
            init_seed: 42,
            base_seed: 7,
            next_epoch: 3,
            total_epochs: 8,
            workers: 2,
            sync: SyncMode::Stale { max_lag: 2 },
            rounds_folded: 12,
        };
        let states = vec![vec![1u8, 2, 3], vec![4u8, 5]];
        let bytes =
            save_checkpoint_bytes(&encoder, &pretrainer, &wp, &config, &meta, &states).unwrap();
        assert_eq!(&bytes[..8], MAGIC_V3);

        let ckpt = load_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(ckpt.meta.next_epoch, 3);
        assert_eq!(ckpt.meta.workers, 2);
        assert_eq!(ckpt.meta.base_seed, 7);
        assert_eq!(ckpt.meta.sync, SyncMode::Stale { max_lag: 2 });
        assert_eq!(ckpt.meta.rounds_folded, 12);

        // v3 compatibility: a header written before the staleness cursor
        // existed (no sync_max_lag / rounds_folded keys) reads as barrier.
        let header_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let header = std::str::from_utf8(&bytes[16..16 + header_len]).unwrap();
        let stripped =
            header
                .replacen(",\"sync_max_lag\":2", "", 1)
                .replacen(",\"rounds_folded\":12", "", 1);
        assert_ne!(stripped, header, "fixture must actually strip the keys");
        let mut old = Vec::new();
        old.extend_from_slice(MAGIC_V3);
        old.extend_from_slice(&(stripped.len() as u64).to_le_bytes());
        old.extend_from_slice(stripped.as_bytes());
        old.extend_from_slice(&bytes[16 + header_len..]);
        let old_ckpt = load_checkpoint_bytes(&old).unwrap();
        assert_eq!(old_ckpt.meta.sync, SyncMode::Barrier);
        assert_eq!(old_ckpt.meta.rounds_folded, 0);
        assert_eq!(ckpt.optimizer_states, states);
        assert_eq!(ckpt.wordpiece.vocab.len(), wp.vocab.len());
        assert_eq!(ckpt.config.dropout, config.dropout, "dropout must survive");

        // Every trainable weight — and the frozen visual extractor rebuilt
        // from the init seed — must match bit-for-bit: same loss under the
        // same RNG stream.
        let saved = checkpoint_params(&encoder, &pretrainer).parameters();
        let loaded = checkpoint_params(&ckpt.encoder, &ckpt.pretrainer).parameters();
        assert_eq!(saved.len(), loaded.len());
        for (a, b) in saved.iter().zip(loaded.iter()) {
            assert_eq!(a.value().data(), b.value().data());
        }
        let (input, _) = prepare_document(&resume.doc, &wp, &config);
        let (_, m1) = pretrainer.loss(&encoder, &input, 0, &mut ChaCha8Rng::seed_from_u64(9));
        let (_, m2) =
            ckpt.pretrainer
                .loss(&ckpt.encoder, &input, 0, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(m1.total, m2.total);

        // Garbage and wrong-magic inputs must fail cleanly.
        assert!(load_checkpoint_bytes(b"RESUTRN3").is_err());
        let v1 = save_bundle_bytes(
            &BlockClassifier::new(
                &mut ChaCha8Rng::seed_from_u64(1),
                &config,
                HierarchicalEncoder::new(&mut ChaCha8Rng::seed_from_u64(1), &config),
            ),
            &config,
            &wp,
            1,
            None,
        )
        .unwrap();
        assert!(load_checkpoint_bytes(&v1).is_err());
    }

    #[test]
    fn load_rejects_garbage() {
        let path = temp_path("garbage.bin");
        std::fs::write(&path, b"not a model").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::write(&path, b"RESUCLI1").unwrap();
        assert!(load_model(&path).is_err(), "truncated header must fail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bundle_round_trips_ner_stage() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let resume = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(resume.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let word_vocab = Vocab::build(resume.doc.tokens.iter().map(|t| t.text.clone()), 1);

        let clf_seed = 7;
        let mut crng = ChaCha8Rng::seed_from_u64(clf_seed);
        let encoder = HierarchicalEncoder::new(&mut crng, &config);
        let classifier = BlockClassifier::new(&mut crng, &config, encoder);

        let ner_seed = 8;
        let ner_config = NerConfig::tiny(word_vocab.len());
        let mut nrng = ChaCha8Rng::seed_from_u64(ner_seed);
        let ner = NerModel::new(&mut nrng, ner_config);

        let bytes = save_bundle_bytes(
            &classifier,
            &config,
            &wp,
            clf_seed,
            Some(&NerArtifacts {
                model: &ner,
                config: &ner_config,
                vocab: &word_vocab,
                init_seed: ner_seed,
            }),
        )
        .unwrap();
        let bundle = load_bundle_bytes(&bytes).unwrap();
        let restored = bundle.ner.as_ref().expect("NER stage must survive");
        assert_eq!(restored.vocab.len(), word_vocab.len());

        let ids = vec![1usize, 2, 3, 1];
        let mut r1 = ChaCha8Rng::seed_from_u64(4);
        let mut r2 = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(
            ner.predict(&ids, &mut r1),
            restored.model.predict(&ids, &mut r2),
            "restored NER model must predict identically"
        );

        // A classifier-only save still loads as a bundle with no NER and
        // builds a rules-backed parser.
        let v1 = save_bundle_bytes(&classifier, &config, &wp, clf_seed, None).unwrap();
        assert_eq!(&v1[..8], b"RESUCLI1");
        let v1_bundle = load_bundle_bytes(&v1).unwrap();
        assert!(v1_bundle.ner.is_none());
        let parser = v1_bundle.into_parser();
        let mut prng = ChaCha8Rng::seed_from_u64(3);
        let parsed = parser.parse(&resume.doc, &mut prng);
        assert!(parsed.classify_seconds > 0.0);
    }
}
