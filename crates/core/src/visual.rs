//! Visual region-feature extraction — the Faster R-CNN substitution.
//!
//! The paper crops the page image to each sentence box and takes frozen
//! Faster R-CNN region features. Here the crop is the style rasterisation
//! from [`resuformer_doc::raster`], and the region feature comes from a
//! small *frozen* CNN (randomly initialised, never trained), playing the
//! same role: a fixed, generic pixels → vector map whose outputs separate
//! visual styles (font size, weight, indentation). See DESIGN.md §2.

use rand::Rng;
use resuformer_doc::raster::{PATCH_H, PATCH_W};
use resuformer_nn::{Conv2dLayer, Linear, Module};
use resuformer_tensor::ops;
use resuformer_tensor::{NdArray, Tensor};

/// Frozen CNN over `1 × PATCH_H × PATCH_W` patches → `visual_dim` features.
pub struct VisualExtractor {
    conv1: Conv2dLayer,
    conv2: Conv2dLayer,
    proj: Linear,
    visual_dim: usize,
}

impl VisualExtractor {
    /// Build with a dedicated RNG; parameters are created and then frozen
    /// (excluded from every optimizer group — `parameters()` is empty).
    pub fn new(rng: &mut impl Rng, visual_dim: usize) -> Self {
        // conv1: 1 -> 4 channels, stride 2 | conv2: 4 -> 8, stride 2.
        let conv1 = Conv2dLayer::new(rng, 1, 4, 3, 2, 1, true);
        let conv2 = Conv2dLayer::new(rng, 4, 8, 3, 2, 1, true);
        // After two stride-2 convs: [8, PATCH_H/4, PATCH_W/4]; average-pool
        // by 4 → [8, PATCH_H/16, PATCH_W/16].
        let flat = 8 * (PATCH_H / 16).max(1) * (PATCH_W / 16).max(1);
        let proj = Linear::new(rng, flat, visual_dim);
        VisualExtractor {
            conv1,
            conv2,
            proj,
            visual_dim,
        }
    }

    /// Output feature dimension.
    pub fn dim(&self) -> usize {
        self.visual_dim
    }

    /// Extract a region feature from one patch → `[visual_dim]` row tensor.
    pub fn extract(&self, patch: &[f32]) -> Tensor {
        assert_eq!(patch.len(), PATCH_H * PATCH_W, "patch size mismatch");
        let img = Tensor::constant(NdArray::from_vec(patch.to_vec(), [1, PATCH_H, PATCH_W]));
        let h = self.conv2.forward(&self.conv1.forward(&img));
        let pooled = ops::avg_pool2d(&h, 4);
        let flat = ops::reshape(&pooled, [1, pooled.value().numel()]);
        // Detach: the extractor is frozen, exactly like the paper's
        // pre-trained Faster R-CNN.
        self.proj.forward(&flat).detach()
    }

    /// Extract features for a batch of patches → `[n, visual_dim]`.
    pub fn extract_batch(&self, patches: &[Vec<f32>]) -> Tensor {
        assert!(!patches.is_empty(), "empty patch batch");
        let rows: Vec<Tensor> = patches.iter().map(|p| self.extract(p)).collect();
        ops::concat_rows(&rows)
    }
}

impl Module for VisualExtractor {
    /// Frozen: exposes no trainable parameters.
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn output_shape() {
        let v = VisualExtractor::new(&mut seeded_rng(1), 16);
        let patch = vec![0.5f32; PATCH_H * PATCH_W];
        let f = v.extract(&patch);
        assert_eq!(f.dims(), vec![1, 16]);
        assert_eq!(v.dim(), 16);
        let b = v.extract_batch(&[patch.clone(), patch]);
        assert_eq!(b.dims(), vec![2, 16]);
    }

    #[test]
    fn distinct_styles_produce_distinct_features() {
        let v = VisualExtractor::new(&mut seeded_rng(2), 16);
        // A "title-like" patch (tall bright band) vs a "body" patch.
        let mut title = vec![0.0f32; PATCH_H * PATCH_W];
        for y in 2..14 {
            for x in 0..30 {
                title[y * PATCH_W + x] = 1.0;
            }
        }
        let mut body = vec![0.0f32; PATCH_H * PATCH_W];
        for y in 6..10 {
            for x in 0..30 {
                body[y * PATCH_W + x] = 0.6;
            }
        }
        let ft = v.extract(&title).value();
        let fb = v.extract(&body).value();
        let diff: f32 = ft
            .data()
            .iter()
            .zip(fb.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.1, "features too similar: {}", diff);
    }

    #[test]
    fn extractor_is_frozen() {
        let v = VisualExtractor::new(&mut seeded_rng(3), 8);
        assert!(v.parameters().is_empty());
        let patch = vec![1.0f32; PATCH_H * PATCH_W];
        let f = v.extract(&patch);
        assert!(!f.requires_grad(), "visual features must be detached");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = VisualExtractor::new(&mut seeded_rng(4), 8);
        let b = VisualExtractor::new(&mut seeded_rng(4), 8);
        let patch = vec![0.3f32; PATCH_H * PATCH_W];
        assert_eq!(
            a.extract(&patch).value().data(),
            b.extract(&patch).value().data()
        );
    }
}
