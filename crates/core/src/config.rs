//! Model and pre-training hyper-parameters.

/// Architecture hyper-parameters for the hierarchical encoder.
///
/// [`ModelConfig::paper`] is the configuration of §V-A2 (hidden 768,
/// 6-layer sentence encoder, 4-layer document encoder, 12 heads);
/// [`ModelConfig::tiny`] is the scaled-down configuration experiments run
/// at on CPU (DESIGN.md §2 — relative model ordering, not absolute width,
/// is what the tables measure).
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// WordPiece vocabulary size (set after building the tokenizer).
    pub vocab_size: usize,
    /// Model width (must be divisible by `heads` and by 8 for the layout
    /// embedding split).
    pub hidden: usize,
    /// Sentence-level encoder depth (paper: 6).
    pub sent_layers: usize,
    /// Document-level encoder depth (paper: 4).
    pub doc_layers: usize,
    /// Attention heads (paper: 12).
    pub heads: usize,
    /// Feed-forward width.
    pub ff: usize,
    /// Dropout rate.
    pub dropout: f32,
    /// Maximum tokens per sentence, inclusive of `[CLS]` (paper: 55).
    pub max_sent_tokens: usize,
    /// Maximum sentences per document (paper: 350).
    pub max_doc_sentences: usize,
    /// Visual region-feature dimension concatenated to sentence reps.
    pub visual_dim: usize,
    /// Number of coordinate buckets for the `[0, 1000]` range.
    pub coord_buckets: usize,
    /// Maximum page index embedded.
    pub max_pages: usize,
}

impl ModelConfig {
    /// The paper's configuration (requires GPU-class budgets to train).
    pub fn paper(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            hidden: 768,
            sent_layers: 6,
            doc_layers: 4,
            heads: 12,
            ff: 3072,
            dropout: 0.1,
            max_sent_tokens: 55,
            max_doc_sentences: 350,
            visual_dim: 384,
            coord_buckets: 64,
            max_pages: 8,
        }
    }

    /// CPU-scale configuration used by tests and experiment binaries.
    pub fn tiny(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            hidden: 32,
            sent_layers: 2,
            doc_layers: 2,
            heads: 2,
            ff: 64,
            dropout: 0.0,
            max_sent_tokens: 24,
            max_doc_sentences: 350,
            visual_dim: 16,
            coord_buckets: 16,
            max_pages: 8,
        }
    }

    /// A mid-size configuration for the paper-scale experiment binaries.
    pub fn small(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            hidden: 48,
            sent_layers: 2,
            doc_layers: 2,
            heads: 4,
            ff: 96,
            dropout: 0.1,
            max_sent_tokens: 32,
            max_doc_sentences: 350,
            visual_dim: 24,
            coord_buckets: 32,
            max_pages: 8,
        }
    }

    /// Validate divisibility constraints; call after any manual edits.
    pub fn validate(&self) {
        assert!(self.hidden % self.heads == 0, "hidden must divide by heads");
        assert!(
            self.hidden % 8 == 0,
            "hidden must divide by 8 (layout split)"
        );
        assert!(self.vocab_size > 5, "vocab must include specials");
        assert!(self.max_sent_tokens >= 4 && self.max_doc_sentences >= 2);
    }
}

/// Pre-training hyper-parameters (§V-A2).
#[derive(Clone, Copy, Debug)]
pub struct PretrainConfig {
    /// Token mask ratio for the masked layout-language model.
    pub mlm_ratio: f32,
    /// Fraction of sentences dynamically masked for SCL (paper: 0.2).
    pub scl_ratio: f32,
    /// Fraction of sentences sampled for DNSP (paper: 0.2).
    pub dnsp_ratio: f32,
    /// Contrastive temperature τ (paper: 0.8).
    pub tau: f32,
    /// Loss weight λ₁ for the masked layout-language model (paper: 0.4).
    pub lambda_wp: f32,
    /// Loss weight λ₂ for contrastive learning (paper: 1.0).
    pub lambda_cl: f32,
    /// Loss weight λ₃ for next-sentence prediction (paper: 0.6).
    pub lambda_ns: f32,
    /// Learning rate (paper: 5e-5; scaled configs train larger).
    pub lr: f32,
    /// Decoupled weight decay (paper: 0.01).
    pub weight_decay: f32,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            mlm_ratio: 0.15,
            scl_ratio: 0.2,
            dnsp_ratio: 0.2,
            tau: 0.8,
            lambda_wp: 0.4,
            lambda_cl: 1.0,
            lambda_ns: 0.6,
            lr: 1e-3,
            weight_decay: 0.01,
        }
    }
}

/// How data-parallel pre-training workers synchronise parameters.
///
/// Lives next to the other training hyper-parameters (rather than in
/// `resuformer-train`) because `model_io` records it in v3 checkpoints: a
/// run is only bit-reproducible under the *same* sync mode, so the mode is
/// part of a checkpoint's identity just like the seeds and worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncMode {
    /// Synchronous local SGD: every round, all workers block on a full
    /// parameter averaging + broadcast barrier.
    #[default]
    Barrier,
    /// Bounded staleness: workers push round results to the coordinator
    /// and immediately continue on the freshest *deterministically
    /// available* global snapshot (the state after round
    /// `r - 1 - max_lag` folded); a worker blocks only when it would run
    /// more than `max_lag` rounds ahead of the slowest peer. `max_lag = 0`
    /// degenerates to [`SyncMode::Barrier`] bit for bit.
    Stale {
        /// Most rounds any worker may run ahead of the slowest peer.
        max_lag: usize,
    },
}

impl SyncMode {
    /// Parse the CLI syntax: `barrier` or `stale:<max_lag>`.
    pub fn parse(s: &str) -> Result<SyncMode, String> {
        if s == "barrier" {
            return Ok(SyncMode::Barrier);
        }
        if let Some(k) = s.strip_prefix("stale:") {
            let max_lag = k
                .parse()
                .map_err(|_| format!("bad staleness bound {k:?} (want stale:<K>)"))?;
            return Ok(SyncMode::Stale { max_lag });
        }
        Err(format!(
            "unknown sync mode {s:?} (want barrier or stale:<K>)"
        ))
    }

    /// The staleness bound: `None` for the barrier, `Some(max_lag)` for
    /// bounded staleness. Round-trips with [`SyncMode::from_max_lag`] —
    /// this is the shape v3 checkpoint headers store.
    pub fn max_lag(self) -> Option<usize> {
        match self {
            SyncMode::Barrier => None,
            SyncMode::Stale { max_lag } => Some(max_lag),
        }
    }

    /// Inverse of [`SyncMode::max_lag`].
    pub fn from_max_lag(max_lag: Option<usize>) -> SyncMode {
        match max_lag {
            None => SyncMode::Barrier,
            Some(max_lag) => SyncMode::Stale { max_lag },
        }
    }
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncMode::Barrier => write!(f, "barrier"),
            SyncMode::Stale { max_lag } => write!(f, "stale:{max_lag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ModelConfig::paper(1000).validate();
        ModelConfig::tiny(1000).validate();
        ModelConfig::small(1000).validate();
    }

    #[test]
    fn paper_matches_section_v() {
        let c = ModelConfig::paper(30_000);
        assert_eq!(c.hidden, 768);
        assert_eq!(c.sent_layers, 6);
        assert_eq!(c.doc_layers, 4);
        assert_eq!(c.heads, 12);
        assert_eq!(c.max_sent_tokens, 55);
        assert_eq!(c.max_doc_sentences, 350);
        let p = PretrainConfig::default();
        assert_eq!(p.tau, 0.8);
        assert_eq!((p.lambda_wp, p.lambda_cl, p.lambda_ns), (0.4, 1.0, 0.6));
        assert_eq!(p.scl_ratio, 0.2);
        assert_eq!(p.dnsp_ratio, 0.2);
    }

    #[test]
    fn sync_mode_parses_and_round_trips() {
        assert_eq!(SyncMode::parse("barrier").unwrap(), SyncMode::Barrier);
        assert_eq!(
            SyncMode::parse("stale:3").unwrap(),
            SyncMode::Stale { max_lag: 3 }
        );
        assert!(SyncMode::parse("stale:x").is_err());
        assert!(SyncMode::parse("async").is_err());
        for mode in [SyncMode::Barrier, SyncMode::Stale { max_lag: 2 }] {
            assert_eq!(SyncMode::from_max_lag(mode.max_lag()), mode);
            assert_eq!(SyncMode::parse(&mode.to_string()).unwrap(), mode);
        }
        assert_eq!(SyncMode::default(), SyncMode::Barrier);
    }

    #[test]
    #[should_panic(expected = "hidden must divide")]
    fn validate_rejects_bad_heads() {
        let mut c = ModelConfig::tiny(100);
        c.heads = 3;
        c.validate();
    }
}
