//! End-to-end resume parsing: block classification → block segmentation →
//! intra-block NER → structured record (the deployment path of §V-B7).

use std::time::Instant;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resuformer_datagen::{BlockType, Dictionaries, EntityType};
use resuformer_doc::{Document, Sentence};
use resuformer_text::{decode_spans, TagScheme, Vocab, WordPiece};
use serde::{Deserialize, Serialize};

use crate::annotate;
use crate::block_classifier::BlockClassifier;
use crate::config::ModelConfig;
use crate::data::{entity_tag_scheme, prepare_document};
use crate::ner::NerModel;

/// One extracted entity: class + surface text.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractedEntity {
    /// Entity class.
    pub entity: EntityType,
    /// Surface form (space-joined tokens).
    pub text: String,
}

/// One segmented block with its extracted entities.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParsedBlock {
    /// Predicted semantic class.
    pub block_type: BlockType,
    /// Sentence index range `[start, end)` within the document.
    pub sentence_range: (usize, usize),
    /// Block text (space-joined words).
    pub text: String,
    /// Entities extracted by the intra-block NER stage.
    pub entities: Vec<ExtractedEntity>,
}

/// The parser's output for one resume.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParsedResume {
    /// Segmented, typed, entity-annotated blocks in reading order.
    pub blocks: Vec<ParsedBlock>,
    /// Wall-clock seconds spent in block classification.
    pub classify_seconds: f64,
    /// Wall-clock seconds spent in intra-block extraction.
    pub extract_seconds: f64,
}

impl ParsedResume {
    /// All entities of a class across blocks.
    pub fn entities_of(&self, entity: EntityType) -> Vec<&str> {
        self.blocks
            .iter()
            .flat_map(|b| b.entities.iter())
            .filter(|e| e.entity == entity)
            .map(|e| e.text.as_str())
            .collect()
    }
}

/// The intra-block entity-extraction stage: a trained NER tagger or the
/// dictionary/matcher rules used for distant supervision (the fallback
/// when a deployed model bundle carries no NER weights).
pub enum EntityExtractor {
    /// Trained token-level tagger plus the word vocabulary it was trained
    /// with.
    Ner {
        /// The BERT+BiLSTM+MLP tagger.
        model: NerModel,
        /// Word-level vocabulary for id lookup.
        vocab: Vocab,
    },
    /// Dictionaries + pattern matchers + heuristics (`annotate`).
    Rules(Dictionaries),
}

impl EntityExtractor {
    /// Extract entities from one block's words. `block_type` steers the
    /// rule-based path (dictionaries are block-conditional); the NER path
    /// ignores it.
    pub fn extract(
        &self,
        words: &[String],
        block_type: BlockType,
        scheme: &TagScheme,
        rng: &mut impl Rng,
    ) -> Vec<ExtractedEntity> {
        if words.is_empty() {
            return Vec::new();
        }
        let labels = match self {
            EntityExtractor::Ner { model, vocab } => {
                let ids: Vec<usize> = words.iter().map(|w| vocab.id(&w.to_lowercase())).collect();
                model.predict(&ids, rng)
            }
            EntityExtractor::Rules(dicts) => {
                annotate::distant_labels(words, block_type, dicts, scheme)
            }
        };
        decode_spans(scheme, &labels)
            .into_iter()
            .map(|s| ExtractedEntity {
                entity: EntityType::ALL[s.class],
                text: words[s.start..s.end].join(" "),
            })
            .collect()
    }
}

/// The end-to-end parser: a trained block classifier + an entity
/// extractor + the shared tokenizer.
pub struct ResumeParser {
    /// Sentence-level block classifier (hierarchical encoder inside).
    pub classifier: BlockClassifier,
    /// Intra-block entity extraction stage.
    pub extractor: EntityExtractor,
    /// WordPiece tokenizer used by the classifier.
    pub wordpiece: WordPiece,
    /// Model configuration (for document preparation).
    pub config: ModelConfig,
}

impl ResumeParser {
    /// Parse a document end-to-end.
    pub fn parse(&self, doc: &Document, rng: &mut impl Rng) -> ParsedResume {
        let scheme = self.classifier.scheme().clone();
        let entity_scheme = entity_tag_scheme();

        let t0 = Instant::now();
        let (input, sentences) = prepare_document(doc, &self.wordpiece, &self.config);
        let labels = self.classifier.predict(&input, rng);
        let classify_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let segments = segment_blocks(&scheme, &labels);
        let blocks = segments
            .into_iter()
            .map(|(start, end, class)| {
                let block_type = BlockType::ALL[class];
                let words = block_words(doc, &sentences[start..end]);
                let entities = self
                    .extractor
                    .extract(&words, block_type, &entity_scheme, rng);
                ParsedBlock {
                    block_type,
                    sentence_range: (start, end),
                    text: words.join(" "),
                    entities,
                }
            })
            .collect();
        let extract_seconds = t1.elapsed().as_secs_f64();

        ParsedResume {
            blocks,
            classify_seconds,
            extract_seconds,
        }
    }

    /// Parse a batch of documents with one warm parser.
    ///
    /// Convenience wrapper over [`ResumeParser::parse_documents_ref`] for
    /// callers that own a `&[Document]` slice.
    pub fn parse_documents(&self, docs: &[Document], base_seed: u64) -> Vec<ParsedResume> {
        let refs: Vec<&Document> = docs.iter().collect();
        self.parse_documents_ref(&refs, base_seed)
    }

    /// Parse a batch of borrowed documents with one warm parser.
    ///
    /// Each document gets an independent deterministic RNG stream seeded
    /// from `base_seed + index`, so results never depend on batch
    /// composition or ordering — a batch of one is bit-identical to the
    /// same document inside a batch of fifty.
    ///
    /// The loop inside ONE call is sequential, but the parser itself is
    /// `Send + Sync` (the autograd graph is `Arc`-based), so
    /// throughput-oriented callers — the `resuformer-serve` worker pool —
    /// share a single warm parser across threads and call this
    /// concurrently, each with its own batch of borrowed `Job` documents.
    pub fn parse_documents_ref(&self, docs: &[&Document], base_seed: u64) -> Vec<ParsedResume> {
        docs.iter()
            .enumerate()
            .map(|(i, doc)| {
                let mut rng = ChaCha8Rng::seed_from_u64(base_seed.wrapping_add(i as u64));
                self.parse(doc, &mut rng)
            })
            .collect()
    }
}

/// Convert sentence IOB labels into `(start, end, class)` block segments.
/// Contiguous `B-x [I-x ...]` runs form one segment; `O` sentences are
/// skipped (rare after CRF decoding).
pub fn segment_blocks(scheme: &TagScheme, labels: &[usize]) -> Vec<(usize, usize, usize)> {
    let spans = decode_spans(scheme, labels);
    spans
        .into_iter()
        .map(|s| (s.start, s.end, s.class))
        .collect()
}

fn block_words(doc: &Document, sentences: &[Sentence]) -> Vec<String> {
    sentences
        .iter()
        .flat_map(|s| s.token_indices.iter().map(|&i| doc.tokens[i].text.clone()))
        .collect()
}

/// Build a rule-only parser fallback for entity extraction (used by the
/// quickstart example before any training): dictionaries + matchers.
pub fn rule_based_entities(
    words: &[String],
    block_type: BlockType,
    dicts: &Dictionaries,
) -> Vec<ExtractedEntity> {
    let scheme = entity_tag_scheme();
    let labels = annotate::distant_labels(words, block_type, dicts, &scheme);
    decode_spans(&scheme, &labels)
        .into_iter()
        .map(|s| ExtractedEntity {
            entity: EntityType::ALL[s.class],
            text: words[s.start..s.end].join(" "),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_classifier::FinetuneConfig;
    use crate::data::{block_tag_scheme, build_tokenizer, sentence_iob_labels};
    use crate::encoder::HierarchicalEncoder;
    use crate::ner::NerConfig;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resuformer_datagen::generator::{generate_resume, GeneratorConfig};
    use resuformer_datagen::DictionaryConfig;
    use resuformer_nn::Adam;
    use resuformer_nn::Module;
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn segment_blocks_groups_iob_runs() {
        let scheme = block_tag_scheme();
        // B-PInfo I-PInfo B-EduExp B-EduExp I-EduExp
        let labels = vec![
            scheme.begin(0),
            scheme.inside(0),
            scheme.begin(1),
            scheme.begin(1),
            scheme.inside(1),
        ];
        let segs = segment_blocks(&scheme, &labels);
        assert_eq!(segs, vec![(0, 2, 0), (2, 3, 1), (3, 5, 1)]);
    }

    #[test]
    fn rule_based_entities_extract_from_words() {
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let words: Vec<String> = ["Email", ":", "a.b1@mail.com"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ents = rule_based_entities(&words, BlockType::PInfo, &dicts);
        assert_eq!(ents.len(), 1);
        assert_eq!(ents[0].entity, EntityType::Email);
        assert_eq!(ents[0].text, "a.b1@mail.com");
    }

    #[test]
    fn end_to_end_parse_on_trained_models() {
        // Train tiny models on one resume, then parse it end to end.
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let resume = generate_resume(&mut rng, &GeneratorConfig::smoke());
        let wp = build_tokenizer(resume.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let word_vocab = Vocab::build(resume.doc.tokens.iter().map(|t| t.text.clone()), 1);
        let config = ModelConfig::tiny(wp.vocab.len());
        let scheme = block_tag_scheme();

        let (input, sentences) = prepare_document(&resume.doc, &wp, &config);
        let labels = sentence_iob_labels(&resume, &sentences, &scheme);

        let mut mrng = seeded_rng(62);
        let enc = HierarchicalEncoder::new(&mut mrng, &config);
        let classifier = BlockClassifier::new(&mut mrng, &config, enc);
        let pairs: Vec<(&crate::data::DocumentInput, &[usize])> = vec![(&input, labels.as_slice())];
        classifier.finetune(
            &pairs,
            &FinetuneConfig {
                epochs: 40,
                ..Default::default()
            },
            &mut mrng,
        );

        // Train the NER model on the gold labels of this resume's blocks.
        let mut ner_cfg = NerConfig::tiny(word_vocab.len());
        ner_cfg.max_len = 128;
        let ner = NerModel::new(&mut mrng, ner_cfg);
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let entity_scheme = entity_tag_scheme();
        let data = annotate::build_ner_dataset(
            std::slice::from_ref(&resume),
            &dicts,
            &word_vocab,
            &entity_scheme,
            false,
        );
        let mut opt = Adam::new(ner.parameters(), 2e-3, 0.0);
        for _ in 0..30 {
            for block in &data {
                opt.zero_grad();
                let loss = ner.loss(&block.token_ids, &block.gold_labels, &mut mrng);
                loss.backward();
                opt.step();
            }
        }

        let parser = ResumeParser {
            classifier,
            extractor: EntityExtractor::Ner {
                model: ner,
                vocab: word_vocab,
            },
            wordpiece: wp,
            config,
        };
        let parsed = parser.parse(&resume.doc, &mut mrng);

        assert!(!parsed.blocks.is_empty());
        assert!(parsed.classify_seconds > 0.0);
        // The overfit parser should recover the person's name (or at
        // least its family token) and several other entities.
        let names = parsed.entities_of(EntityType::Name);
        let family = resume.record.name.split_whitespace().next().unwrap();
        assert!(
            names.iter().any(|n| n.contains(family)),
            "expected name containing {:?} among {:?}",
            family,
            names
        );
        let total_entities: usize = parsed.blocks.iter().map(|b| b.entities.len()).sum();
        assert!(total_entities >= 4, "too few entities: {}", total_entities);

        // Batched parsing with the same seed reproduces the single-document
        // path exactly, regardless of batch composition.
        let mut single_rng = ChaCha8Rng::seed_from_u64(9);
        let single = parser.parse(&resume.doc, &mut single_rng);
        let batch = parser.parse_documents(&[resume.doc.clone(), resume.doc.clone()], 9);
        assert_eq!(batch.len(), 2);
        let texts = |p: &ParsedResume| -> Vec<(BlockType, String, usize)> {
            p.blocks
                .iter()
                .map(|b| (b.block_type, b.text.clone(), b.entities.len()))
                .collect()
        };
        assert_eq!(texts(&single), texts(&batch[0]), "batch changed results");

        // The parse result serializes to JSON and round-trips (the serving
        // wire format).
        let json = serde_json::to_string(&single).expect("serialize parse result");
        let back: ParsedResume = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(texts(&single), texts(&back));
    }

    #[test]
    fn parser_is_send_and_sync() {
        // The serving worker pool shares ONE warm parser across threads;
        // this is what makes that sound (autograd graph is `Arc`-based).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ResumeParser>();
    }

    #[test]
    fn rules_extractor_matches_rule_based_entities() {
        let words: Vec<String> = ["Email", ":", "a.b1@mail.com"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let scheme = entity_tag_scheme();
        let extractor =
            EntityExtractor::Rules(Dictionaries::build(DictionaryConfig { coverage: 1.0 }));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let via_extractor = extractor.extract(&words, BlockType::PInfo, &scheme, &mut rng);
        let dicts = Dictionaries::build(DictionaryConfig { coverage: 1.0 });
        let via_rules = rule_based_entities(&words, BlockType::PInfo, &dicts);
        assert_eq!(via_extractor, via_rules);
        assert_eq!(via_extractor.len(), 1);
        assert_eq!(via_extractor[0].entity, EntityType::Email);
    }
}
