//! Text and layout embeddings (Eq. 1 and Eq. 2).
//!
//! * [`TextEmbedding`]: word + 1-D position + segment embeddings, summed
//!   (Eq. 1).
//! * [`LayoutEmbedding`]: the concatenation
//!   `[emb_page(p) ; emb_x(x_min, x_max, width) ; emb_y(y_min, y_max, height)]`
//!   of Eq. 2, where each axis embedding is the sum of its three component
//!   lookups over bucketised `[0, 1000]` coordinates. The concatenated
//!   width equals the model width so layout adds directly onto text.

use rand::Rng;
use resuformer_doc::{LayoutTuple, COORD_RANGE};
use resuformer_nn::{Embedding, Module};
use resuformer_tensor::ops;
use resuformer_tensor::Tensor;

use crate::config::ModelConfig;

/// Word + 1-D position + segment embedding (Eq. 1).
pub struct TextEmbedding {
    word: Embedding,
    position: Embedding,
    segment: Embedding,
}

impl TextEmbedding {
    /// New text embedding for a model configuration.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig, max_positions: usize) -> Self {
        TextEmbedding {
            word: Embedding::new(rng, config.vocab_size, config.hidden),
            position: Embedding::new(rng, max_positions, config.hidden),
            segment: Embedding::new(rng, 2, config.hidden),
        }
    }

    /// Embed a token-id sequence (segment `[A]` throughout, as both of the
    /// paper's encoders consume single-segment inputs). Positions beyond
    /// the table clamp to the final slot rather than panicking.
    pub fn forward(&self, token_ids: &[usize]) -> Tensor {
        let n = token_ids.len();
        let max_pos = self.position.num() - 1;
        let positions: Vec<usize> = (0..n).map(|i| i.min(max_pos)).collect();
        let segments = vec![0usize; n];
        let w = self.word.forward(token_ids);
        let p = self.position.forward(&positions);
        let g = self.segment.forward(&segments);
        ops::add(&ops::add(&w, &p), &g)
    }

    /// The word-embedding table (shared with the MLM output head).
    pub fn word_table(&self) -> &Tensor {
        &self.word.table
    }
}

impl Module for TextEmbedding {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.word.parameters();
        p.extend(self.position.parameters());
        p.extend(self.segment.parameters());
        p
    }
}

/// The 2-D layout embedding of Eq. 2.
pub struct LayoutEmbedding {
    page: Embedding,
    x: Embedding,
    y: Embedding,
    buckets: usize,
    page_dim: usize,
}

impl LayoutEmbedding {
    /// New layout embedding. The output width equals `config.hidden`,
    /// split `hidden/4` for the page embedding and `3·hidden/8` per axis.
    pub fn new(rng: &mut impl Rng, config: &ModelConfig) -> Self {
        let page_dim = config.hidden / 4;
        let axis_dim = (config.hidden - page_dim) / 2;
        LayoutEmbedding {
            page: Embedding::new(rng, config.max_pages, page_dim),
            x: Embedding::new(rng, config.coord_buckets, axis_dim),
            y: Embedding::new(rng, config.coord_buckets, axis_dim),
            buckets: config.coord_buckets,
            page_dim,
        }
    }

    fn bucket(&self, coord: usize) -> usize {
        (coord * self.buckets) / (COORD_RANGE + 1)
    }

    /// Embed a sequence of layout tuples → `[n, hidden]`.
    pub fn forward(&self, layouts: &[LayoutTuple]) -> Tensor {
        let max_page = self.page.num() - 1;
        let pages: Vec<usize> = layouts.iter().map(|l| l.page.min(max_page)).collect();
        let xs_min: Vec<usize> = layouts.iter().map(|l| self.bucket(l.x_min)).collect();
        let xs_max: Vec<usize> = layouts.iter().map(|l| self.bucket(l.x_max)).collect();
        let ws: Vec<usize> = layouts.iter().map(|l| self.bucket(l.width)).collect();
        let ys_min: Vec<usize> = layouts.iter().map(|l| self.bucket(l.y_min)).collect();
        let ys_max: Vec<usize> = layouts.iter().map(|l| self.bucket(l.y_max)).collect();
        let hs: Vec<usize> = layouts.iter().map(|l| self.bucket(l.height)).collect();

        let page = self.page.forward(&pages);
        let x = ops::add(
            &ops::add(&self.x.forward(&xs_min), &self.x.forward(&xs_max)),
            &self.x.forward(&ws),
        );
        let y = ops::add(
            &ops::add(&self.y.forward(&ys_min), &self.y.forward(&ys_max)),
            &self.y.forward(&hs),
        );
        ops::concat_cols(&[page, x, y])
    }

    /// Output width (== model hidden width by construction).
    pub fn out_dim(&self) -> usize {
        self.page_dim + 2 * self.x.dim()
    }
}

impl Module for LayoutEmbedding {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.page.parameters();
        p.extend(self.x.parameters());
        p.extend(self.y.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resuformer_tensor::init::seeded_rng;

    fn tuple(x0: usize, y0: usize, x1: usize, y1: usize, page: usize) -> LayoutTuple {
        LayoutTuple {
            x_min: x0,
            y_min: y0,
            x_max: x1,
            y_max: y1,
            width: x1 - x0,
            height: y1 - y0,
            page,
        }
    }

    #[test]
    fn text_embedding_shape_and_sum() {
        let mut rng = seeded_rng(1);
        let cfg = ModelConfig::tiny(100);
        let e = TextEmbedding::new(&mut rng, &cfg, 64);
        let out = e.forward(&[2, 7, 7]);
        assert_eq!(out.dims(), vec![3, cfg.hidden]);
        // Same word at different positions embeds differently.
        let v = out.value();
        assert_ne!(v.row(1), v.row(2));
    }

    #[test]
    fn layout_embedding_width_matches_hidden() {
        let mut rng = seeded_rng(2);
        let cfg = ModelConfig::tiny(100);
        let e = LayoutEmbedding::new(&mut rng, &cfg);
        assert_eq!(e.out_dim(), cfg.hidden);
        let out = e.forward(&[tuple(0, 0, 100, 20, 0), tuple(900, 950, 1000, 1000, 1)]);
        assert_eq!(out.dims(), vec![2, cfg.hidden]);
    }

    #[test]
    fn distinct_positions_embed_distinctly() {
        let mut rng = seeded_rng(3);
        let cfg = ModelConfig::tiny(100);
        let e = LayoutEmbedding::new(&mut rng, &cfg);
        let out = e
            .forward(&[tuple(0, 0, 100, 20, 0), tuple(600, 500, 900, 520, 0)])
            .value();
        assert_ne!(out.row(0), out.row(1));
    }

    #[test]
    fn page_indices_clamp_to_table() {
        let mut rng = seeded_rng(4);
        let cfg = ModelConfig::tiny(100);
        let e = LayoutEmbedding::new(&mut rng, &cfg);
        // Page 99 exceeds max_pages; must clamp, not panic.
        let out = e.forward(&[tuple(0, 0, 10, 10, 99)]);
        assert_eq!(out.dims(), vec![1, cfg.hidden]);
    }

    #[test]
    fn boundary_coordinates_bucket_in_range() {
        let mut rng = seeded_rng(5);
        let cfg = ModelConfig::tiny(100);
        let e = LayoutEmbedding::new(&mut rng, &cfg);
        // 1000 (inclusive upper bound) must not overflow the bucket table.
        let out = e.forward(&[tuple(1000, 1000, 1000, 1000, 0)]);
        assert_eq!(out.dims(), vec![1, cfg.hidden]);
    }

    #[test]
    fn gradients_reach_all_tables() {
        let mut rng = seeded_rng(6);
        let cfg = ModelConfig::tiny(100);
        let te = TextEmbedding::new(&mut rng, &cfg, 16);
        let le = LayoutEmbedding::new(&mut rng, &cfg);
        let out = ops::add(
            &te.forward(&[1, 2, 3]),
            &le.forward(&[tuple(0, 0, 10, 10, 0); 3]),
        );
        ops::mean_all(&ops::square(&out)).backward();
        for p in te.parameters().iter().chain(le.parameters().iter()) {
            assert!(p.grad().is_some(), "missing gradient on an embedding table");
        }
    }
}

#[cfg(test)]
mod clamp_tests {
    use super::*;
    use resuformer_tensor::init::seeded_rng;

    #[test]
    fn over_long_sequences_clamp_position_instead_of_panicking() {
        let mut rng = seeded_rng(81);
        let cfg = crate::config::ModelConfig::tiny(50);
        let e = TextEmbedding::new(&mut rng, &cfg, 4);
        let out = e.forward(&[1; 10]); // 10 tokens > 4 positions
        assert_eq!(out.dims(), vec![10, cfg.hidden]);
        // Positions 4..10 share the final slot: identical rows.
        let v = out.value();
        assert_eq!(v.row(4), v.row(9));
        assert_ne!(v.row(0), v.row(1));
    }
}
